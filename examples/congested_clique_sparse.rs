//! Sparsity-aware listing in the CONGESTED CLIQUE (Theorem 1.3).
//!
//! The round complexity of the paper's CONGESTED CLIQUE algorithm is
//! `~Θ(1 + m / n^{1+2/p})`: constant for sparse inputs and growing linearly in
//! the edge count beyond the threshold `m ≈ n^{1+2/p}`. This example sweeps
//! the density of a `K_4`-free background through the `Engine` API and prints
//! measured rounds next to the predicted value, reading the load statistics
//! from `RunReport::congested_clique`.
//!
//! ```text
//! cargo run --release --example congested_clique_sparse
//! ```

use distributed_clique_listing::cliquelist::{verify_cliques, Engine};
use distributed_clique_listing::graphcore::gen;

fn main() {
    let n = 400;
    let p = 4;
    println!("CONGESTED CLIQUE K{p} listing on {n} nodes (tripartite backgrounds, density sweep)");
    println!(
        "{:>8}  {:>8}  {:>8}  {:>22}  {:>10}  {:>10}",
        "density", "m", "rounds", "predicted 1+m/n^{1+2/p}", "max send", "max recv"
    );
    let engine = Engine::builder()
        .p(p)
        .algorithm("congested-clique")
        .seed(3)
        .build()
        .expect("valid configuration");
    for density in [0.02, 0.1, 0.25, 0.5, 0.8] {
        let graph = gen::multipartite(n, 3, density, 11);
        let (report, cliques) = engine.collect(&graph);
        verify_cliques(&graph, p, &cliques).expect("listing is exact");
        let stats = report
            .congested_clique
            .expect("congested-clique runs report load statistics");
        println!(
            "{:>8.2}  {:>8}  {:>8}  {:>22.2}  {:>10}  {:>10}",
            density,
            graph.num_edges(),
            report.total_rounds(),
            stats.predicted_rounds,
            stats.max_send,
            stats.max_recv
        );
    }
    println!();
    println!(
        "below m ≈ n^{{1+2/p}} = {:.0} edges the algorithm sits in its constant regime; beyond it the rounds grow linearly in m, as Theorem 1.3 predicts",
        (n as f64).powf(1.0 + 2.0 / p as f64)
    );
}
