//! Kernel selection walkthrough: run the recursive and trie enumeration
//! kernels side by side on one dense and one sparse workload, cross-check
//! that they count exactly the same cliques, and show what `Auto` resolves
//! to on each graph.
//!
//! ```text
//! cargo run --release --example kernel_bench
//! ```
//!
//! The dense workload is a 6-partite Turán-style graph (every candidate set
//! is large, so the trie kernel's one-off induced-subgraph materialisation
//! amortises over a deep subtree and its pivot shortcut fires constantly);
//! the sparse workload is a low-degeneracy Erdős–Rényi graph, where
//! candidate sets are tiny and the recursive kernel's plain merges win —
//! which is exactly why `Auto` picks a different kernel on each.

use std::time::Instant;

use distributed_clique_listing::graphcore::cliques::{count_cliques, CliqueIndex, KernelStrategy};
use distributed_clique_listing::graphcore::gen;
use distributed_clique_listing::graphcore::graph::Graph;

/// Times one full `p`-clique enumeration under an explicit strategy.
fn timed_count(
    graph: &Graph,
    index: &CliqueIndex,
    p: usize,
    strategy: KernelStrategy,
) -> (usize, f64) {
    let start = Instant::now();
    let mut count = 0usize;
    index.for_each_clique_while_with(graph, p, strategy, |_| {
        count += 1;
        true
    });
    (count, start.elapsed().as_secs_f64() * 1e3)
}

fn compare(label: &str, graph: &Graph, p: usize) {
    let index = CliqueIndex::build(graph);
    println!(
        "\n{label}: n = {}, m = {}, degeneracy = {}, p = {p}",
        graph.num_vertices(),
        graph.num_edges(),
        index.degeneracy()
    );
    println!(
        "  auto resolves to: {}",
        index.resolve_kernel(KernelStrategy::Auto)
    );
    let mut counts = Vec::new();
    let mut times = Vec::new();
    for strategy in [
        KernelStrategy::Recursive,
        KernelStrategy::Trie,
        KernelStrategy::Auto,
    ] {
        let (count, ms) = timed_count(graph, &index, p, strategy);
        println!(
            "  {:<9} -> {count} cliques in {ms:8.1} ms (runs the {} kernel)",
            strategy.name(),
            index.resolve_kernel(strategy)
        );
        counts.push(count);
        times.push(ms);
    }
    // The strategies must agree exactly — with each other and with the
    // one-shot ground-truth entry point.
    assert!(
        counts.windows(2).all(|w| w[0] == w[1]),
        "kernels disagree on {label}: {counts:?}"
    );
    assert_eq!(counts[0], count_cliques(graph, p), "{label} ground truth");
    println!(
        "  counts agree; trie/recursive wall-clock ratio = {:.2}x",
        times[0] / times[1].max(1e-9)
    );
}

fn main() {
    // Dense: the Turán graph T(n, 3) — the extremal K4-free graph, so the
    // K4 enumeration is pure intersection work with zero emissions. This is
    // the shape the trie kernel dominates (the `kernel-sweep` bench leg's
    // criterion cell).
    let turan = gen::multipartite(450, 3, 1.0, 7);
    compare("turan T(450,3) (K4-free)", &turan, 4);

    // Dense with cliques: a 6-partite Turán-style graph, so the count
    // cross-check exercises a clique-rich dense enumeration too.
    let dense = gen::multipartite(90, 6, 1.0, 7);
    compare("dense 6-partite (K4)", &dense, 4);

    // Sparse: low-degeneracy random graph, the recursive kernel's home turf.
    let sparse = gen::erdos_renyi(3000, 0.004, 9);
    compare("sparse er (K3)", &sparse, 3);

    println!("\nall kernel outputs agreed with the sequential ground truth");
}
