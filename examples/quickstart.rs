//! Quickstart: list the `K_5` instances of a random graph with the paper's
//! CONGEST algorithm (Theorem 1.1) through the streaming `Engine` API and
//! check the output against the exact sequential enumeration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distributed_clique_listing::cliquelist::{
    verify_cliques, CollectSink, CountSink, Engine, Parallelism,
};
use distributed_clique_listing::graphcore::gen;

fn main() {
    // A sparse Erdős–Rényi background with three planted K_5 instances.
    let (graph, planted) = gen::planted_cliques(300, 0.03, 3, 5, 2024);
    println!(
        "input graph: n = {}, m = {}, planted K5s = {}",
        graph.num_vertices(),
        graph.num_edges(),
        planted.len()
    );

    // Build a validated engine for the general K_p algorithm with p = 5 and
    // stream the listing into a collecting sink.
    let engine = Engine::builder()
        .p(5)
        .algorithm("general")
        .build()
        .expect("p = 5 is a valid configuration");
    let mut sink = CollectSink::new();
    let report = engine.run(&graph, &mut sink);

    println!(
        "listed {} distinct K5 instances ({} emitted to the sink)",
        sink.len(),
        report.sink.emitted
    );
    println!("round breakdown ({} total):", report.total_rounds());
    for (phase, rounds) in report.rounds.iter() {
        println!("  {phase:<22} {rounds}");
    }
    println!(
        "diagnostics: {} LIST iterations, {} decompositions, {} clusters, bad-edge fraction {:.4}",
        report.diagnostics.list_iterations,
        report.diagnostics.decompositions,
        report.diagnostics.clusters,
        report.diagnostics.bad_edge_fraction()
    );

    // The union of node outputs must be the complete list.
    verify_cliques(&graph, 5, &sink.cliques).expect("listing is exact");
    for clique in &planted {
        assert!(
            sink.cliques.contains(&clique.vertices),
            "planted clique {:?} missing",
            clique.vertices
        );
    }
    println!("verification against the sequential ground truth: OK");

    // Same graph through the CONGESTED CLIQUE algorithm with Parallelism::Auto:
    // its local enumeration shards across worker threads (in `--features
    // parallel` builds), and the output is byte-identical to a sequential run
    // — the knob only ever changes wall-clock time. CONGEST-simulated
    // algorithms ignore it and record why in the report.
    let parallel_engine = Engine::builder()
        .p(5)
        .algorithm("congested-clique")
        .parallelism(Parallelism::Auto)
        .build()
        .expect("Auto parallelism is a valid configuration");
    let mut count = CountSink::new();
    let parallel_report = parallel_engine.run(&graph, &mut count);
    assert_eq!(count.count as usize, sink.len(), "listings must agree");
    match parallel_report.parallelism.sequential_reason {
        None => println!(
            "congested-clique recount, granted {} worker thread(s): {} cliques",
            parallel_report.parallelism.threads_granted, count.count
        ),
        Some(reason) => println!(
            "congested-clique recount ran sequentially ({reason}): {} cliques",
            count.count
        ),
    }
}
