//! Quickstart: list the `K_5` instances of a random graph with the paper's
//! CONGEST algorithm (Theorem 1.1) and check the output against the exact
//! sequential enumeration.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use distributed_clique_listing::cliquelist::{list_kp, verify_against_ground_truth, ListingConfig};
use distributed_clique_listing::graphcore::gen;

fn main() {
    // A sparse Erdős–Rényi background with three planted K_5 instances.
    let (graph, planted) = gen::planted_cliques(300, 0.03, 3, 5, 2024);
    println!(
        "input graph: n = {}, m = {}, planted K5s = {}",
        graph.num_vertices(),
        graph.num_edges(),
        planted.len()
    );

    // Run the general K_p listing algorithm for p = 5.
    let config = ListingConfig::for_p(5);
    let result = list_kp(&graph, &config);

    println!("listed {} distinct K5 instances", result.len());
    println!("round breakdown ({} total):", result.rounds.total());
    for (phase, rounds) in result.rounds.iter() {
        println!("  {phase:<22} {rounds}");
    }
    println!(
        "diagnostics: {} LIST iterations, {} decompositions, {} clusters, bad-edge fraction {:.4}",
        result.diagnostics.list_iterations,
        result.diagnostics.decompositions,
        result.diagnostics.clusters,
        result.diagnostics.bad_edge_fraction()
    );

    // The union of node outputs must be the complete list.
    verify_against_ground_truth(&graph, 5, &result).expect("listing is exact");
    for clique in &planted {
        assert!(
            result.cliques.contains(&clique.vertices),
            "planted clique {:?} missing",
            clique.vertices
        );
    }
    println!("verification against the sequential ground truth: OK");
}
