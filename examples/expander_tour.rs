//! A tour of the expander-decomposition substrate (Definition 2.2).
//!
//! The clique-listing algorithm consumes a δ-expander decomposition: dense,
//! well-mixing clusters (`E_m`), a low-arboricity remainder with an explicit
//! orientation (`E_s`), and a small leftover (`E_r`). This example builds the
//! decomposition of an RMAT graph, validates every guarantee, prints the
//! per-cluster statistics, and finishes by running the full listing `Engine`
//! on the same graph to show where the decomposition cost lands in the
//! end-to-end round breakdown.
//!
//! ```text
//! cargo run --release --example expander_tour
//! ```

use distributed_clique_listing::cliquelist::Engine;
use distributed_clique_listing::expander::{decompose, DecompositionConfig};
use distributed_clique_listing::graphcore::gen;

fn main() {
    let graph = gen::rmat(9, 10, (0.55, 0.2, 0.2, 0.05), 3);
    let n = graph.num_vertices();
    println!(
        "input: RMAT graph with n = {n}, m = {}, max degree = {}",
        graph.num_edges(),
        graph.max_degree()
    );

    let delta = 0.5;
    let config = DecompositionConfig::default();
    let decomposition = decompose(&graph, delta, &config, 1);
    decomposition
        .verify(&graph)
        .expect("the decomposition satisfies Definition 2.2");

    println!(
        "δ = {delta}: |E_m| = {}, |E_s| = {}, |E_r| = {} (≤ |E|/6 = {})",
        decomposition.em.len(),
        decomposition.es.len(),
        decomposition.er.len(),
        graph.num_edges() / 6
    );
    println!(
        "E_s orientation max out-degree: {} (bound n^δ = {:.0})",
        decomposition.es_orientation.max_out_degree(),
        (n as f64).powf(delta)
    );
    println!(
        "clusters: {} (degree threshold {})",
        decomposition.clusters.len(),
        decomposition.degree_threshold
    );

    let em_graph = decomposition.em_graph(n);
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>12}",
        "cluster", "nodes", "edges", "min degree", "mixing time"
    );
    for cluster in &decomposition.clusters {
        println!(
            "{:>8}  {:>8}  {:>10}  {:>10}  {:>12.1}",
            cluster.id,
            cluster.len(),
            cluster.internal_edge_count(&em_graph),
            cluster.min_internal_degree(&em_graph),
            cluster.mixing_time(&em_graph)
        );
    }
    println!(
        "(mixing-time acceptance threshold: {:.1})",
        config.mixing_limit(n)
    );

    // The decomposition is the substrate of the K_p listing pipeline: run the
    // general algorithm end-to-end on the same graph and show how many rounds
    // the decomposition phase contributes to the whole.
    let engine = Engine::builder()
        .p(4)
        .algorithm("general")
        .experiment_scale()
        .build()
        .expect("valid configuration");
    let (report, count) = engine.count(&graph);
    println!();
    println!(
        "end-to-end K4 listing through the engine: {count} cliques in {} rounds",
        report.total_rounds()
    );
    for (phase, rounds) in report.rounds.iter() {
        println!("  {phase:<22} {rounds}");
    }
}
