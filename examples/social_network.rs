//! Clique census of a synthetic social network.
//!
//! Social graphs have skewed degree distributions and overlapping communities;
//! small cliques (triangles, `K_4`) are the standard building blocks of
//! community and cohesion metrics. This example generates a
//! Barabási–Albert-style network and runs three engines on it — the paper's
//! fast `K_4` algorithm (Theorem 1.2), the triangle pipeline (`p = 3`) and
//! the naive baseline — then prints the census together with the distributed
//! round cost. The `K_4` membership analysis consumes the stream through a
//! `CollectSink`; the naive comparison only needs a count.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use distributed_clique_listing::cliquelist::{verify_cliques, CollectSink, Engine, FirstK};
use distributed_clique_listing::graphcore::gen;
use std::collections::HashMap;

fn main() {
    let graph = gen::barabasi_albert(600, 6, 7);
    println!(
        "synthetic social network: n = {}, m = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Triangles via the pipeline configured for p = 3.
    let triangle_engine = Engine::builder()
        .p(3)
        .algorithm("general")
        .seed(1)
        .build()
        .expect("valid configuration");
    let (triangle_report, triangles) = triangle_engine.collect(&graph);
    verify_cliques(&graph, 3, &triangles).expect("triangle listing is exact");
    println!(
        "triangles: {} listed in {} CONGEST rounds",
        triangles.len(),
        triangle_report.total_rounds()
    );

    // K4 via the fast algorithm of Theorem 1.2.
    let k4_engine = Engine::builder()
        .p(4)
        .algorithm("fast-k4")
        .build()
        .expect("valid configuration");
    let mut k4_sink = CollectSink::new();
    let k4_report = k4_engine.run(&graph, &mut k4_sink);
    verify_cliques(&graph, 4, &k4_sink.cliques).expect("K4 listing is exact");
    println!(
        "K4s: {} listed in {} CONGEST rounds",
        k4_sink.len(),
        k4_report.total_rounds()
    );

    // Compare with the naive Θ(Δ) baseline — a count-only sink is enough.
    let naive_engine = Engine::builder()
        .p(4)
        .algorithm("naive-broadcast")
        .build()
        .expect("valid configuration");
    let (naive_report, _) = naive_engine.count(&graph);
    println!(
        "naive broadcast baseline: {} rounds (= max degree)",
        naive_report.total_rounds()
    );

    // Streaming means a client that only wants a sample pays nothing more:
    // a FirstK sink saturates after three cliques.
    let mut sample = FirstK::new(3);
    k4_engine.run(&graph, &mut sample);
    println!("sample of listed K4s (FirstK sink): {:?}", sample.cliques);

    // A tiny analysis pass: which vertices participate in the most K4s?
    let mut membership: HashMap<u32, usize> = HashMap::new();
    for clique in &k4_sink.cliques {
        for &v in clique {
            *membership.entry(v).or_insert(0) += 1;
        }
    }
    let mut top: Vec<(u32, usize)> = membership.into_iter().collect();
    top.sort_by_key(|&(v, count)| (std::cmp::Reverse(count), v));
    println!("most clique-dense vertices (vertex: #K4s):");
    for (v, count) in top.into_iter().take(5) {
        println!("  {v}: {count}");
    }
}
