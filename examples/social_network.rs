//! Clique census of a synthetic social network.
//!
//! Social graphs have skewed degree distributions and overlapping communities;
//! small cliques (triangles, `K_4`) are the standard building blocks of
//! community and cohesion metrics. This example generates a
//! Barabási–Albert-style network, runs the paper's fast `K_4` algorithm
//! (Theorem 1.2) and the triangle pipeline on it, and prints the census
//! together with the distributed round cost.
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use distributed_clique_listing::cliquelist::baselines::{
    naive_broadcast_listing, triangle_listing,
};
use distributed_clique_listing::cliquelist::{list_kp, verify_against_ground_truth, ListingConfig};
use distributed_clique_listing::graphcore::gen;
use std::collections::HashMap;

fn main() {
    let graph = gen::barabasi_albert(600, 6, 7);
    println!(
        "synthetic social network: n = {}, m = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );

    // Triangles via the pipeline configured for p = 3.
    let triangles = triangle_listing(&graph, 1);
    verify_against_ground_truth(&graph, 3, &triangles).expect("triangle listing is exact");
    println!(
        "triangles: {} listed in {} CONGEST rounds",
        triangles.len(),
        triangles.rounds.total()
    );

    // K4 via the fast algorithm of Theorem 1.2.
    let k4 = list_kp(&graph, &ListingConfig::fast_k4());
    verify_against_ground_truth(&graph, 4, &k4).expect("K4 listing is exact");
    println!(
        "K4s: {} listed in {} CONGEST rounds",
        k4.len(),
        k4.rounds.total()
    );

    // Compare with the naive Θ(Δ) baseline.
    let naive = naive_broadcast_listing(&graph, &ListingConfig::for_p(4));
    println!(
        "naive broadcast baseline: {} rounds (= max degree)",
        naive.rounds.total()
    );

    // A tiny analysis pass: which vertices participate in the most K4s?
    let mut membership: HashMap<u32, usize> = HashMap::new();
    for clique in &k4.cliques {
        for &v in clique {
            *membership.entry(v).or_insert(0) += 1;
        }
    }
    let mut top: Vec<(u32, usize)> = membership.into_iter().collect();
    top.sort_by_key(|&(v, count)| (std::cmp::Reverse(count), v));
    println!("most clique-dense vertices (vertex: #K4s):");
    for (v, count) in top.into_iter().take(5) {
        println!("  {v}: {count}");
    }
}
