//! Build-once, query-many: the snapshot/query subsystem end to end.
//!
//! A monitoring dashboard, a notebook session or an API server rarely wants
//! one full listing pass — it wants many small questions about one fixed
//! graph: how many triangles? which `K_4`s does this hub belong to? does a
//! `K_5` exist at all? This example builds a [`GraphSnapshot`] once (CSR
//! graph + degeneracy ordering + oriented DAG + adjacency bitsets + shard
//! plans), shares it behind an `Arc`, and answers a mixed batch of typed
//! queries through a [`QueryService`] — then replays the batch to show the
//! content-addressed cache short-circuiting every enumeration.
//!
//! ```text
//! cargo run --release --features parallel --example query_service
//! ```
//!
//! (Also runs without `parallel`; the batch then executes sequentially with
//! identical payloads — determinism is the whole point.)

use distributed_clique_listing::graphcore::gen;
use distributed_clique_listing::query::{GraphSnapshot, QueryBuilder, QueryOutcome, QueryService};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build once. The snapshot owns the graph and every enumeration
    // artifact; nothing below mutates it.
    let graph = gen::barabasi_albert(400, 8, 21);
    println!(
        "snapshot source: n = {}, m = {}, max degree = {}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.max_degree()
    );
    let snapshot = GraphSnapshot::builder(graph)
        .prepare_p(3)
        .prepare_p(4)
        .prepare_p(5)
        .build()?
        .into_shared();
    println!(
        "snapshot {:016x}: prepared clique sizes {:?}",
        snapshot.id(),
        snapshot.prepared_ps()
    );

    // Query many. A mixed batch: census counts, a bounded sample, per-vertex
    // and per-edge membership, existence.
    let hub = 0u32; // Barabási–Albert attaches everyone near vertex 0.
    let (a, b) = snapshot.graph().edges().next().expect("graph has edges");
    let batch = vec![
        QueryBuilder::new().p(3).count().build(&snapshot)?,
        QueryBuilder::new().p(4).count().build(&snapshot)?,
        QueryBuilder::new().p(4).first(3).build(&snapshot)?,
        QueryBuilder::new()
            .p(4)
            .containing_vertex(hub)
            .build(&snapshot)?,
        QueryBuilder::new()
            .p(3)
            .containing_edge(a, b)
            .build(&snapshot)?,
        QueryBuilder::new().p(5).exists().build(&snapshot)?,
    ];

    let service = QueryService::new(snapshot.clone());
    println!(
        "service: {} fan-out thread(s), cold cache\n",
        service.threads()
    );

    let responses = service.execute_batch(&batch)?;
    for response in &responses {
        let execution = if response.report.cache_hit {
            "cache".to_string()
        } else {
            format!("{} shard(s)", response.report.shards)
        };
        let answer = match &response.outcome {
            QueryOutcome::Count(count) => format!("{count}"),
            QueryOutcome::Exists(exists) => format!("{exists}"),
            QueryOutcome::Cliques(cliques) if cliques.len() <= 3 => format!("{cliques:?}"),
            QueryOutcome::Cliques(cliques) => format!("{} cliques", cliques.len()),
        };
        println!(
            "  {:<60} -> {answer} [{execution}]",
            response.query.canonical_identity()
        );
    }

    // Replay the identical batch: every enumeration is short-circuited by
    // the content-addressed cache, and every payload is byte-identical.
    let replay = service.execute_batch(&batch)?;
    let all_hits = replay.iter().all(|r| r.report.cache_hit);
    let identical = responses
        .iter()
        .zip(&replay)
        .all(|(cold, warm)| cold.to_json() == warm.to_json());
    let stats = service.cache_stats();
    println!("\nreplay: all from cache = {all_hits}, payloads byte-identical = {identical}");
    println!(
        "cache: {} hit(s), {} miss(es), {} entrie(s)",
        stats.hits, stats.misses, stats.entries
    );
    assert!(all_hits && identical, "cache must short-circuit the replay");

    // A second service over the *same* snapshot answers independently —
    // snapshots are immutable, so sharing them is free.
    let audit = QueryService::new(snapshot.clone());
    let triangles = audit.execute(&batch[0])?;
    if let QueryOutcome::Count(count) = triangles.outcome {
        println!("independent audit service agrees: {count} triangles");
    }
    Ok(())
}
