//! Dynamic snapshots under edge churn: apply batches, watch the strategy
//! selection, and list exactly the cliques each batch created and destroyed.
//!
//! A stream of edge updates against a monitored graph rarely wants a full
//! re-listing per tick — it wants the *delta*. This example builds a
//! [`GraphSnapshot`], applies three batches (a light one that patches the
//! index incrementally, an ineffective one that is a structural no-op, and a
//! heavy one that crosses the rebuild threshold), prints each
//! [`ChurnReport`], and diffs consecutive snapshots with [`delta_cliques`] —
//! verifying the delta against the full listings as it goes.
//!
//! ```text
//! cargo run --release --features parallel --example churn
//! ```
//!
//! (Also runs without `parallel`; the per-edge fan-out then executes
//! sequentially with an identical delta — determinism is the whole point.)

use distributed_clique_listing::cliquelist::Parallelism;
use distributed_clique_listing::graphcore::{cliques, gen, EdgeBatch};
use distributed_clique_listing::query::{
    delta_cliques, GraphSnapshot, QueryBuilder, QueryOutcome, QueryService,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = gen::erdos_renyi(260, 0.12, 5);
    println!(
        "base graph: n = {}, m = {}",
        graph.num_vertices(),
        graph.num_edges()
    );
    let old = GraphSnapshot::build(graph);
    println!("snapshot {:016x}\n", old.id());

    // 1. Light churn: a handful of changes stays far below the rebuild
    //    threshold, so the index is patched incrementally.
    let deletes: Vec<(u32, u32)> = old.graph().edges().step_by(97).take(8).collect();
    let inserts: Vec<(u32, u32)> = gen::erdos_renyi(260, 0.01, 77)
        .edges()
        .filter(|&(u, v)| !old.graph().has_edge(u, v))
        .take(8)
        .collect();
    let light = EdgeBatch::new(&inserts, &deletes)?;
    let (mid, report) = old.apply_batch(&light)?;
    println!(
        "light batch: strategy = {}, {} inserted, {} deleted, churn = {} ppm",
        report.strategy,
        report.inserted.len(),
        report.deleted.len(),
        report.churn_ppm
    );
    println!(
        "  bitset rows: {} reused verbatim, {} rebuilt",
        report.bitset_rows_reused, report.bitset_rows_rebuilt
    );
    println!("  {:016x} -> {:016x}\n", old.id(), mid.id());

    // The delta: exactly the triangles the batch created and destroyed,
    // verified against the full listings.
    let delta = delta_cliques(&old, &mid, 3, Parallelism::Auto)?;
    let before = cliques::count_cliques(old.graph(), 3) as i64;
    let after = cliques::count_cliques(mid.graph(), 3) as i64;
    println!(
        "triangle delta: +{} created, -{} destroyed (census {before} -> {after})",
        delta.created.len(),
        delta.destroyed.len()
    );
    assert_eq!(
        after - before,
        delta.created.len() as i64 - delta.destroyed.len() as i64,
        "delta must account for the census change exactly"
    );

    // 2. Ineffective churn: inserts that already exist and deletes that
    //    miss resolve to a no-op — the identity (and every cached query
    //    result) survives.
    let existing: Vec<(u32, u32)> = mid.graph().edges().take(3).collect();
    let noop = EdgeBatch::new(&existing, &[])?;
    let service = QueryService::new(mid.clone().into_shared());
    let census = QueryBuilder::new().p(3).count().build(&mid)?;
    service.execute(&census)?; // warm the cache against mid's identity
    let (same, report) = mid.apply_batch(&noop)?;
    println!(
        "\nno-op batch: strategy = {}, identity kept = {}",
        report.strategy,
        same.id() == mid.id()
    );
    let requery = QueryBuilder::new().p(3).count().build(&same)?;
    let replay = service.execute(&requery)?;
    println!(
        "  census replay served from cache: {}",
        replay.report.cache_hit
    );
    assert!(
        replay.report.cache_hit,
        "no-op churn must not evict the cache"
    );

    // 3. Heavy churn: deleting a third of the edges crosses the 25%
    //    threshold, so apply_batch rebuilds from scratch — byte-identical
    //    to the incremental path, just cheaper at this churn fraction.
    let purge: Vec<(u32, u32)> = mid.graph().edges().step_by(3).collect();
    let (new, report) = mid.apply_batch(&EdgeBatch::new(&[], &purge)?)?;
    println!(
        "\nheavy batch: strategy = {}, {} deleted, churn = {} ppm",
        report.strategy,
        report.deleted.len(),
        report.churn_ppm
    );
    let delta = delta_cliques(&mid, &new, 4, Parallelism::Auto)?;
    println!(
        "K_4 delta: +{} created, -{} destroyed",
        delta.created.len(),
        delta.destroyed.len()
    );

    // The derived snapshot is a first-class snapshot: query it.
    let new = new.into_shared();
    let service = QueryService::new(new.clone());
    let survivors = service.execute(&QueryBuilder::new().p(3).count().build(&new)?)?;
    if let QueryOutcome::Count(count) = survivors.outcome {
        println!("triangles surviving the purge: {count}");
    }
    Ok(())
}
