//! End-to-end tests of the `experiments` binary's harness subcommands,
//! driven through the real CLI (`CARGO_BIN_EXE_experiments`) on the tiny
//! `smoke` sweep so they stay fast in debug builds.

use std::fs;
use std::path::PathBuf;
use std::process::{Command, Output};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cliquelist-cli-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the experiments binary with a pinned git revision (so cache keys are
/// stable regardless of the checkout state) inside `dir`.
fn experiments(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(args)
        .current_dir(dir)
        .env("CLIQUELIST_GIT_REV", "test-rev")
        .output()
        .expect("experiments binary runs")
}

#[test]
fn perf_resume_skips_completed_cells_and_reruns_on_rev_change() {
    let dir = temp_dir("resume");
    let cold = experiments(&dir, &["perf", "--sweep", "smoke", "--resume"]);
    assert!(cold.status.success(), "cold run: {cold:?}");
    let stdout = String::from_utf8_lossy(&cold.stdout);
    assert!(
        stdout.contains("3 executed, 0 cached"),
        "cold run executes everything: {stdout}"
    );

    let warm = experiments(&dir, &["perf", "--sweep", "smoke", "--resume"]);
    assert!(warm.status.success());
    let stdout = String::from_utf8_lossy(&warm.stdout);
    assert!(
        stdout.contains("0 executed, 3 cached"),
        "warm --resume skips every completed cell: {stdout}"
    );

    // Without --resume the warm cache is ignored.
    let forced = experiments(&dir, &["perf", "--sweep", "smoke"]);
    let stdout = String::from_utf8_lossy(&forced.stdout);
    assert!(
        stdout.contains("3 executed, 0 cached"),
        "no --resume means full re-run: {stdout}"
    );

    // A different revision misses the whole cache.
    let other_rev = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(["perf", "--sweep", "smoke", "--resume"])
        .current_dir(&dir)
        .env("CLIQUELIST_GIT_REV", "other-rev")
        .output()
        .expect("experiments binary runs");
    let stdout = String::from_utf8_lossy(&other_rev.stdout);
    assert!(
        stdout.contains("3 executed, 0 cached"),
        "revision change invalidates the cache: {stdout}"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn check_gates_regressions_with_nonzero_exit() {
    let dir = temp_dir("gate");
    // Build the committed baseline.
    let report = experiments(
        &dir,
        &["report", "--sweep", "smoke", "--out", "baseline.json"],
    );
    assert!(report.status.success(), "report: {report:?}");
    let baseline = fs::read_to_string(dir.join("baseline.json")).expect("baseline written");
    assert!(baseline.contains("\"thresholds\""));

    // An identical run passes the gate.
    let ok = experiments(
        &dir,
        &["check", "--sweep", "smoke", "--baseline", "baseline.json"],
    );
    assert!(ok.status.success(), "clean check: {ok:?}");

    // Injected deterministic regression: tamper with a baseline clique count.
    let tampered = baseline.replacen("\"cliques\":209", "\"cliques\":208", 1);
    assert_ne!(
        tampered, baseline,
        "fixture must contain the expected count"
    );
    fs::write(dir.join("tampered.json"), tampered).expect("write tampered baseline");
    let bad = experiments(
        &dir,
        &["check", "--sweep", "smoke", "--baseline", "tampered.json"],
    );
    assert_eq!(
        bad.status.code(),
        Some(1),
        "regression must exit 1: {bad:?}"
    );
    let stderr = String::from_utf8_lossy(&bad.stderr);
    assert!(
        stderr.contains("cliques regressed"),
        "names the metric: {stderr}"
    );

    // A missing baseline is a usage error, not a silent pass.
    let missing = experiments(
        &dir,
        &["check", "--sweep", "smoke", "--baseline", "nope.json"],
    );
    assert_eq!(missing.status.code(), Some(2), "missing baseline exits 2");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn report_is_stable_across_reruns_on_a_warm_cache() {
    let dir = temp_dir("stable");
    let first = experiments(&dir, &["report", "--sweep", "smoke", "--out", "a.json"]);
    assert!(first.status.success());
    let second = experiments(&dir, &["report", "--sweep", "smoke", "--out", "b.json"]);
    assert!(second.status.success());
    let a = fs::read_to_string(dir.join("a.json")).unwrap();
    let b = fs::read_to_string(dir.join("b.json")).unwrap();
    assert_eq!(a, b, "warm-cache consolidation is byte-identical");
    let _ = fs::remove_dir_all(&dir);
}
