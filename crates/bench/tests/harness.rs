//! Integration tests for the resumable experiment harness: a sweep that is
//! killed mid-run and resumed must consolidate to **byte-identical** output
//! compared to a from-scratch run.
//!
//! The executors here are synthetic and deterministic (real cell timings
//! differ run to run, which is exactly why the consolidated artifact is
//! built from the *cached* cells, not from a re-measurement).

use bench::json::Json;
use bench::store::{CellSpec, ResultStore};
use bench::sweep::{run_sweep, Interrupted, Sweep};
use bench::trajectory::{check, consolidate};
use std::fs;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cliquelist-harness-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// An 8-cell sweep mixing experiments, workloads, configs and seeds.
fn sweep() -> Sweep {
    let mut sweep = Sweep::new("perf", "synthetic trajectory");
    for (i, workload) in ["er(40,0.3)", "er(80,0.2)"].iter().enumerate() {
        for threads in [1u64, 2, 4] {
            sweep.cell(
                "thread-scaling",
                *workload,
                Json::obj(vec![
                    ("kind", Json::Str("thread-scaling".into())),
                    ("p", Json::Num(4.0)),
                    ("threads", Json::Num(threads as f64)),
                ]),
                10 + i as u64,
            );
        }
        sweep.cell(
            "enumeration",
            *workload,
            Json::obj(vec![
                ("kind", Json::Str("enumeration".into())),
                ("p", Json::Num(4.0)),
            ]),
            10 + i as u64,
        );
    }
    sweep
}

/// Deterministic synthetic measurement: metrics depend only on the cell
/// identity, standing in for "cached timing of the original run".
fn synthetic_metrics(spec: &CellSpec) -> Json {
    let threads = spec
        .config
        .get("threads")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    Json::obj(vec![
        ("cliques", Json::Num(1000.0 + spec.seed as f64)),
        ("best_ms", Json::Num(64.0 / threads)),
        ("mean_ms", Json::Num(80.0 / threads)),
    ])
}

#[test]
fn killed_then_resumed_sweep_consolidates_byte_identically() {
    let sweep = sweep();
    let mut quiet = |_: usize, _: usize, _: &CellSpec, _: bool| {};
    let mut measure = |spec: &CellSpec| Ok(synthetic_metrics(spec));

    // From-scratch reference run.
    let scratch_store = ResultStore::new(temp_dir("scratch"));
    let scratch = run_sweep(
        &scratch_store,
        &sweep,
        "rev",
        true,
        &mut measure,
        &mut quiet,
    )
    .expect("uninterrupted run");
    assert_eq!(scratch.executed, sweep.cells.len());
    let scratch_doc = consolidate(&sweep, &scratch.records, &[], "rev").render();

    // Killed run: dies after 3 cells, resumed twice (the second resume also
    // dies, after 3 more), then completes.
    let killed_store = ResultStore::new(temp_dir("killed"));
    for _ in 0..2 {
        let mut ran = 0;
        let mut dying = |spec: &CellSpec| {
            if ran == 3 {
                return Err(Interrupted);
            }
            ran += 1;
            Ok(synthetic_metrics(spec))
        };
        let outcome = run_sweep(&killed_store, &sweep, "rev", true, &mut dying, &mut quiet);
        assert_eq!(outcome.unwrap_err(), Interrupted, "run must die mid-sweep");
    }
    let resumed = run_sweep(&killed_store, &sweep, "rev", true, &mut measure, &mut quiet)
        .expect("final resume completes");
    assert_eq!(
        resumed.skipped, 6,
        "two interrupted runs persisted 3 cells each"
    );
    assert_eq!(resumed.executed, sweep.cells.len() - 6);

    let resumed_doc = consolidate(&sweep, &resumed.records, &[], "rev").render();
    assert_eq!(
        scratch_doc, resumed_doc,
        "killed-then-resumed consolidation must be byte-identical to from-scratch"
    );

    // And the gate agrees the two are equivalent.
    let trajectory = Json::parse(&scratch_doc).expect("trajectory parses");
    assert!(check(&trajectory, &resumed.records, None).is_empty());

    let _ = fs::remove_dir_all(scratch_store.root());
    let _ = fs::remove_dir_all(killed_store.root());
}

#[test]
fn speedups_derived_from_cached_cells_survive_resume() {
    let sweep = sweep();
    let mut quiet = |_: usize, _: usize, _: &CellSpec, _: bool| {};
    let mut measure = |spec: &CellSpec| Ok(synthetic_metrics(spec));
    let store = ResultStore::new(temp_dir("speedup"));
    let outcome = run_sweep(&store, &sweep, "rev", true, &mut measure, &mut quiet).expect("run");
    let doc = consolidate(&sweep, &outcome.records, &[], "rev");
    let cells = doc.get("cells").and_then(Json::as_arr).expect("cells");
    // The threads=4 cell of each workload shows a 4x speedup over threads=1
    // (64/16 ms), computed at consolidation time from the cached cells.
    let four_thread_speedups: Vec<f64> = cells
        .iter()
        .filter(|c| {
            c.get("config")
                .and_then(|cfg| cfg.get("threads"))
                .and_then(Json::as_f64)
                == Some(4.0)
        })
        .map(|c| {
            c.get("metrics")
                .and_then(|m| m.get("speedup_vs_1_thread"))
                .and_then(Json::as_f64)
                .expect("speedup present")
        })
        .collect();
    assert_eq!(four_thread_speedups.len(), 2);
    assert!(four_thread_speedups.iter().all(|s| (s - 4.0).abs() < 1e-9));
    let _ = fs::remove_dir_all(store.root());
}
