//! Criterion bench for experiment E6: the paper's `K_4` algorithms against the
//! naive broadcast and the Eden-et-al-style baseline.

use bench::listing_workload;
use cliquelist::baselines::{eden_style_k4, naive_broadcast_listing};
use cliquelist::{list_kp, ListingConfig, Variant};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("k4_baselines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 120;
    let workload = listing_workload(n, 4, 29);
    let naive_config = ListingConfig::for_p(4);
    let general = ListingConfig::for_p(4).for_experiments();
    let fast = ListingConfig {
        variant: Variant::FastK4,
        ..general
    };
    group.bench_with_input(BenchmarkId::new("naive_broadcast", n), &workload, |b, w| {
        b.iter(|| naive_broadcast_listing(&w.graph, &naive_config));
    });
    group.bench_with_input(BenchmarkId::new("eden_style", n), &workload, |b, w| {
        b.iter(|| eden_style_k4(&w.graph, 1));
    });
    group.bench_with_input(BenchmarkId::new("general", n), &workload, |b, w| {
        b.iter(|| list_kp(&w.graph, &general));
    });
    group.bench_with_input(BenchmarkId::new("fast_k4", n), &workload, |b, w| {
        b.iter(|| list_kp(&w.graph, &fast));
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
