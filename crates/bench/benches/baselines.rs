//! Criterion bench for experiment E6: the paper's `K_4` algorithms against the
//! naive broadcast and the Eden-et-al-style baseline, all through the Engine.

use bench::listing_workload;
use cliquelist::{CountSink, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("k4_baselines");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 120;
    let workload = listing_workload(n, 4, 29);
    let engines = [
        (
            "naive_broadcast",
            Engine::builder().p(4).algorithm("naive-broadcast").build(),
        ),
        (
            "eden_style",
            Engine::builder().p(4).algorithm("eden-k4").seed(1).build(),
        ),
        ("general", Engine::builder().p(4).experiment_scale().build()),
        (
            "fast_k4",
            Engine::builder()
                .p(4)
                .algorithm("fast-k4")
                .experiment_scale()
                .build(),
        ),
    ];
    for (label, engine) in engines {
        let engine = engine.expect("valid engine");
        group.bench_with_input(BenchmarkId::new(label, n), &workload, |b, w| {
            b.iter(|| {
                let mut sink = CountSink::new();
                engine.run(&w.graph, &mut sink);
                sink.count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
