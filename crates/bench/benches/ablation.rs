//! Criterion bench for experiment E9: sparsity-aware vs generic (dense
//! assumption) in-cluster listing — the ablation of the paper's Challenge 2
//! machinery, selected through `EngineBuilder::exchange_mode`.

use bench::listing_workload;
use cliquelist::{CountSink, Engine, ExchangeMode};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_mode_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    {
        let &n = &120usize;
        let workload = listing_workload(n, 4, 41);
        let sparse = Engine::builder()
            .p(4)
            .experiment_scale()
            .exchange_mode(ExchangeMode::SparsityAware)
            .build()
            .expect("valid engine");
        let dense = Engine::builder()
            .p(4)
            .experiment_scale()
            .exchange_mode(ExchangeMode::DenseAssumption)
            .build()
            .expect("valid engine");
        group.bench_with_input(BenchmarkId::new("sparsity_aware", n), &workload, |b, w| {
            b.iter(|| {
                let mut sink = CountSink::new();
                sparse.run(&w.graph, &mut sink);
                sink.count
            });
        });
        group.bench_with_input(
            BenchmarkId::new("dense_assumption", n),
            &workload,
            |b, w| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    dense.run(&w.graph, &mut sink);
                    sink.count
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
