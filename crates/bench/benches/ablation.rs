//! Criterion bench for experiment E9: sparsity-aware vs generic (dense
//! assumption) in-cluster listing — the ablation of the paper's Challenge 2
//! machinery.

use bench::listing_workload;
use cliquelist::{list_kp_with_mode, ExchangeMode, ListingConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exchange_mode_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let config = ListingConfig::for_p(4).for_experiments();
    {
        let &n = &120usize;
        let workload = listing_workload(n, 4, 41);
        group.bench_with_input(BenchmarkId::new("sparsity_aware", n), &workload, |b, w| {
            b.iter(|| list_kp_with_mode(&w.graph, &config, ExchangeMode::SparsityAware));
        });
        group.bench_with_input(
            BenchmarkId::new("dense_assumption", n),
            &workload,
            |b, w| b.iter(|| list_kp_with_mode(&w.graph, &config, ExchangeMode::DenseAssumption)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
