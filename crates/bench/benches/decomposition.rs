//! Criterion bench for experiment E4: constructing and validating the
//! δ-expander decomposition (Definition 2.2 / Theorem 2.3) on several graph
//! families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use expander::{decompose, DecompositionConfig};
use graphcore::gen;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("expander_decomposition");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let config = DecompositionConfig::default();
    let inputs = vec![
        ("er_dense", gen::erdos_renyi(300, 0.3, 3)),
        ("er_sparse", gen::erdos_renyi(300, 0.05, 3)),
        ("turan", gen::multipartite(300, 3, 0.8, 3)),
        ("barabasi_albert", gen::barabasi_albert(300, 6, 3)),
    ];
    for (label, graph) in &inputs {
        {
            let &delta = &0.5f64;
            group.bench_with_input(
                BenchmarkId::new(*label, format!("delta{delta}")),
                graph,
                |b, graph| b.iter(|| decompose(graph, delta, &config, 1)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
