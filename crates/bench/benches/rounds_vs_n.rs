//! Criterion bench for experiment E1: the full CONGEST `K_p` listing pipeline
//! (Theorem 1.1) on dense Turán-style workloads of increasing size.
//!
//! Criterion measures wall-clock time of the simulation; the round counts that
//! reproduce the paper's complexity claims are printed by the `experiments`
//! binary (`cargo run --release -p bench --bin experiments -- e1`).

use bench::listing_workload;
use cliquelist::{CountSink, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_rounds_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("kp_listing_congest");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    for &p in &[4usize, 5] {
        for &n in &[80usize, 120] {
            let workload = listing_workload(n, p, 7);
            let engine = Engine::builder()
                .p(p)
                .experiment_scale()
                .build()
                .expect("valid engine");
            group.bench_with_input(
                BenchmarkId::new(format!("p{p}"), n),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        let mut sink = CountSink::new();
                        engine.run(&workload.graph, &mut sink);
                        sink.count
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rounds_vs_n);
criterion_main!(benches);
