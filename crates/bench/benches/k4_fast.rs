//! Criterion bench for experiment E2: the general algorithm (Theorem 1.1)
//! against the specialised `K_4` algorithm (Theorem 1.2) on the same inputs,
//! through the Engine.

use bench::listing_workload;
use cliquelist::{CountSink, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_k4_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("k4_variants");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    {
        let &n = &120usize;
        let workload = listing_workload(n, 4, 13);
        let general = Engine::builder()
            .p(4)
            .experiment_scale()
            .build()
            .expect("valid engine");
        let fast = Engine::builder()
            .p(4)
            .algorithm("fast-k4")
            .experiment_scale()
            .build()
            .expect("valid engine");
        group.bench_with_input(BenchmarkId::new("general", n), &workload, |b, w| {
            b.iter(|| {
                let mut sink = CountSink::new();
                general.run(&w.graph, &mut sink);
                sink.count
            });
        });
        group.bench_with_input(BenchmarkId::new("fast_k4", n), &workload, |b, w| {
            b.iter(|| {
                let mut sink = CountSink::new();
                fast.run(&w.graph, &mut sink);
                sink.count
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_k4_variants);
criterion_main!(benches);
