//! Criterion bench for experiment E3: sparsity-aware `K_p` listing in the
//! CONGESTED CLIQUE model (Theorem 1.3) across edge densities, through the
//! Engine with a count-only sink (no per-clique allocation on the output
//! path — the dense workloads here are exactly where that matters).

use cliquelist::{CountSink, Engine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphcore::gen;

fn bench_congested_clique(c: &mut Criterion) {
    let mut group = c.benchmark_group("congested_clique_listing");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_secs(2));
    let n = 300;
    for &m in &[3_000usize, 15_000] {
        let graph = gen::erdos_renyi_with_edges(n, m, 5);
        for &p in &[3usize, 4] {
            let engine = Engine::builder()
                .p(p)
                .algorithm("congested-clique")
                .seed(1)
                .build()
                .expect("valid engine");
            group.bench_with_input(BenchmarkId::new(format!("p{p}"), m), &graph, |b, graph| {
                b.iter(|| {
                    let mut sink = CountSink::new();
                    engine.run(graph, &mut sink);
                    sink.count
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_congested_clique);
criterion_main!(benches);
