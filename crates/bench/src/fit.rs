//! Log–log least-squares fitting of scaling exponents.

/// Result of a power-law fit `y ≈ c · x^e`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FitResult {
    /// The fitted exponent `e`.
    pub exponent: f64,
    /// The fitted constant `c`.
    pub constant: f64,
    /// Coefficient of determination of the fit in log–log space.
    pub r_squared: f64,
}

/// Fits `y ≈ c·x^e` by least squares on `(ln x, ln y)`.
///
/// Points with non-positive coordinates are skipped. Returns `None` if fewer
/// than two usable points remain.
pub fn fit_exponent(points: &[(f64, f64)]) -> Option<FitResult> {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if logs.len() < 2 {
        return None;
    }
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    let exponent = (n * sxy - sx * sy) / denom;
    let intercept = (sy - exponent * sx) / n;
    let mean_y = sy / n;
    let ss_tot: f64 = logs.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = logs
        .iter()
        .map(|p| (p.1 - (intercept + exponent * p.0)).powi(2))
        .sum();
    let r_squared = if ss_tot < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    Some(FitResult {
        exponent,
        constant: intercept.exp(),
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_a_clean_power_law() {
        let points: Vec<(f64, f64)> = (1..=10)
            .map(|i| (i as f64, 3.0 * (i as f64).powf(0.75)))
            .collect();
        let fit = fit_exponent(&points).unwrap();
        assert!((fit.exponent - 0.75).abs() < 1e-9);
        assert!((fit.constant - 3.0).abs() < 1e-6);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn handles_degenerate_inputs() {
        assert!(fit_exponent(&[]).is_none());
        assert!(fit_exponent(&[(1.0, 2.0)]).is_none());
        assert!(fit_exponent(&[(0.0, 1.0), (-1.0, 2.0)]).is_none());
        assert!(fit_exponent(&[(2.0, 5.0), (2.0, 7.0)]).is_none());
    }

    #[test]
    fn noisy_data_still_has_reasonable_r2() {
        let points: Vec<(f64, f64)> = (1..=20)
            .map(|i| {
                let x = i as f64 * 10.0;
                let noise = 1.0 + 0.05 * ((i % 3) as f64 - 1.0);
                (x, x.powf(0.66) * noise)
            })
            .collect();
        let fit = fit_exponent(&points).unwrap();
        assert!((fit.exponent - 0.66).abs() < 0.05);
        assert!(fit.r_squared > 0.98);
    }
}
