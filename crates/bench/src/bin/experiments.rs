//! Experiment harness reproducing the paper's quantitative claims.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- [e1|e2|...|e10|all]
//! ```
//!
//! Each experiment id corresponds to a row of the per-experiment index in
//! `DESIGN.md` §4; the output of `all` is what `EXPERIMENTS.md` records.

use bench::{core_periphery_workload, fit_exponent, listing_workload, two_communities, Table};
use cliquelist::baselines::{eden_style_k4, naive_broadcast_listing, simulate_naive_broadcast};
use cliquelist::result::phase;
use cliquelist::{
    congested_clique_list, list_kp, list_kp_with_mode, verify_against_ground_truth, ExchangeMode,
    ListingConfig, Variant,
};
use expander::{decompose, DecompositionConfig};
use graphcore::partition::{
    edges_within, lemma_2_7_bound, lemma_2_7_preconditions, sample_vertices,
};
use graphcore::{gen, orientation};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "e1" {
        e1_rounds_vs_n();
    }
    if all || which == "e2" {
        e2_fast_k4();
    }
    if all || which == "e3" {
        e3_congested_clique();
    }
    if all || which == "e4" {
        e4_decomposition_quality();
    }
    if all || which == "e5" {
        e5_bad_edges_and_loads();
    }
    if all || which == "e6" {
        e6_baselines();
    }
    if all || which == "e7" {
        e7_lemma_2_7();
    }
    if all || which == "e8" {
        e8_correctness();
    }
    if all || which == "e9" {
        e9_ablation();
    }
    if all || which == "e10" {
        e10_lower_bound_ratio();
    }
    if all || which == "e11" {
        e11_simulated_broadcast();
    }
}

/// The n-values of the CONGEST sweeps (dense Turán-style workloads).
const SWEEP_N: &[usize] = &[120, 160, 220];

fn experiment_config(p: usize) -> ListingConfig {
    ListingConfig::for_p(p).for_experiments()
}

fn header(id: &str, claim: &str) {
    println!();
    println!("=== {id}: {claim} ===");
}

/// E1 — Theorem 1.1: K_p listing rounds scale sub-linearly, ~ n^{p/(p+2)} + n^{3/4}.
fn e1_rounds_vs_n() {
    header(
        "E1",
        "Theorem 1.1 — K_p listing in ~O(n^{3/4} + n^{p/(p+2)}) CONGEST rounds",
    );
    let mut table = Table::new(&[
        "p",
        "n",
        "m",
        "degeneracy",
        "rounds",
        "decomp",
        "heavy",
        "probes",
        "exchange",
        "final",
        "rounds/n",
    ]);
    for &p in &[4usize, 5, 6] {
        let mut points = Vec::new();
        for &n in SWEEP_N {
            let w = listing_workload(n, p, 7 + n as u64);
            let config = experiment_config(p);
            let result = list_kp(&w.graph, &config);
            verify_against_ground_truth(&w.graph, p, &result).expect("E1 output must be exact");
            let rounds = result.rounds.total();
            points.push((n as f64, rounds as f64));
            table.row(&[
                p.to_string(),
                n.to_string(),
                w.graph.num_edges().to_string(),
                orientation::arboricity_upper_bound(&w.graph).to_string(),
                rounds.to_string(),
                result.rounds.for_phase(phase::DECOMPOSITION).to_string(),
                result.rounds.for_phase(phase::HEAVY_UPLOAD).to_string(),
                result.rounds.for_phase(phase::LIGHT_PROBES).to_string(),
                result.rounds.for_phase(phase::PART_EXCHANGE).to_string(),
                result.rounds.for_phase(phase::FINAL_BROADCAST).to_string(),
                format!("{:.3}", rounds as f64 / n as f64),
            ]);
        }
        if let Some(fit) = fit_exponent(&points) {
            println!(
                "p = {p}: fitted rounds ~ n^{:.2} (R² = {:.3}); paper predicts n^{:.2} (+ n^0.75 term), naive baseline is n^1",
                fit.exponent,
                fit.r_squared,
                p as f64 / (p as f64 + 2.0)
            );
        }
    }
    println!("{table}");
    println!("(dense tripartite workloads with planted cliques; decreasing rounds/n is the sub-linear Theorem 1.1 shape)");
}

/// E2 — Theorem 1.2: the specialised K4 algorithm beats the general one.
fn e2_fast_k4() {
    header(
        "E2",
        "Theorem 1.2 — K_4 listing in ~O(n^{2/3}) rounds (vs the general algorithm)",
    );
    let mut table = Table::new(&["n", "m", "general rounds", "fast-K4 rounds", "speedup"]);
    let mut general_points = Vec::new();
    let mut fast_points = Vec::new();
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 13 + n as u64);
        let general = list_kp(&w.graph, &experiment_config(4));
        let fast = list_kp(
            &w.graph,
            &ListingConfig {
                variant: Variant::FastK4,
                ..experiment_config(4)
            },
        );
        verify_against_ground_truth(&w.graph, 4, &general).expect("general output exact");
        verify_against_ground_truth(&w.graph, 4, &fast).expect("fast-K4 output exact");
        general_points.push((n as f64, general.rounds.total() as f64));
        fast_points.push((n as f64, fast.rounds.total() as f64));
        table.row(&[
            n.to_string(),
            w.graph.num_edges().to_string(),
            general.rounds.total().to_string(),
            fast.rounds.total().to_string(),
            format!(
                "{:.2}x",
                general.rounds.total() as f64 / fast.rounds.total().max(1) as f64
            ),
        ]);
    }
    println!("{table}");
    if let (Some(g), Some(f)) = (fit_exponent(&general_points), fit_exponent(&fast_points)) {
        println!(
            "fitted exponents: general n^{:.2} (paper: 3/4 term dominates), fast-K4 n^{:.2} (paper: 2/3)",
            g.exponent, f.exponent
        );
    }
}

/// E3 — Theorem 1.3: CONGESTED CLIQUE rounds ~ Θ(1 + m / n^{1+2/p}).
fn e3_congested_clique() {
    header(
        "E3",
        "Theorem 1.3 — sparsity-aware CONGESTED CLIQUE listing in ~Θ(1 + m/n^{1+2/p}) rounds",
    );
    let n = 400;
    let mut table = Table::new(&[
        "p",
        "m",
        "rounds",
        "predicted 1+m/n^{1+2/p}",
        "max send",
        "max recv",
    ]);
    // Density sweeps on K_p-free backgrounds (bipartite for triangles,
    // tripartite for K4/K5) keep the ground-truth enumeration cheap while the
    // edge volume — the quantity Theorem 1.3 is about — varies by 20x.
    for &p in &[3usize, 4, 5] {
        let parts = if p == 3 { 2 } else { 3 };
        let mut points = Vec::new();
        for &density in &[0.05f64, 0.2, 0.4, 0.7, 0.95] {
            let g = gen::multipartite(n, parts, density, 5 + (density * 100.0) as u64);
            let report = congested_clique_list(&g, p, 3);
            verify_against_ground_truth(&g, p, &report.result).expect("E3 output must be exact");
            points.push((g.num_edges() as f64, report.result.rounds.total() as f64));
            table.row(&[
                p.to_string(),
                g.num_edges().to_string(),
                report.result.rounds.total().to_string(),
                format!("{:.2}", report.predicted_rounds),
                report.max_send.to_string(),
                report.max_recv.to_string(),
            ]);
        }
        if let Some(fit) = fit_exponent(&points) {
            println!(
                "p = {p}: fitted rounds ~ m^{:.2} (paper predicts linear in m once above the constant regime)",
                fit.exponent
            );
        }
    }
    println!("{table}");
}

/// E4 — Definition 2.2 / Theorem 2.3: decomposition quality.
fn e4_decomposition_quality() {
    header("E4", "Definition 2.2 — expander decomposition guarantees (|E_r| ≤ |E|/6, degrees, mixing, arboricity)");
    let mut table = Table::new(&[
        "graph",
        "delta",
        "|E|",
        "|E_m|",
        "|E_s|",
        "|E_r|",
        "E_r frac",
        "clusters",
        "min deg (req)",
        "max mixing (limit)",
        "valid",
    ]);
    let workloads: Vec<(String, graphcore::Graph)> = vec![
        ("er(300,0.15)".into(), gen::erdos_renyi(300, 0.15, 3)),
        ("er(300,0.35)".into(), gen::erdos_renyi(300, 0.35, 3)),
        ("ba(350,6)".into(), gen::barabasi_albert(350, 6, 3)),
        (
            "rmat(9,8)".into(),
            gen::rmat(9, 8, (0.57, 0.19, 0.19, 0.05), 3),
        ),
        ("turan(300,3,0.8)".into(), gen::multipartite(300, 3, 0.8, 3)),
        (
            "2-communities(2x120)".into(),
            two_communities(120, 8, 0.35, 3),
        ),
    ];
    let config = DecompositionConfig::default();
    for (label, graph) in &workloads {
        for &delta in &[0.4f64, 0.5, 0.6] {
            let d = decompose(graph, delta, &config, 1);
            let valid = d.verify(graph).is_ok();
            let em_graph = d.em_graph(graph.num_vertices());
            let min_deg = d
                .clusters
                .iter()
                .map(|c| c.min_internal_degree(&em_graph))
                .min()
                .unwrap_or(0);
            let max_mixing = d
                .clusters
                .iter()
                .map(|c| c.mixing_time(&em_graph))
                .fold(0.0f64, f64::max);
            table.row(&[
                label.clone(),
                format!("{delta:.1}"),
                graph.num_edges().to_string(),
                d.em.len().to_string(),
                d.es.len().to_string(),
                d.er.len().to_string(),
                format!("{:.3}", d.er.len() as f64 / graph.num_edges().max(1) as f64),
                d.clusters.len().to_string(),
                format!("{} ({})", min_deg, d.degree_threshold),
                format!(
                    "{:.1} ({:.1})",
                    max_mixing,
                    d.config.mixing_limit(graph.num_vertices())
                ),
                valid.to_string(),
            ]);
        }
    }
    println!("{table}");
    println!(
        "(paper requires E_r fraction ≤ 1/6 ≈ 0.167, cluster min degree ≥ Ω(n^δ), polylog mixing)"
    );
}

/// E5 — Section 2.4.1: bad-edge fraction and the Remark 2.10 load bound.
fn e5_bad_edges_and_loads() {
    header(
        "E5",
        "Section 2.4.1 — bad-edge fraction ≤ 1/25 of cluster edges; Remark 2.10 per-node load",
    );
    let mut table = Table::new(&[
        "n",
        "bad factor",
        "bad edges",
        "cluster edges",
        "fraction (limit 0.04)",
        "max learned words",
        "n^{3/4}·A·w",
    ]);
    for &n in &[140usize, 200, 260] {
        for &(label, factor) in &[("paper (100)", 100.0f64), ("stress (0)", 0.0)] {
            // Core-periphery inputs: the periphery is C-light, so the cluster
            // must learn its edges through the probe protocol, and lowering
            // the bad-node constant makes the deferral machinery fire.
            let w = core_periphery_workload(n, 11 + n as u64);
            let a = orientation::arboricity_upper_bound(&w.graph);
            let config = ListingConfig {
                bad_node_factor: factor,
                ..experiment_config(4)
            };
            let result = list_kp(&w.graph, &config);
            verify_against_ground_truth(&w.graph, 4, &result).expect("E5 output must be exact");
            for c in &w.planted {
                assert!(
                    result.cliques.contains(&c.vertices),
                    "planted straddling K4 missing"
                );
            }
            let bound = (n as f64).powf(0.75) * a as f64 * config.words_per_edge as f64;
            table.row(&[
                n.to_string(),
                label.to_string(),
                result.diagnostics.bad_edges.to_string(),
                result.diagnostics.cluster_edges.to_string(),
                format!("{:.4}", result.diagnostics.bad_edge_fraction()),
                result.diagnostics.max_learned_words.to_string(),
                format!("{bound:.0}"),
            ]);
        }
    }
    println!("{table}");
    println!("(with the paper's constant the bad-edge fraction stays well below 1/25; the stress setting shows the deferral machinery at work while the output stays exact)");
}

/// E6 — who wins: the paper's algorithms vs the naive broadcast and the
/// Eden-et-al-style baseline.
fn e6_baselines() {
    header(
        "E6",
        "Comparison — paper's K4 algorithms vs naive broadcast and Eden-style baseline",
    );
    let mut table = Table::new(&[
        "n",
        "m",
        "naive Θ(Δ)",
        "eden-style",
        "general K4",
        "fast K4",
    ]);
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = vec![
        ("naive", Vec::new()),
        ("eden-style", Vec::new()),
        ("general K4", Vec::new()),
        ("fast K4", Vec::new()),
    ];
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 29 + n as u64);
        let naive = naive_broadcast_listing(&w.graph, &ListingConfig::for_p(4));
        let eden = eden_style_k4(&w.graph, 1);
        let general = list_kp(&w.graph, &experiment_config(4));
        let fast = list_kp(
            &w.graph,
            &ListingConfig {
                variant: Variant::FastK4,
                ..experiment_config(4)
            },
        );
        for r in [&naive, &eden, &general, &fast] {
            verify_against_ground_truth(&w.graph, 4, r).expect("all baselines must be exact");
        }
        for (series, result) in series.iter_mut().zip([&naive, &eden, &general, &fast]) {
            series.1.push((n as f64, result.rounds.total() as f64));
        }
        table.row(&[
            n.to_string(),
            w.graph.num_edges().to_string(),
            naive.rounds.total().to_string(),
            eden.rounds.total().to_string(),
            general.rounds.total().to_string(),
            fast.rounds.total().to_string(),
        ]);
    }
    println!("{table}");
    for (label, points) in &series {
        if let Some(fit) = fit_exponent(points) {
            println!("{label}: rounds ~ n^{:.2}", fit.exponent);
        }
    }
    println!(
        "(paper exponents: naive Θ(n) = n^1.0, Eden et al. n^0.83, Theorem 1.1 n^0.75, Theorem 1.2 n^0.67; \
the asymptotic crossover in absolute rounds lies far beyond simulation scale because of the p² and polylog \
constants, so the comparison is between the fitted growth exponents)"
    );
}

/// E7 — Lemma 2.7: random vertex samples do not concentrate edges.
fn e7_lemma_2_7() {
    header(
        "E7",
        "Lemma 2.7 — a q-sample of an m-edge graph induces ≤ 6q²m edges w.h.p.",
    );
    let n = 500;
    let g = gen::erdos_renyi(n, 0.8, 2);
    let m = g.num_edges();
    let mut table = Table::new(&[
        "q",
        "preconditions",
        "max sampled edges (20 seeds)",
        "bound 6q²m",
        "violations",
    ]);
    for &q in &[0.5f64, 0.7, 0.9] {
        let pre = lemma_2_7_preconditions(n, m, g.max_degree(), q);
        let mut max_edges = 0usize;
        let mut violations = 0usize;
        for seed in 0..20 {
            let sample = sample_vertices(n, q, seed);
            let within = edges_within(&g, &sample);
            max_edges = max_edges.max(within);
            if (within as f64) > lemma_2_7_bound(m, q) {
                violations += 1;
            }
        }
        table.row(&[
            format!("{q:.1}"),
            pre.to_string(),
            max_edges.to_string(),
            format!("{:.0}", lemma_2_7_bound(m, q)),
            violations.to_string(),
        ]);
    }
    println!("{table}");
}

/// E8 — end-to-end correctness matrix.
fn e8_correctness() {
    header(
        "E8",
        "Correctness — union of node outputs equals the exact K_p list (all algorithms)",
    );
    let mut table = Table::new(&[
        "workload",
        "p",
        "cliques",
        "CONGEST general",
        "fast K4",
        "congested clique",
        "naive",
    ]);
    let cases: Vec<(String, graphcore::Graph)> = vec![
        ("er(90,0.35)".into(), gen::erdos_renyi(90, 0.35, 1)),
        (
            "turan+planted(120,4)".into(),
            listing_workload(120, 4, 3).graph,
        ),
        ("ba(150,8)".into(), gen::barabasi_albert(150, 8, 2)),
        (
            "planted er(100)".into(),
            gen::planted_cliques(100, 0.05, 3, 6, 4).0,
        ),
        ("complete(15)".into(), gen::complete_graph(15)),
        ("bipartite(30,30)".into(), gen::complete_bipartite(30, 30)),
    ];
    for (label, graph) in &cases {
        for &p in &[4usize, 5] {
            let truth = graphcore::cliques::count_cliques(graph, p);
            let general = list_kp(graph, &experiment_config(p));
            let fast = if p == 4 {
                Some(list_kp(
                    graph,
                    &ListingConfig {
                        variant: Variant::FastK4,
                        ..experiment_config(4)
                    },
                ))
            } else {
                None
            };
            let cc = congested_clique_list(graph, p, 1);
            let naive = naive_broadcast_listing(graph, &ListingConfig::for_p(p));
            let ok = |r: &cliquelist::ListingResult| {
                if verify_against_ground_truth(graph, p, r).is_ok() {
                    "ok"
                } else {
                    "FAIL"
                }
            };
            table.row(&[
                label.clone(),
                p.to_string(),
                truth.to_string(),
                ok(&general).to_string(),
                fast.as_ref()
                    .map(|r| ok(r).to_string())
                    .unwrap_or_else(|| "-".into()),
                ok(&cc.result).to_string(),
                ok(&naive).to_string(),
            ]);
        }
    }
    println!("{table}");
}

/// E9 — ablations: sparsity-aware vs dense exchange, bad-edge deferral.
fn e9_ablation() {
    header(
        "E9",
        "Ablation — sparsity-aware in-cluster listing vs generic (dense) listing",
    );
    let mut table = Table::new(&[
        "n",
        "sparsity-aware rounds",
        "dense-assumption rounds",
        "overhead",
    ]);
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 41 + n as u64);
        let config = experiment_config(4);
        let sparse = list_kp_with_mode(&w.graph, &config, ExchangeMode::SparsityAware);
        let dense = list_kp_with_mode(&w.graph, &config, ExchangeMode::DenseAssumption);
        verify_against_ground_truth(&w.graph, 4, &sparse).expect("sparse output exact");
        verify_against_ground_truth(&w.graph, 4, &dense).expect("dense output exact");
        table.row(&[
            n.to_string(),
            sparse.rounds.total().to_string(),
            dense.rounds.total().to_string(),
            format!(
                "{:.2}x",
                dense.rounds.total() as f64 / sparse.rounds.total().max(1) as f64
            ),
        ]);
    }
    println!("{table}");
    println!("(the sparsity-aware exchange is the paper's novelty for Challenge 2: the dense variant pays for edges that are not there)");
}

/// E11 — message-level validation: the synchronous simulation of the naive
/// broadcast reproduces the analytic `Θ(Δ)` round count and the exact listing.
/// Built with `--features parallel`, the simulation steps nodes on all cores
/// (`cargo run --release -p bench --features parallel --bin experiments -- e11`).
fn e11_simulated_broadcast() {
    let executor = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "sequential"
    };
    header(
        "E11",
        "Message-level simulation — naive broadcast on the CONGEST simulator",
    );
    println!("(executor: {executor})");
    let mut table = Table::new(&["n", "m", "Δ", "simulated rounds", "words sent", "listing"]);
    for &n in &[100usize, 200, 300] {
        let g = gen::erdos_renyi(n, 0.08, 19 + n as u64);
        let (report, result) = simulate_naive_broadcast(&g, 3, 100_000);
        assert!(report.terminated, "simulation must terminate");
        let status = if verify_against_ground_truth(&g, 3, &result).is_ok() {
            "ok"
        } else {
            "FAIL"
        };
        table.row(&[
            n.to_string(),
            g.num_edges().to_string(),
            g.max_degree().to_string(),
            report.simulated_rounds.to_string(),
            report.metrics.words_sent.to_string(),
            status.to_string(),
        ]);
    }
    println!("{table}");
    println!("(the simulated round count is Δ plus O(1) start-up slack, matching naive_broadcast_rounds)");
}

/// E10 — measured rounds against the Ω̃(n^{(p-2)/p}) lower bound of Fischer et al.
fn e10_lower_bound_ratio() {
    header(
        "E10",
        "Context — measured rounds vs the Fischer et al. lower bound Ω̃(n^{(p-2)/p})",
    );
    let mut table = Table::new(&["p", "n", "rounds", "n^{(p-2)/p}", "ratio"]);
    for &p in &[4usize, 5, 6] {
        for &n in SWEEP_N {
            let w = listing_workload(n, p, 53 + n as u64);
            let result = list_kp(&w.graph, &experiment_config(p));
            let lower = (n as f64).powf((p as f64 - 2.0) / p as f64);
            table.row(&[
                p.to_string(),
                n.to_string(),
                result.rounds.total().to_string(),
                format!("{lower:.0}"),
                format!("{:.2}", result.rounds.total() as f64 / lower),
            ]);
        }
    }
    println!("{table}");
    println!("(the ratio growing like n^{{2/(p+2)}} reflects the gap between Theorem 1.1 and the known lower bound, as discussed in the paper's Section 5)");
}
