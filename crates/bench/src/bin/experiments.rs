//! Experiment harness reproducing the paper's quantitative claims.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments -- [e1|e2|...|e11|all] [--json]
//! ```
//!
//! Each experiment id corresponds to a row of the per-experiment index in
//! `DESIGN.md` §4; the output of `all` is what `EXPERIMENTS.md` records.
//! With `--json`, the tables are suppressed and a single machine-readable
//! JSON document is printed instead: one entry per experiment with the
//! per-run [`RunReport`]s (serialised through `RunReport::to_json`) and the
//! fitted exponents, so successive PRs can diff the bench trajectory.
//!
//! Every experiment runs exclusively through the [`Engine`] API; the
//! exchange-mode ablation (E9) selects the dense mode through
//! `EngineBuilder::exchange_mode` rather than a separate entry point.

use bench::sweep::SweepOutcome;
use bench::{
    core_periphery_workload, fit_exponent, git_rev, listing_workload, run_sweep, sweeps,
    trajectory, two_communities, CellRecord, CellSpec, Json, ResultStore, Sweep, Table,
};
use cliquelist::baselines::simulate_naive_broadcast;
use cliquelist::report::{json_f64, json_string};
use cliquelist::result::phase;
use cliquelist::{verify_against_ground_truth, verify_cliques, Engine, ExchangeMode, RunReport};
use expander::{decompose, DecompositionConfig};
use graphcore::partition::{
    edges_within, lemma_2_7_bound, lemma_2_7_preconditions, sample_vertices,
};
use graphcore::{gen, orientation};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = Cli::parse(&args);
    match cli.which.as_str() {
        "report" => std::process::exit(report_cmd(&cli)),
        "check" => std::process::exit(check_cmd(&cli)),
        _ => {}
    }
    let json = cli.json;
    let all = cli.which == "all";
    let mut rendered: Vec<String> = Vec::new();
    let mut run = |id: &str, f: &dyn Fn(bool) -> String| {
        if all || cli.which == id {
            rendered.push(f(json));
        }
    };
    run("e1", &e1_rounds_vs_n);
    run("e2", &e2_fast_k4);
    run("e3", &e3_congested_clique);
    run("e4", &e4_decomposition_quality);
    run("e5", &e5_bad_edges_and_loads);
    run("e6", &e6_baselines);
    run("e7", &e7_lemma_2_7);
    run("e8", &e8_correctness);
    run("e9", &e9_ablation);
    run("e10", &e10_lower_bound_ratio);
    run("e11", &e11_simulated_broadcast);
    if all || cli.which == "perf" {
        rendered.push(perf_hot_paths(&cli, json));
    }
    if json {
        println!("{{\"experiments\":[{}]}}", rendered.join(","));
    }
}

/// Parsed command line. Besides the experiment ids (`e1`…`e11`, `perf`,
/// `all`), the binary now has two harness subcommands:
///
/// * `report` — run the sweep through the result cache (always resuming) and
///   write the consolidated trajectory (`--out`, default
///   `BENCH_TRAJECTORY.json`; `-` for stdout).
/// * `check` — run the sweep the same way and compare against a committed
///   trajectory (`--baseline`); exits 1 on regression, 2 on usage errors.
///
/// `perf` accepts `--resume` (skip cells already in `--results-dir`) and all
/// three commands accept `--sweep smoke` for the tiny test grid.
struct Cli {
    which: String,
    json: bool,
    resume: bool,
    results_dir: String,
    baseline: String,
    out: String,
    time_factor: Option<f64>,
    sweep: String,
}

impl Cli {
    fn parse(args: &[String]) -> Cli {
        const VALUE_FLAGS: &[&str] = &[
            "--results-dir",
            "--baseline",
            "--out",
            "--time-factor",
            "--sweep",
        ];
        let mut cli = Cli {
            which: String::new(),
            json: false,
            resume: false,
            results_dir: "results".to_string(),
            baseline: "BENCH_TRAJECTORY.json".to_string(),
            out: "BENCH_TRAJECTORY.json".to_string(),
            time_factor: None,
            sweep: "perf".to_string(),
        };
        let mut i = 0;
        while i < args.len() {
            let arg = args[i].as_str();
            if VALUE_FLAGS.contains(&arg) {
                let value = args.get(i + 1).cloned().unwrap_or_default();
                match arg {
                    "--results-dir" => cli.results_dir = value,
                    "--baseline" => cli.baseline = value,
                    "--out" => cli.out = value,
                    "--time-factor" => cli.time_factor = value.parse().ok(),
                    _ => cli.sweep = value,
                }
                i += 2;
            } else {
                match arg {
                    "--json" => cli.json = true,
                    "--resume" => cli.resume = true,
                    _ if arg.starts_with("--") => eprintln!("warning: unknown flag {arg} ignored"),
                    _ if cli.which.is_empty() => cli.which = arg.to_string(),
                    _ => eprintln!("warning: extra argument {arg} ignored"),
                }
                i += 1;
            }
        }
        if cli.which.is_empty() {
            cli.which = "all".to_string();
        }
        cli
    }
}

/// Runs the selected sweep through the result store. Progress goes to
/// stderr so `--json` output stays machine-readable.
fn run_selected_sweep(cli: &Cli, resume: bool) -> (Sweep, SweepOutcome, String) {
    let sweep = if cli.sweep == "smoke" {
        sweeps::smoke_sweep()
    } else {
        sweeps::perf_sweep()
    };
    let store = ResultStore::new(Path::new(&cli.results_dir).join(&sweep.id));
    let rev = git_rev();
    let mut executor = sweeps::execute_perf_cell;
    let mut progress = |index: usize, total: usize, spec: &CellSpec, cached: bool| {
        let status = if cached { "cached" } else { "running" };
        eprintln!(
            "[{}/{total}] {}/{} seed={} ({status})",
            index + 1,
            spec.experiment,
            spec.workload,
            spec.seed
        );
    };
    let outcome = run_sweep(&store, &sweep, &rev, resume, &mut executor, &mut progress)
        .expect("the real executor never interrupts");
    (sweep, outcome, rev)
}

/// The n-values of the CONGEST sweeps (dense Turán-style workloads).
const SWEEP_N: &[usize] = &[120, 160, 220];

/// A CONGEST engine tuned like the pre-Engine experiment configuration
/// (constant arboricity slack, bare charge policy).
fn experiment_engine(p: usize, algorithm: &str) -> Engine {
    Engine::builder()
        .p(p)
        .algorithm(algorithm)
        .experiment_scale()
        .build()
        .expect("experiment engine config is valid")
}

/// Accumulates one experiment's machine-readable log while optionally
/// printing the human-readable header.
struct Log {
    id: &'static str,
    claim: &'static str,
    text: bool,
    runs: Vec<String>,
    fits: Vec<String>,
}

impl Log {
    fn new(id: &'static str, claim: &'static str, json: bool) -> Self {
        if !json {
            println!();
            println!("=== {id}: {claim} ===");
        }
        Log {
            id,
            claim,
            text: !json,
            runs: Vec::new(),
            fits: Vec::new(),
        }
    }

    /// Records one run: `context` holds pre-rendered JSON values (numbers
    /// raw, strings through [`json_string`]). A no-op in text mode, where
    /// the rendered document is never printed.
    fn run(&mut self, context: &[(&str, String)], report: Option<&RunReport>) {
        if self.text {
            return;
        }
        let mut entry = String::from("{");
        for (key, value) in context {
            entry.push_str(&format!("{}:{value},", json_string(key)));
        }
        match report {
            Some(report) => entry.push_str(&format!("\"report\":{}", report.to_json())),
            None => entry.push_str("\"report\":null"),
        }
        entry.push('}');
        self.runs.push(entry);
    }

    fn fit(&mut self, series: &str, points: &[(f64, f64)]) -> Option<bench::FitResult> {
        let fit = fit_exponent(points)?;
        if !self.text {
            self.fits.push(format!(
                "{{\"series\":{},\"exponent\":{},\"r_squared\":{}}}",
                json_string(series),
                json_f64(fit.exponent),
                json_f64(fit.r_squared)
            ));
        }
        Some(fit)
    }

    fn render(self) -> String {
        format!(
            "{{\"id\":{},\"claim\":{},\"runs\":[{}],\"fits\":[{}]}}",
            json_string(self.id),
            json_string(self.claim),
            self.runs.join(","),
            self.fits.join(",")
        )
    }
}

/// E1 — Theorem 1.1: K_p listing rounds scale sub-linearly, ~ n^{p/(p+2)} + n^{3/4}.
fn e1_rounds_vs_n(json: bool) -> String {
    let mut log = Log::new(
        "e1",
        "Theorem 1.1 — K_p listing in ~O(n^{3/4} + n^{p/(p+2)}) CONGEST rounds",
        json,
    );
    let mut table = Table::new(&[
        "p",
        "n",
        "m",
        "degeneracy",
        "rounds",
        "decomp",
        "heavy",
        "probes",
        "exchange",
        "final",
        "rounds/n",
    ]);
    for &p in &[4usize, 5, 6] {
        let mut points = Vec::new();
        for &n in SWEEP_N {
            let w = listing_workload(n, p, 7 + n as u64);
            let engine = experiment_engine(p, "general");
            let (report, cliques) = engine.collect(&w.graph);
            verify_cliques(&w.graph, p, &cliques).expect("E1 output must be exact");
            let rounds = report.total_rounds();
            points.push((n as f64, rounds as f64));
            log.run(
                &[
                    ("n", n.to_string()),
                    ("p", p.to_string()),
                    ("m", w.graph.num_edges().to_string()),
                ],
                Some(&report),
            );
            table.row(&[
                p.to_string(),
                n.to_string(),
                w.graph.num_edges().to_string(),
                orientation::arboricity_upper_bound(&w.graph).to_string(),
                rounds.to_string(),
                report.rounds.for_phase(phase::DECOMPOSITION).to_string(),
                report.rounds.for_phase(phase::HEAVY_UPLOAD).to_string(),
                report.rounds.for_phase(phase::LIGHT_PROBES).to_string(),
                report.rounds.for_phase(phase::PART_EXCHANGE).to_string(),
                report.rounds.for_phase(phase::FINAL_BROADCAST).to_string(),
                format!("{:.3}", rounds as f64 / n as f64),
            ]);
        }
        if let Some(fit) = log.fit(&format!("p={p}"), &points) {
            if log.text {
                println!(
                    "p = {p}: fitted rounds ~ n^{:.2} (R² = {:.3}); paper predicts n^{:.2} (+ n^0.75 term), naive baseline is n^1",
                    fit.exponent,
                    fit.r_squared,
                    p as f64 / (p as f64 + 2.0)
                );
            }
        }
    }
    if log.text {
        println!("{table}");
        println!("(dense tripartite workloads with planted cliques; decreasing rounds/n is the sub-linear Theorem 1.1 shape)");
    }
    log.render()
}

/// E2 — Theorem 1.2: the specialised K4 algorithm beats the general one.
fn e2_fast_k4(json: bool) -> String {
    let mut log = Log::new(
        "e2",
        "Theorem 1.2 — K_4 listing in ~O(n^{2/3}) rounds (vs the general algorithm)",
        json,
    );
    let mut table = Table::new(&["n", "m", "general rounds", "fast-K4 rounds", "speedup"]);
    let mut general_points = Vec::new();
    let mut fast_points = Vec::new();
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 13 + n as u64);
        let (general, general_cliques) = experiment_engine(4, "general").collect(&w.graph);
        let (fast, fast_cliques) = experiment_engine(4, "fast-k4").collect(&w.graph);
        verify_cliques(&w.graph, 4, &general_cliques).expect("general output exact");
        verify_cliques(&w.graph, 4, &fast_cliques).expect("fast-K4 output exact");
        general_points.push((n as f64, general.total_rounds() as f64));
        fast_points.push((n as f64, fast.total_rounds() as f64));
        for report in [&general, &fast] {
            log.run(
                &[("n", n.to_string()), ("m", w.graph.num_edges().to_string())],
                Some(report),
            );
        }
        table.row(&[
            n.to_string(),
            w.graph.num_edges().to_string(),
            general.total_rounds().to_string(),
            fast.total_rounds().to_string(),
            format!(
                "{:.2}x",
                general.total_rounds() as f64 / fast.total_rounds().max(1) as f64
            ),
        ]);
    }
    if log.text {
        println!("{table}");
    }
    let g = log.fit("general", &general_points);
    let f = log.fit("fast-k4", &fast_points);
    if log.text {
        if let (Some(g), Some(f)) = (g, f) {
            println!(
                "fitted exponents: general n^{:.2} (paper: 3/4 term dominates), fast-K4 n^{:.2} (paper: 2/3)",
                g.exponent, f.exponent
            );
        }
    }
    log.render()
}

/// E3 — Theorem 1.3: CONGESTED CLIQUE rounds ~ Θ(1 + m / n^{1+2/p}).
fn e3_congested_clique(json: bool) -> String {
    let mut log = Log::new(
        "e3",
        "Theorem 1.3 — sparsity-aware CONGESTED CLIQUE listing in ~Θ(1 + m/n^{1+2/p}) rounds",
        json,
    );
    let n = 400;
    let mut table = Table::new(&[
        "p",
        "m",
        "rounds",
        "predicted 1+m/n^{1+2/p}",
        "max send",
        "max recv",
    ]);
    // Density sweeps on K_p-free backgrounds (bipartite for triangles,
    // tripartite for K4/K5) keep the ground-truth enumeration cheap while the
    // edge volume — the quantity Theorem 1.3 is about — varies by 20x.
    for &p in &[3usize, 4, 5] {
        let parts = if p == 3 { 2 } else { 3 };
        let mut points = Vec::new();
        let engine = Engine::builder()
            .p(p)
            .algorithm("congested-clique")
            .seed(3)
            .build()
            .expect("valid engine");
        for &density in &[0.05f64, 0.2, 0.4, 0.7, 0.95] {
            let g = gen::multipartite(n, parts, density, 5 + (density * 100.0) as u64);
            let (report, cliques) = engine.collect(&g);
            verify_cliques(&g, p, &cliques).expect("E3 output must be exact");
            let stats = report.congested_clique.expect("CC stats present");
            points.push((g.num_edges() as f64, report.total_rounds() as f64));
            log.run(
                &[
                    ("n", n.to_string()),
                    ("m", g.num_edges().to_string()),
                    ("density", json_f64(density)),
                ],
                Some(&report),
            );
            table.row(&[
                p.to_string(),
                g.num_edges().to_string(),
                report.total_rounds().to_string(),
                format!("{:.2}", stats.predicted_rounds),
                stats.max_send.to_string(),
                stats.max_recv.to_string(),
            ]);
        }
        if let Some(fit) = log.fit(&format!("p={p}"), &points) {
            if log.text {
                println!(
                    "p = {p}: fitted rounds ~ m^{:.2} (paper predicts linear in m once above the constant regime)",
                    fit.exponent
                );
            }
        }
    }
    if log.text {
        println!("{table}");
    }
    log.render()
}

/// E4 — Definition 2.2 / Theorem 2.3: decomposition quality.
fn e4_decomposition_quality(json: bool) -> String {
    let mut log = Log::new(
        "e4",
        "Definition 2.2 — expander decomposition guarantees (|E_r| ≤ |E|/6, degrees, mixing, arboricity)",
        json,
    );
    let mut table = Table::new(&[
        "graph",
        "delta",
        "|E|",
        "|E_m|",
        "|E_s|",
        "|E_r|",
        "E_r frac",
        "clusters",
        "min deg (req)",
        "max mixing (limit)",
        "valid",
    ]);
    let workloads: Vec<(String, graphcore::Graph)> = vec![
        ("er(300,0.15)".into(), gen::erdos_renyi(300, 0.15, 3)),
        ("er(300,0.35)".into(), gen::erdos_renyi(300, 0.35, 3)),
        ("ba(350,6)".into(), gen::barabasi_albert(350, 6, 3)),
        (
            "rmat(9,8)".into(),
            gen::rmat(9, 8, (0.57, 0.19, 0.19, 0.05), 3),
        ),
        ("turan(300,3,0.8)".into(), gen::multipartite(300, 3, 0.8, 3)),
        (
            "2-communities(2x120)".into(),
            two_communities(120, 8, 0.35, 3),
        ),
    ];
    let config = DecompositionConfig::default();
    for (label, graph) in &workloads {
        for &delta in &[0.4f64, 0.5, 0.6] {
            let d = decompose(graph, delta, &config, 1);
            let valid = d.verify(graph).is_ok();
            let em_graph = d.em_graph(graph.num_vertices());
            let min_deg = d
                .clusters
                .iter()
                .map(|c| c.min_internal_degree(&em_graph))
                .min()
                .unwrap_or(0);
            let max_mixing = d
                .clusters
                .iter()
                .map(|c| c.mixing_time(&em_graph))
                .fold(0.0f64, f64::max);
            log.run(
                &[
                    ("graph", json_string(label)),
                    ("delta", json_f64(delta)),
                    (
                        "er_fraction",
                        json_f64(d.er.len() as f64 / graph.num_edges().max(1) as f64),
                    ),
                    ("clusters", d.clusters.len().to_string()),
                    ("valid", valid.to_string()),
                ],
                None,
            );
            table.row(&[
                label.clone(),
                format!("{delta:.1}"),
                graph.num_edges().to_string(),
                d.em.len().to_string(),
                d.es.len().to_string(),
                d.er.len().to_string(),
                format!("{:.3}", d.er.len() as f64 / graph.num_edges().max(1) as f64),
                d.clusters.len().to_string(),
                format!("{} ({})", min_deg, d.degree_threshold),
                format!(
                    "{:.1} ({:.1})",
                    max_mixing,
                    d.config.mixing_limit(graph.num_vertices())
                ),
                valid.to_string(),
            ]);
        }
    }
    if log.text {
        println!("{table}");
        println!(
            "(paper requires E_r fraction ≤ 1/6 ≈ 0.167, cluster min degree ≥ Ω(n^δ), polylog mixing)"
        );
    }
    log.render()
}

/// E5 — Section 2.4.1: bad-edge fraction and the Remark 2.10 load bound.
fn e5_bad_edges_and_loads(json: bool) -> String {
    let mut log = Log::new(
        "e5",
        "Section 2.4.1 — bad-edge fraction ≤ 1/25 of cluster edges; Remark 2.10 per-node load",
        json,
    );
    let mut table = Table::new(&[
        "n",
        "bad factor",
        "bad edges",
        "cluster edges",
        "fraction (limit 0.04)",
        "max learned words",
        "n^{3/4}·A·w",
    ]);
    for &n in &[140usize, 200, 260] {
        for &(label, factor) in &[("paper (100)", 100.0f64), ("stress (0)", 0.0)] {
            // Core-periphery inputs: the periphery is C-light, so the cluster
            // must learn its edges through the probe protocol, and lowering
            // the bad-node constant makes the deferral machinery fire.
            let w = core_periphery_workload(n, 11 + n as u64);
            let a = orientation::arboricity_upper_bound(&w.graph);
            let engine = Engine::builder()
                .p(4)
                .algorithm("general")
                .experiment_scale()
                .bad_node_factor(factor)
                .build()
                .expect("valid engine");
            let (report, cliques) = engine.collect(&w.graph);
            verify_cliques(&w.graph, 4, &cliques).expect("E5 output must be exact");
            for c in &w.planted {
                assert!(
                    cliques.contains(&c.vertices),
                    "planted straddling K4 missing"
                );
            }
            let words = engine.config().words_per_edge;
            let bound = (n as f64).powf(0.75) * a as f64 * words as f64;
            log.run(
                &[
                    ("n", n.to_string()),
                    ("bad_node_factor", json_f64(factor)),
                    ("load_bound", json_f64(bound)),
                ],
                Some(&report),
            );
            table.row(&[
                n.to_string(),
                label.to_string(),
                report.diagnostics.bad_edges.to_string(),
                report.diagnostics.cluster_edges.to_string(),
                format!("{:.4}", report.diagnostics.bad_edge_fraction()),
                report.diagnostics.max_learned_words.to_string(),
                format!("{bound:.0}"),
            ]);
        }
    }
    if log.text {
        println!("{table}");
        println!("(with the paper's constant the bad-edge fraction stays well below 1/25; the stress setting shows the deferral machinery at work while the output stays exact)");
    }
    log.render()
}

/// E6 — who wins: the paper's algorithms vs the naive broadcast and the
/// Eden-et-al-style baseline.
fn e6_baselines(json: bool) -> String {
    let mut log = Log::new(
        "e6",
        "Comparison — paper's K4 algorithms vs naive broadcast and Eden-style baseline",
        json,
    );
    let mut table = Table::new(&[
        "n",
        "m",
        "naive Θ(Δ)",
        "eden-style",
        "general K4",
        "fast K4",
    ]);
    let mut series: Vec<(&str, Vec<(f64, f64)>)> = vec![
        ("naive-broadcast", Vec::new()),
        ("eden-k4", Vec::new()),
        ("general", Vec::new()),
        ("fast-k4", Vec::new()),
    ];
    let naive_engine = Engine::builder()
        .p(4)
        .algorithm("naive-broadcast")
        .build()
        .expect("valid engine");
    let eden_engine = Engine::builder()
        .p(4)
        .algorithm("eden-k4")
        .seed(1)
        .build()
        .expect("valid engine");
    let general_engine = experiment_engine(4, "general");
    let fast_engine = experiment_engine(4, "fast-k4");
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 29 + n as u64);
        let engines = [&naive_engine, &eden_engine, &general_engine, &fast_engine];
        let mut reports = Vec::new();
        for engine in engines {
            let (report, cliques) = engine.collect(&w.graph);
            verify_cliques(&w.graph, 4, &cliques).expect("all baselines must be exact");
            log.run(
                &[("n", n.to_string()), ("m", w.graph.num_edges().to_string())],
                Some(&report),
            );
            reports.push(report);
        }
        for (series, report) in series.iter_mut().zip(&reports) {
            series.1.push((n as f64, report.total_rounds() as f64));
        }
        table.row(&[
            n.to_string(),
            w.graph.num_edges().to_string(),
            reports[0].total_rounds().to_string(),
            reports[1].total_rounds().to_string(),
            reports[2].total_rounds().to_string(),
            reports[3].total_rounds().to_string(),
        ]);
    }
    if log.text {
        println!("{table}");
    }
    for (label, points) in &series {
        if let Some(fit) = log.fit(label, points) {
            if log.text {
                println!("{label}: rounds ~ n^{:.2}", fit.exponent);
            }
        }
    }
    if log.text {
        println!(
            "(paper exponents: naive Θ(n) = n^1.0, Eden et al. n^0.83, Theorem 1.1 n^0.75, Theorem 1.2 n^0.67; \
the asymptotic crossover in absolute rounds lies far beyond simulation scale because of the p² and polylog \
constants, so the comparison is between the fitted growth exponents)"
        );
    }
    log.render()
}

/// E7 — Lemma 2.7: random vertex samples do not concentrate edges.
fn e7_lemma_2_7(json: bool) -> String {
    let mut log = Log::new(
        "e7",
        "Lemma 2.7 — a q-sample of an m-edge graph induces ≤ 6q²m edges w.h.p.",
        json,
    );
    let n = 500;
    let g = gen::erdos_renyi(n, 0.8, 2);
    let m = g.num_edges();
    let mut table = Table::new(&[
        "q",
        "preconditions",
        "max sampled edges (20 seeds)",
        "bound 6q²m",
        "violations",
    ]);
    for &q in &[0.5f64, 0.7, 0.9] {
        let pre = lemma_2_7_preconditions(n, m, g.max_degree(), q);
        let mut max_edges = 0usize;
        let mut violations = 0usize;
        for seed in 0..20 {
            let sample = sample_vertices(n, q, seed);
            let within = edges_within(&g, &sample);
            max_edges = max_edges.max(within);
            if (within as f64) > lemma_2_7_bound(m, q) {
                violations += 1;
            }
        }
        log.run(
            &[
                ("q", json_f64(q)),
                ("max_sampled_edges", max_edges.to_string()),
                ("bound", json_f64(lemma_2_7_bound(m, q))),
                ("violations", violations.to_string()),
            ],
            None,
        );
        table.row(&[
            format!("{q:.1}"),
            pre.to_string(),
            max_edges.to_string(),
            format!("{:.0}", lemma_2_7_bound(m, q)),
            violations.to_string(),
        ]);
    }
    if log.text {
        println!("{table}");
    }
    log.render()
}

/// E8 — end-to-end correctness matrix.
fn e8_correctness(json: bool) -> String {
    let mut log = Log::new(
        "e8",
        "Correctness — union of node outputs equals the exact K_p list (all algorithms)",
        json,
    );
    let mut table = Table::new(&[
        "workload",
        "p",
        "cliques",
        "CONGEST general",
        "fast K4",
        "congested clique",
        "naive",
    ]);
    let cases: Vec<(String, graphcore::Graph)> = vec![
        ("er(90,0.35)".into(), gen::erdos_renyi(90, 0.35, 1)),
        (
            "turan+planted(120,4)".into(),
            listing_workload(120, 4, 3).graph,
        ),
        ("ba(150,8)".into(), gen::barabasi_albert(150, 8, 2)),
        (
            "planted er(100)".into(),
            gen::planted_cliques(100, 0.05, 3, 6, 4).0,
        ),
        ("complete(15)".into(), gen::complete_graph(15)),
        ("bipartite(30,30)".into(), gen::complete_bipartite(30, 30)),
    ];
    for (label, graph) in &cases {
        for &p in &[4usize, 5] {
            let truth = graphcore::cliques::count_cliques(graph, p);
            let mut statuses: Vec<String> = Vec::new();
            let mut algorithms: Vec<&str> =
                vec!["general", "fast-k4", "congested-clique", "naive-broadcast"];
            if p != 4 {
                algorithms.retain(|&a| a != "fast-k4");
            }
            let mut fast_status = "-".to_string();
            for name in algorithms {
                let engine = Engine::builder()
                    .p(p)
                    .algorithm(name)
                    .experiment_scale()
                    .seed(1)
                    .build()
                    .expect("valid engine");
                let (report, cliques) = engine.collect(graph);
                let ok = if verify_cliques(graph, p, &cliques).is_ok() && cliques.len() == truth {
                    "ok"
                } else {
                    "FAIL"
                };
                log.run(
                    &[
                        ("workload", json_string(label)),
                        ("p", p.to_string()),
                        ("ground_truth", truth.to_string()),
                        ("exact", (ok == "ok").to_string()),
                    ],
                    Some(&report),
                );
                if name == "fast-k4" {
                    fast_status = ok.to_string();
                } else {
                    statuses.push(ok.to_string());
                }
            }
            table.row(&[
                label.clone(),
                p.to_string(),
                truth.to_string(),
                statuses[0].clone(),
                fast_status,
                statuses[1].clone(),
                statuses[2].clone(),
            ]);
        }
    }
    if log.text {
        println!("{table}");
    }
    log.render()
}

/// E9 — ablations: sparsity-aware vs dense exchange, selected through the
/// engine builder.
fn e9_ablation(json: bool) -> String {
    let mut log = Log::new(
        "e9",
        "Ablation — sparsity-aware in-cluster listing vs generic (dense) listing",
        json,
    );
    let mut table = Table::new(&[
        "n",
        "sparsity-aware rounds",
        "dense-assumption rounds",
        "overhead",
    ]);
    let sparse_engine = experiment_engine(4, "general");
    let dense_engine = Engine::builder()
        .p(4)
        .algorithm("general")
        .experiment_scale()
        .exchange_mode(ExchangeMode::DenseAssumption)
        .build()
        .expect("valid engine");
    for &n in SWEEP_N {
        let w = listing_workload(n, 4, 41 + n as u64);
        let (sparse, sparse_cliques) = sparse_engine.collect(&w.graph);
        let (dense, dense_cliques) = dense_engine.collect(&w.graph);
        verify_cliques(&w.graph, 4, &sparse_cliques).expect("sparse output exact");
        verify_cliques(&w.graph, 4, &dense_cliques).expect("dense output exact");
        for (mode, report) in [("sparsity-aware", &sparse), ("dense-assumption", &dense)] {
            log.run(
                &[("n", n.to_string()), ("exchange_mode", json_string(mode))],
                Some(report),
            );
        }
        table.row(&[
            n.to_string(),
            sparse.total_rounds().to_string(),
            dense.total_rounds().to_string(),
            format!(
                "{:.2}x",
                dense.total_rounds() as f64 / sparse.total_rounds().max(1) as f64
            ),
        ]);
    }
    if log.text {
        println!("{table}");
        println!("(the sparsity-aware exchange is the paper's novelty for Challenge 2: the dense variant pays for edges that are not there)");
    }
    log.render()
}

/// E10 — measured rounds against the Ω̃(n^{(p-2)/p}) lower bound of Fischer et al.
fn e10_lower_bound_ratio(json: bool) -> String {
    let mut log = Log::new(
        "e10",
        "Context — measured rounds vs the Fischer et al. lower bound Ω̃(n^{(p-2)/p})",
        json,
    );
    let mut table = Table::new(&["p", "n", "rounds", "n^{(p-2)/p}", "ratio"]);
    for &p in &[4usize, 5, 6] {
        for &n in SWEEP_N {
            let w = listing_workload(n, p, 53 + n as u64);
            let (report, _) = experiment_engine(p, "general").count(&w.graph);
            let lower = (n as f64).powf((p as f64 - 2.0) / p as f64);
            log.run(
                &[
                    ("n", n.to_string()),
                    ("p", p.to_string()),
                    ("lower_bound", json_f64(lower)),
                ],
                Some(&report),
            );
            table.row(&[
                p.to_string(),
                n.to_string(),
                report.total_rounds().to_string(),
                format!("{lower:.0}"),
                format!("{:.2}", report.total_rounds() as f64 / lower),
            ]);
        }
    }
    if log.text {
        println!("{table}");
        println!("(the ratio growing like n^{{2/(p+2)}} reflects the gap between Theorem 1.1 and the known lower bound, as discussed in the paper's Section 5)");
    }
    log.render()
}

/// PERF — the bench-trajectory experiment: wall-clock timings of the
/// enumeration hot path on small fixed dense workloads, plus one engine run
/// per registered algorithm. `experiments -- perf --json` is what the CI
/// perf-smoke job captures and what `BENCH_PR3.json` at the repository root
/// records, so successive PRs can diff simulator performance (unlike E1–E11,
/// the quantities here are timings, not round counts — they carry no
/// scientific claim and vary with the host).
fn perf_hot_paths(cli: &Cli, json: bool) -> String {
    let (sweep, outcome, rev) = run_selected_sweep(cli, cli.resume);
    let records = trajectory::with_speedups(&outcome.records);
    if !json {
        println!();
        println!("=== perf: {} ===", sweep.claim);
        println!(
            "(rev {rev}; {} cells: {} executed, {} cached under {}/{})",
            records.len(),
            outcome.executed,
            outcome.skipped,
            cli.results_dir,
            sweep.id
        );
        let mut table = Table::new(&[
            "experiment",
            "workload",
            "p",
            "threads",
            "kernel",
            "cliques",
            "best ms",
            "mean ms",
            "used",
        ]);
        for record in &records {
            let config = &record.spec.config;
            let metrics = &record.metrics;
            let field = |doc: &Json, key: &str| {
                doc.get(key)
                    .and_then(Json::as_f64)
                    .map_or_else(|| "-".to_string(), |v| format!("{v:.2}"))
            };
            let count = metrics
                .get("cliques")
                .and_then(Json::as_f64)
                .map_or_else(|| "skipped".to_string(), |v| format!("{v}"));
            table.row(&[
                record.spec.experiment.clone(),
                record.spec.workload.clone(),
                config
                    .get("p")
                    .and_then(Json::as_f64)
                    .map_or_else(|| "-".to_string(), |v| format!("{v}")),
                config
                    .get("threads")
                    .and_then(Json::as_f64)
                    .map_or_else(|| "-".to_string(), |v| format!("{v}")),
                config
                    .get("kernel")
                    .and_then(Json::as_str)
                    .unwrap_or("-")
                    .to_string(),
                count,
                field(metrics, "best_ms"),
                field(metrics, "mean_ms"),
                metrics
                    .get("threads_used")
                    .and_then(Json::as_f64)
                    .map_or_else(|| "-".to_string(), |v| format!("{v}")),
            ]);
        }
        println!("{table}");
        println!(
            "(timings are host-dependent; `experiments -- report` consolidates these cells \
             plus the historical artifacts into BENCH_TRAJECTORY.json)"
        );
    }
    let runs: Vec<String> = records.iter().map(|r| perf_run_json(r).render()).collect();
    format!(
        "{{\"id\":{},\"claim\":{},\"runs\":[{}],\"fits\":[]}}",
        json_string(&sweep.id),
        json_string(&sweep.claim),
        runs.join(",")
    )
}

/// Renders one cached cell in the shape of the historical `perf` run entries
/// (`kind`/`workload`/`p`/…/`report`), extended with the cell's identity
/// (`seed`, `git_rev`, `key`) and the observed fan-out (`threads_used`).
fn perf_run_json(record: &CellRecord) -> Json {
    let config = &record.spec.config;
    let metrics = &record.metrics;
    let mut run: Vec<(&str, Json)> = vec![
        ("kind", config.get("kind").cloned().unwrap_or(Json::Null)),
        ("workload", Json::Str(record.spec.workload.clone())),
        ("p", config.get("p").cloned().unwrap_or(Json::Null)),
    ];
    if let Some(algorithm) = config.get("algorithm") {
        run.push(("algorithm", algorithm.clone()));
    }
    if let Some(threads) = config.get("threads") {
        run.push(("threads", threads.clone()));
    }
    if let Some(kernel) = config.get("kernel") {
        run.push(("kernel", kernel.clone()));
    }
    for key in [
        "available_parallelism",
        "cliques",
        "resolved_kernel",
        "best_ms",
        "mean_ms",
        "speedup_vs_1_thread",
        "speedup_vs_recursive",
        "speedup_provenance",
        "threads_granted",
        "threads_used",
        "skipped",
    ] {
        if let Some(value) = metrics.get(key) {
            run.push((key, value.clone()));
        }
    }
    run.push(("seed", Json::Num(record.spec.seed as f64)));
    run.push(("git_rev", Json::Str(record.git_rev.clone())));
    run.push((
        "key",
        Json::Str(format!("{:016x}", record.spec.key(&record.git_rev))),
    ));
    run.push((
        "report",
        metrics.get("report").cloned().unwrap_or(Json::Null),
    ));
    Json::obj(run)
}

/// `experiments -- report`: run the sweep through the cache and write the
/// consolidated trajectory artifact.
fn report_cmd(cli: &Cli) -> i32 {
    let (sweep, outcome, rev) = run_selected_sweep(cli, true);
    let history = trajectory::load_history(Path::new("."));
    let doc = trajectory::consolidate(&sweep, &outcome.records, &history, &rev);
    let rendered = doc.render();
    if cli.out == "-" {
        println!("{rendered}");
        return 0;
    }
    if let Err(e) = std::fs::write(&cli.out, format!("{rendered}\n")) {
        eprintln!("error: could not write {}: {e}", cli.out);
        return 2;
    }
    eprintln!(
        "wrote {} ({} cells, {} historical artifacts, rev {rev})",
        cli.out,
        outcome.records.len(),
        history.len()
    );
    0
}

/// `experiments -- check`: the perf gate. Runs the sweep (resuming from the
/// cache), compares against the committed trajectory, and exits nonzero on
/// any regression beyond the thresholds.
fn check_cmd(cli: &Cli) -> i32 {
    let text = match std::fs::read_to_string(&cli.baseline) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: cannot read baseline {}: {e}", cli.baseline);
            return 2;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("error: baseline {} is not valid JSON: {e:?}", cli.baseline);
            return 2;
        }
    };
    let (_, outcome, rev) = run_selected_sweep(cli, true);
    let mut violations = trajectory::check(&baseline, &outcome.records, cli.time_factor);
    // The multi-core scaling gate (PR 10): a parallel build on a multi-core
    // host must actually produce the derived speedup cells — CI's 4-vCPU
    // legs fail here if the scaling series silently disappears. Sequential
    // builds skip it (the scaling cells are feature-gated out), and 1-core
    // hosts pass vacuously inside `check_scaling`.
    if cfg!(feature = "parallel") {
        let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        violations.extend(trajectory::check_scaling(&outcome.records, host));
    }
    if violations.is_empty() {
        eprintln!(
            "perf gate OK: {} fresh cells at rev {rev} are within thresholds of {}",
            outcome.records.len(),
            cli.baseline
        );
        return 0;
    }
    eprintln!(
        "perf gate FAILED: {} regression(s) vs {}",
        violations.len(),
        cli.baseline
    );
    for violation in &violations {
        eprintln!("  {violation}");
    }
    1
}

/// E11 — message-level validation: the synchronous simulation of the naive
/// broadcast reproduces the analytic `Θ(Δ)` round count and the exact listing.
/// Built with `--features parallel`, the simulation steps nodes on all cores
/// (`cargo run --release -p bench --features parallel --bin experiments -- e11`).
fn e11_simulated_broadcast(json: bool) -> String {
    let executor = if cfg!(feature = "parallel") {
        "parallel"
    } else {
        "sequential"
    };
    let mut log = Log::new(
        "e11",
        "Message-level simulation — naive broadcast on the CONGEST simulator",
        json,
    );
    if log.text {
        println!("(executor: {executor})");
    }
    let mut table = Table::new(&["n", "m", "Δ", "simulated rounds", "words sent", "listing"]);
    for &n in &[100usize, 200, 300] {
        let g = gen::erdos_renyi(n, 0.08, 19 + n as u64);
        let (report, result) = simulate_naive_broadcast(&g, 3, 100_000);
        assert!(report.terminated, "simulation must terminate");
        let exact = verify_against_ground_truth(&g, 3, &result).is_ok();
        let status = if exact { "ok" } else { "FAIL" };
        log.run(
            &[
                ("n", n.to_string()),
                ("m", g.num_edges().to_string()),
                ("executor", json_string(executor)),
                ("simulated_rounds", report.simulated_rounds.to_string()),
                ("words_sent", report.metrics.words_sent.to_string()),
                ("exact", exact.to_string()),
            ],
            None,
        );
        table.row(&[
            n.to_string(),
            g.num_edges().to_string(),
            g.max_degree().to_string(),
            report.simulated_rounds.to_string(),
            report.metrics.words_sent.to_string(),
            status.to_string(),
        ]);
    }
    if log.text {
        println!("{table}");
        println!("(the simulated round count is Δ plus O(1) start-up slack, matching naive_broadcast_rounds)");
    }
    log.render()
}
