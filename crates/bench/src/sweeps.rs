//! The committed sweep definitions and the real cell executor.
//!
//! [`perf_sweep`] is the bench-trajectory grid: the enumeration, thread-
//! scaling, cluster-scaling, per-algorithm engine and query-throughput cells
//! that earlier PRs measured ad hoc inside the `experiments` binary,
//! declared here as data so the runner can cache, resume and consolidate
//! them. The grid also grows
//! past the historical `n ≈ 400` ceiling (`er(600, 0.18)`, a 1024-vertex
//! RMAT graph, and a larger engine workload) now that completed cells are
//! cached — an interrupted sweep no longer throws away the big cells.
//!
//! Every parameter that can change a cell's result is in the cell's config
//! object (including whether the binary was built with the `parallel`
//! feature, and the resolved thread grant for engine cells, which depends on
//! `CLIQUELIST_THREADS`), so the store key misses whenever the measurement
//! conditions change.

use crate::json::Json;
use crate::store::CellSpec;
use crate::sweep::{Interrupted, Sweep};
use crate::workloads::listing_workload;
use cliquelist::{CountSink, Engine};
use graphcore::{cliques, gen, EdgeBatch, Graph};
use std::time::Instant;

/// Timing repetitions per cell (matches the pre-harness perf experiment).
pub const REPS: u32 = 3;

/// The standard RMAT quadrant probabilities (Graph500 defaults).
const RMAT_PROBS: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

/// Thread grants exercised by the scaling experiments.
const SCALING_THREADS: &[usize] = &[1, 2, 4, 8];

fn num(value: usize) -> Json {
    Json::Num(value as f64)
}

/// The `perf` sweep: the full bench-trajectory grid.
pub fn perf_sweep() -> Sweep {
    let parallel_build = cfg!(feature = "parallel");
    let mut sweep = Sweep::new(
        "perf",
        "Bench trajectory — wall-clock of exact enumeration, thread/cluster scaling, \
         and one engine run per algorithm",
    );
    let base = |kind: &str| {
        vec![
            ("kind", Json::Str(kind.to_string())),
            ("parallel_build", Json::Bool(parallel_build)),
        ]
    };

    // Exact sequential K_p enumeration — the path every algorithm's ground
    // truth and final broadcast run through. The first four cells are the
    // historical grid (BENCH_PR3–5); the last two grow past n ≈ 400.
    let enumeration: &[(&str, &str, usize, f64, usize, u64)] = &[
        // (workload label, generator, n-or-scale, param, p, graph seed)
        ("er(400,0.25)", "er", 400, 0.25, 3, 7),
        ("er(400,0.25)", "er", 400, 0.25, 4, 7),
        ("er(200,0.5)", "er", 200, 0.5, 5, 9),
        ("turan(300,3,0.8)", "turan", 300, 0.8, 4, 3),
        ("er(600,0.18)", "er", 600, 0.18, 4, 11),
        ("rmat(10,16)", "rmat", 10, 16.0, 4, 13),
    ];
    for &(label, generator, n, param, p, graph_seed) in enumeration {
        let mut config = base("enumeration");
        config.extend([
            ("gen", Json::Str(generator.to_string())),
            ("n", num(n)),
            ("param", Json::Num(param)),
            ("p", num(p)),
        ]);
        sweep.cell("enumeration", label, Json::obj(config), graph_seed);
    }

    // Thread-scaling of the sharded parallel enumerator. The er(400) × p4
    // series is the historical one; er(600) is the grown grid (two thread
    // counts keep the cell budget bounded — the speedup curve comes from the
    // er(400) series).
    let thread_scaling: &[(&str, usize, f64, u64, &[usize])] = &[
        ("er(400,0.25)", 400, 0.25, 7, SCALING_THREADS),
        ("er(600,0.18)", 600, 0.18, 11, &[1, 4]),
    ];
    for &(label, n, param, graph_seed, grants) in thread_scaling {
        for &threads in grants {
            let mut config = base("thread-scaling");
            config.extend([
                ("gen", Json::Str("er".to_string())),
                ("n", num(n)),
                ("param", Json::Num(param)),
                ("p", num(4)),
                ("threads", num(threads)),
            ]);
            sweep.cell("thread-scaling", label, Json::obj(config), graph_seed);
        }
    }

    // Cluster-scaling of the CONGEST pipeline: the `general` algorithm fans
    // its per-cluster work out over the ordered-merge orchestrator (PR 5).
    for &threads in SCALING_THREADS {
        let mut config = base("cluster-scaling");
        config.extend([
            ("gen", Json::Str("er".to_string())),
            ("n", num(260)),
            ("param", Json::Num(0.12)),
            ("p", num(4)),
            ("algorithm", Json::Str("general".to_string())),
            ("threads", num(threads)),
        ]);
        sweep.cell(
            "cluster-scaling",
            "er(260,0.12) sparse general",
            Json::obj(config),
            5,
        );
    }

    // One engine run per registered algorithm on the standard listing
    // workload, plus a grown workload for the two headline algorithms. The
    // engine resolves `Parallelism::Auto`, so the resolved grant is part of
    // the cell identity — a different `CLIQUELIST_THREADS` is a different
    // cell, which is exactly what the CI thread matrix wants.
    let auto = if parallel_build {
        cliquelist::config::auto_threads()
    } else {
        1
    };
    let engine_cells: &[(usize, u64, &[&str])] = &[
        (
            120,
            13,
            &[
                "general",
                "fast-k4",
                "congested-clique",
                "naive-broadcast",
                "eden-k4",
            ],
        ),
        (200, 17, &["general", "fast-k4"]),
    ];
    for &(n, graph_seed, algorithms) in engine_cells {
        for &algorithm in algorithms {
            let mut config = base("engine");
            config.extend([
                ("workload", Json::Str("listing".to_string())),
                ("n", num(n)),
                ("p", num(4)),
                ("algorithm", Json::Str(algorithm.to_string())),
                ("auto_threads", num(auto)),
            ]);
            sweep.cell(
                "engine",
                format!("listing_workload({n})"),
                Json::obj(config),
                graph_seed,
            );
        }
    }

    // Query throughput over an immutable snapshot (PR 7): build the snapshot
    // once, then time mixed batches through the `QueryService`, cold and
    // warm. The resolved `Parallelism::Auto` grant is the batch fan-out
    // width, so it is part of the cell identity exactly like engine cells;
    // the batch payloads themselves are byte-identical at any grant and are
    // gated exactly (the `responses` metric).
    let query_cells: &[(&str, &str, usize, f64, u64)] = &[
        ("er(300,0.2)", "er", 300, 0.2, 19),
        ("turan(240,3,0.7)", "turan", 240, 0.7, 23),
    ];
    for &(label, generator, n, param, graph_seed) in query_cells {
        let mut config = base("query-throughput");
        config.extend([
            ("gen", Json::Str(generator.to_string())),
            ("n", num(n)),
            ("param", Json::Num(param)),
            ("p", num(4)),
            ("auto_threads", num(auto)),
        ]);
        sweep.cell("query-throughput", label, Json::obj(config), graph_seed);
    }

    // Fault sweep (PR 8): the message-level naive-broadcast testbed under
    // seeded loss, masked by the reliable ack/retransmit transport. The drop
    // probability is carried in parts-per-million so the config stays
    // integral; the retransmit overhead cells (`retransmits`,
    // `simulated_rounds`) are deterministic in `(graph, p, plan)` and gated
    // byte-exactly, pinning the fault replay contract in the trajectory.
    for &drop_ppm in &[0usize, 10_000, 50_000] {
        let mut config = base("fault-sweep");
        config.extend([
            ("gen", Json::Str("er".to_string())),
            ("n", num(20)),
            ("param", Json::Num(0.4)),
            ("p", num(3)),
            ("drop_ppm", num(drop_ppm)),
            ("fault_seed", num(0xFA17)),
            ("max_rounds", num(10_000)),
        ]);
        sweep.cell(
            "fault-sweep",
            "er(20,0.4) reliable naive",
            Json::obj(config),
            29,
        );
    }

    // Kernel sweep (PR 10): the recursive kernel against the induced-
    // subgraph trie kernel (and the `Auto` heuristic) on the two shapes the
    // selection heuristic distinguishes. `turan(450,3)` at p = 4 is the
    // criterion cell — the extremal K4-free graph, pure intersection work
    // with zero emissions, where the trie's pivot shortcut dominates;
    // `er(400,0.25)` is the recursive kernel's low-degeneracy home turf.
    // The clique count and the resolved kernel are deterministic and gated
    // byte-exactly; consolidation derives `speedup_vs_recursive` per
    // workload from the timing cells.
    let kernel_cells: &[(&str, &str, usize, f64, usize, u64)] = &[
        ("turan(450,3)", "turan", 450, 1.0, 4, 7),
        ("er(400,0.25)", "er", 400, 0.25, 4, 7),
    ];
    for &(label, generator, n, param, p, graph_seed) in kernel_cells {
        for kernel in ["recursive", "trie", "auto"] {
            let mut config = base("kernel-sweep");
            config.extend([
                ("gen", Json::Str(generator.to_string())),
                ("n", num(n)),
                ("param", Json::Num(param)),
                ("p", num(p)),
                ("kernel", Json::Str(kernel.to_string())),
            ]);
            sweep.cell("kernel-sweep", label, Json::obj(config), graph_seed);
        }
    }

    // Scaling sweep (PR 10): pinned-thread wall-clock of the sharded
    // enumerator under each explicit kernel on the dense criterion workload.
    // Unlike `thread-scaling` (which exercises the default kernel path),
    // these cells pin both axes, so consolidation can derive
    // `speedup_vs_1_thread` per kernel — the multi-core scaling evidence —
    // and each derived cell records whether it came from a 1-core or a
    // multi-core host.
    for kernel in ["recursive", "trie"] {
        for &threads in SCALING_THREADS {
            let mut config = base("scaling-sweep");
            config.extend([
                ("gen", Json::Str("turan".to_string())),
                ("n", num(450)),
                ("param", Json::Num(1.0)),
                ("p", num(4)),
                ("kernel", Json::Str(kernel.to_string())),
                ("threads", num(threads)),
            ]);
            sweep.cell("scaling-sweep", "turan(450,3)", Json::obj(config), 7);
        }
    }

    // Churn sweep (PR 9): incremental vs from-scratch snapshot derivation
    // over growing batch sizes on the cluster-scaling workload. The two
    // small batches stay under the rebuild threshold (the incremental
    // index-patching path); the large one crosses it (the rebuild path) —
    // the strategy decision, applied-change counts and delta-listing sizes
    // are deterministic in `(graph, batch_target)` and gated byte-exactly.
    for &batch_target in &[32usize, 256, 4096] {
        let mut config = base("churn-sweep");
        config.extend([
            ("gen", Json::Str("er".to_string())),
            ("n", num(260)),
            ("param", Json::Num(0.12)),
            ("p", num(3)),
            ("batch_target", num(batch_target)),
        ]);
        sweep.cell("churn-sweep", "er(260,0.12) churn", Json::obj(config), 5);
    }
    sweep
}

/// A tiny sweep for CLI-level tests and quick local smoke runs: two
/// enumeration cells and one engine cell on 40-vertex graphs, cheap even in
/// debug builds (`experiments -- perf --sweep smoke`). Same executor, same
/// store, same consolidation path as [`perf_sweep`].
pub fn smoke_sweep() -> Sweep {
    let parallel_build = cfg!(feature = "parallel");
    let mut sweep = Sweep::new("smoke", "Smoke sweep — tiny cells exercising the harness");
    for p in [3usize, 4] {
        sweep.cell(
            "enumeration",
            "er(40,0.3)",
            Json::obj(vec![
                ("kind", Json::Str("enumeration".into())),
                ("parallel_build", Json::Bool(parallel_build)),
                ("gen", Json::Str("er".into())),
                ("n", num(40)),
                ("param", Json::Num(0.3)),
                ("p", num(p)),
            ]),
            3,
        );
    }
    sweep.cell(
        "engine",
        "listing_workload(40)",
        Json::obj(vec![
            ("kind", Json::Str("engine".into())),
            ("parallel_build", Json::Bool(parallel_build)),
            ("workload", Json::Str("listing".into())),
            ("n", num(40)),
            ("p", num(4)),
            ("algorithm", Json::Str("general".into())),
        ]),
        5,
    );
    sweep
}

/// Times `body` `reps` times; returns `(best, mean)` in milliseconds.
fn time_reps(reps: u32, mut body: impl FnMut()) -> (f64, f64) {
    let mut best = f64::INFINITY;
    let mut total = 0.0;
    for _ in 0..reps {
        let start = Instant::now();
        body();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        best = best.min(ms);
        total += ms;
    }
    (best, total / f64::from(reps))
}

fn build_graph(config: &Json, seed: u64) -> Graph {
    let n = config.get("n").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    let param = config.get("param").and_then(Json::as_f64).unwrap_or(0.0);
    match config.get("gen").and_then(Json::as_str) {
        Some("er") => gen::erdos_renyi(n, param, seed),
        Some("turan") => gen::multipartite(n, 3, param, seed),
        Some("rmat") => gen::rmat(n as u32, param as usize, RMAT_PROBS, seed),
        other => panic!("unknown generator in cell config: {other:?}"),
    }
}

fn usize_field(config: &Json, key: &str) -> usize {
    config.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize
}

/// The enumeration-kernel strategy of a `kernel-sweep`/`scaling-sweep` cell.
fn kernel_strategy(config: &Json) -> cliques::KernelStrategy {
    match config.get("kernel").and_then(Json::as_str) {
        Some(name) => cliques::KernelStrategy::parse(name)
            .unwrap_or_else(|| panic!("unknown kernel in cell config: {name:?}")),
        None => cliques::KernelStrategy::Auto,
    }
}

/// Like [`cliques::count_cliques_parallel`], but with the kernel pinned —
/// the `scaling-sweep` measurement: `threads` workers steal shards of one
/// [`cliques::ShardedEnumerator`] running an explicit [`KernelStrategy`](
/// cliques::KernelStrategy), so each cell times exactly one (kernel,
/// thread-grant) point.
#[cfg(feature = "parallel")]
fn count_cliques_pinned(
    graph: &Graph,
    p: usize,
    strategy: cliques::KernelStrategy,
    threads: usize,
) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let enumerator = cliques::ShardedEnumerator::new(
        graph,
        p,
        threads.saturating_mul(cliques::SHARDS_PER_THREAD),
    )
    .with_kernel(strategy);
    let shards = enumerator.num_shards();
    let next = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shards).max(1) {
            let (enumerator, next, total) = (&enumerator, &next, &total);
            scope.spawn(move || loop {
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= shards {
                    break;
                }
                let mut count = 0usize;
                enumerator.for_each_in_shard(shard, |_| count += 1);
                total.fetch_add(count, Ordering::Relaxed);
            });
        }
    });
    total.into_inner()
}

/// The deterministic mixed batch of a `query-throughput` cell: census
/// counts for every default-prepared clique size, a bounded prefix, spread
/// per-vertex membership probes, per-edge probes over the first CSR edges,
/// and an existence check. Depends only on the snapshot's graph.
fn query_batch(snapshot: &query::GraphSnapshot) -> Vec<query::Query> {
    use query::QueryBuilder;
    let graph = snapshot.graph();
    let n = graph.num_vertices() as u32;
    let mut batch = vec![
        QueryBuilder::new()
            .p(3)
            .count()
            .build(snapshot)
            .expect("valid"),
        QueryBuilder::new()
            .p(4)
            .count()
            .build(snapshot)
            .expect("valid"),
        QueryBuilder::new()
            .p(5)
            .count()
            .build(snapshot)
            .expect("valid"),
        QueryBuilder::new()
            .p(4)
            .first(10)
            .build(snapshot)
            .expect("valid"),
        QueryBuilder::new()
            .p(5)
            .exists()
            .build(snapshot)
            .expect("valid"),
    ];
    for vertex in [0, n / 3, 2 * n / 3, n - 1] {
        batch.push(
            QueryBuilder::new()
                .p(3)
                .containing_vertex(vertex)
                .build(snapshot)
                .expect("valid"),
        );
    }
    for (u, v) in graph.edges().take(8) {
        batch.push(
            QueryBuilder::new()
                .p(4)
                .containing_edge(u, v)
                .build(snapshot)
                .expect("valid"),
        );
    }
    batch
}

/// The deterministic edge batch of a `churn-sweep` cell: half the target as
/// deletions spread evenly over the CSR edge stream, half as insertions
/// drawn from a dense perturbation generator's non-edges. Disjoint by
/// construction (deletes are edges, inserts are non-edges), so
/// [`EdgeBatch::new`] cannot reject it. Depends only on `(graph, target,
/// seed)`.
fn churn_batch(graph: &Graph, target: usize, seed: u64) -> EdgeBatch {
    let half = (target / 2).max(1);
    let step = (graph.num_edges() / half).max(1);
    let deletes: Vec<(u32, u32)> = graph.edges().step_by(step).take(half).collect();
    let inserts: Vec<(u32, u32)> = gen::erdos_renyi(graph.num_vertices(), 0.5, seed ^ 0xC0FFEE)
        .edges()
        .filter(|&(u, v)| !graph.has_edge(u, v))
        .take(half)
        .collect();
    EdgeBatch::new(&inserts, &deletes).expect("disjoint by construction")
}

/// Executes one real cell of [`perf_sweep`] and returns its metrics object.
///
/// Deterministic metrics (`cliques`, the embedded engine report) depend only
/// on the cell config; timing metrics (`best_ms`, `mean_ms`) are
/// host-dependent and gated leniently by `trajectory::check`. Never actually
/// interrupts — the `Result` exists so tests can substitute executors that
/// do.
///
/// # Panics
///
/// Panics on a malformed cell config (unknown kind/generator) and when a
/// parallel count diverges from the sequential ground truth — both are
/// programming errors in the sweep definition, not runtime conditions.
pub fn execute_perf_cell(spec: &CellSpec) -> Result<Json, Interrupted> {
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let kind = spec
        .config
        .get("kind")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let p = usize_field(&spec.config, "p");
    let mut metrics: Vec<(String, Json)> =
        vec![("available_parallelism".to_string(), num(host_threads))];
    match kind.as_str() {
        "enumeration" => {
            let graph = build_graph(&spec.config, spec.seed);
            let mut count = 0usize;
            let (best, mean) = time_reps(REPS, || count = cliques::count_cliques(&graph, p));
            metrics.extend([
                ("cliques".to_string(), num(count)),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
            ]);
        }
        "thread-scaling" => {
            #[cfg(feature = "parallel")]
            {
                let graph = build_graph(&spec.config, spec.seed);
                let threads = usize_field(&spec.config, "threads");
                let truth = cliques::count_cliques(&graph, p);
                let mut count = 0usize;
                let (best, mean) = time_reps(REPS, || {
                    count = cliques::count_cliques_parallel(&graph, p, threads);
                });
                assert_eq!(count, truth, "parallel count diverged");
                metrics.extend([
                    ("cliques".to_string(), num(count)),
                    ("threads".to_string(), num(threads)),
                    ("best_ms".to_string(), Json::Num(best)),
                    ("mean_ms".to_string(), Json::Num(mean)),
                ]);
            }
            #[cfg(not(feature = "parallel"))]
            metrics.push((
                "skipped".to_string(),
                Json::Str("built without the `parallel` feature".to_string()),
            ));
        }
        "kernel-sweep" => {
            let graph = build_graph(&spec.config, spec.seed);
            let strategy = kernel_strategy(&spec.config);
            let index = cliques::CliqueIndex::build(&graph);
            let truth = cliques::count_cliques(&graph, p);
            let mut count = 0usize;
            let (best, mean) = time_reps(REPS, || {
                count = 0;
                index.for_each_clique_while_with(&graph, p, strategy, |_| {
                    count += 1;
                    true
                });
            });
            assert_eq!(count, truth, "kernel diverged from the ground truth");
            metrics.extend([
                ("cliques".to_string(), num(count)),
                (
                    "resolved_kernel".to_string(),
                    Json::Str(index.resolve_kernel(strategy).to_string()),
                ),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
            ]);
        }
        "scaling-sweep" => {
            #[cfg(feature = "parallel")]
            {
                let graph = build_graph(&spec.config, spec.seed);
                let threads = usize_field(&spec.config, "threads");
                let strategy = kernel_strategy(&spec.config);
                let truth = cliques::count_cliques(&graph, p);
                let resolved = cliques::CliqueIndex::build(&graph)
                    .resolve_kernel(strategy)
                    .to_string();
                let mut count = 0usize;
                let (best, mean) = time_reps(REPS, || {
                    count = count_cliques_pinned(&graph, p, strategy, threads);
                });
                assert_eq!(count, truth, "pinned parallel count diverged");
                metrics.extend([
                    ("cliques".to_string(), num(count)),
                    ("threads".to_string(), num(threads)),
                    ("resolved_kernel".to_string(), Json::Str(resolved)),
                    ("best_ms".to_string(), Json::Num(best)),
                    ("mean_ms".to_string(), Json::Num(mean)),
                ]);
            }
            #[cfg(not(feature = "parallel"))]
            metrics.push((
                "skipped".to_string(),
                Json::Str("built without the `parallel` feature".to_string()),
            ));
        }
        "cluster-scaling" | "engine" => {
            let graph = if spec.config.get("workload").and_then(Json::as_str) == Some("listing") {
                listing_workload(usize_field(&spec.config, "n"), p, spec.seed).graph
            } else {
                build_graph(&spec.config, spec.seed)
            };
            let algorithm = spec
                .config
                .get("algorithm")
                .and_then(Json::as_str)
                .unwrap_or("general")
                .to_string();
            let mut builder = Engine::builder()
                .p(p)
                .algorithm(&algorithm)
                .experiment_scale()
                .seed(spec.seed);
            if kind == "cluster-scaling" {
                builder = builder.parallelism(cliquelist::Parallelism::Threads(usize_field(
                    &spec.config,
                    "threads",
                )));
            }
            let engine = builder.build().expect("cell engine config is valid");
            let mut count = 0u64;
            let mut report = None;
            let (best, mean) = time_reps(REPS, || {
                let mut sink = CountSink::new();
                report = Some(engine.run(&graph, &mut sink));
                count = sink.count;
            });
            let report = report.expect("at least one rep ran");
            let report_json =
                Json::parse(&report.to_json()).expect("RunReport::to_json is valid JSON");
            metrics.extend([
                ("cliques".to_string(), Json::Num(count as f64)),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
                (
                    "threads_granted".to_string(),
                    num(report.parallelism.threads_granted),
                ),
                (
                    "threads_used".to_string(),
                    num(report.parallelism.threads_used),
                ),
                ("report".to_string(), report_json),
            ]);
        }
        "query-throughput" => {
            let graph = build_graph(&spec.config, spec.seed);
            let snapshot = query::GraphSnapshot::build(graph).into_shared();
            let batch = query_batch(&snapshot);
            let service = query::QueryService::new(snapshot.clone());
            let mut responses = Vec::new();
            // Cold: every rep recomputes from the snapshot artifacts.
            let (best, mean) = time_reps(REPS, || {
                service.clear_cache();
                responses = service.execute_batch(&batch).expect("pre-validated batch");
            });
            // Warm: the cache short-circuits every enumeration.
            let (warm_best, _) = time_reps(REPS, || {
                responses = service.execute_batch(&batch).expect("pre-validated batch");
            });
            assert!(
                responses.iter().all(|r| r.report.cache_hit),
                "warm batch must be served from cache"
            );
            // The deterministic payloads (request order) and the summed
            // census counts — both gated exactly by `trajectory::check`.
            let payloads: Vec<Json> = responses
                .iter()
                .map(|r| Json::parse(&r.to_json()).expect("response payload is valid JSON"))
                .collect();
            let cliques: f64 = responses
                .iter()
                .filter_map(|r| match r.outcome {
                    query::QueryOutcome::Count(count) => Some(count as f64),
                    _ => None,
                })
                .sum();
            metrics.extend([
                ("queries".to_string(), num(batch.len())),
                ("cliques".to_string(), Json::Num(cliques)),
                ("responses".to_string(), Json::Arr(payloads)),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
                ("warm_best_ms".to_string(), Json::Num(warm_best)),
                ("batch_fanout".to_string(), num(service.threads())),
            ]);
        }
        "fault-sweep" => {
            let graph = build_graph(&spec.config, spec.seed);
            let drop_ppm = usize_field(&spec.config, "drop_ppm");
            let fault_seed = usize_field(&spec.config, "fault_seed") as u64;
            let max_rounds = usize_field(&spec.config, "max_rounds") as u64;
            let plan = if drop_ppm == 0 {
                congest::FaultPlan::fault_free()
            } else {
                congest::FaultPlan::builder(fault_seed)
                    .drop_probability(drop_ppm as f64 / 1e6)
                    .build()
                    .expect("sweep fault plan is valid")
            };
            let mut sim = None;
            let (best, mean) = time_reps(REPS, || {
                sim = Some(cliquelist::baselines::simulate_naive_broadcast_with_faults(
                    &graph,
                    p,
                    max_rounds,
                    plan.clone(),
                ));
            });
            let sim = sim.expect("at least one rep ran");
            // The headline robustness claim, checked at measurement time:
            // the transport masks the seeded loss completely.
            assert_eq!(
                sim.result.cliques.len(),
                cliques::count_cliques(&graph, p),
                "reliable transport must mask the seeded loss"
            );
            metrics.extend([
                ("cliques".to_string(), num(sim.result.cliques.len())),
                (
                    "simulated_rounds".to_string(),
                    Json::Num(sim.report.simulated_rounds as f64),
                ),
                (
                    "retransmits".to_string(),
                    Json::Num(sim.transport.retransmits as f64),
                ),
                (
                    "acks_sent".to_string(),
                    Json::Num(sim.transport.acks_sent as f64),
                ),
                (
                    "dropped_messages".to_string(),
                    Json::Num(sim.dropped_messages as f64),
                ),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
            ]);
        }
        "churn-sweep" => {
            let graph = build_graph(&spec.config, spec.seed);
            let batch_target = usize_field(&spec.config, "batch_target");
            let old = query::GraphSnapshot::build(graph);
            let batch = churn_batch(old.graph(), batch_target, spec.seed);
            // The measured quantity: deriving a snapshot through
            // `apply_batch` (strategy chosen by the churn fraction) …
            let mut applied = None;
            let (best, mean) = time_reps(REPS, || {
                applied = Some(old.apply_batch(&batch).expect("batch is in range"));
            });
            let (derived, report) = applied.expect("at least one rep ran");
            // … against the from-scratch baseline it must equal byte for
            // byte — the churn battery's contract (a), re-asserted at
            // measurement time.
            let mut scratch = None;
            let (rebuild_best, rebuild_mean) = time_reps(REPS, || {
                scratch = Some(query::GraphSnapshot::build(derived.graph().clone()));
            });
            assert_eq!(
                derived,
                scratch.expect("at least one rep ran"),
                "incremental churn must equal a from-scratch build"
            );
            // The delta listing accounts for the census change exactly.
            let delta = query::delta_cliques(&old, &derived, p, cliquelist::Parallelism::Auto)
                .expect("same vertex count");
            let before = cliques::count_cliques(old.graph(), p);
            let after = cliques::count_cliques(derived.graph(), p);
            assert_eq!(
                after as i64 - before as i64,
                delta.created.len() as i64 - delta.destroyed.len() as i64,
                "delta must account for the census change exactly"
            );
            metrics.extend([
                (
                    "strategy".to_string(),
                    Json::Str(report.strategy.as_str().to_string()),
                ),
                ("inserted".to_string(), num(report.inserted.len())),
                ("deleted".to_string(), num(report.deleted.len())),
                ("churn_ppm".to_string(), Json::Num(report.churn_ppm as f64)),
                ("cliques".to_string(), num(after)),
                ("created_cliques".to_string(), num(delta.created.len())),
                ("destroyed_cliques".to_string(), num(delta.destroyed.len())),
                ("best_ms".to_string(), Json::Num(best)),
                ("mean_ms".to_string(), Json::Num(mean)),
                ("rebuild_best_ms".to_string(), Json::Num(rebuild_best)),
                ("rebuild_mean_ms".to_string(), Json::Num(rebuild_mean)),
            ]);
        }
        other => panic!("unknown cell kind in perf sweep: {other:?}"),
    }
    Ok(Json::Obj(metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_sweep_covers_the_documented_experiments() {
        let sweep = perf_sweep();
        let experiments: std::collections::BTreeSet<&str> =
            sweep.cells.iter().map(|c| c.experiment.as_str()).collect();
        assert_eq!(
            experiments.into_iter().collect::<Vec<_>>(),
            vec![
                "churn-sweep",
                "cluster-scaling",
                "engine",
                "enumeration",
                "fault-sweep",
                "kernel-sweep",
                "query-throughput",
                "scaling-sweep",
                "thread-scaling"
            ]
        );
        // The kernel sweep covers all three strategies on the dense
        // criterion workload and the sparse control.
        assert_eq!(
            sweep
                .cells
                .iter()
                .filter(|c| c.experiment == "kernel-sweep")
                .count(),
            6
        );
        assert!(sweep
            .cells
            .iter()
            .any(|c| c.experiment == "kernel-sweep" && c.workload == "turan(450,3)"));
        // The scaling sweep pins both axes: each explicit kernel runs the
        // full thread grid, so the per-kernel speedup curves are derivable.
        for kernel in ["recursive", "trie"] {
            for &threads in SCALING_THREADS {
                assert!(
                    sweep.cells.iter().any(|c| {
                        c.experiment == "scaling-sweep"
                            && c.config.get("kernel").and_then(Json::as_str) == Some(kernel)
                            && c.config.get("threads").and_then(Json::as_f64)
                                == Some(threads as f64)
                    }),
                    "missing scaling-sweep cell: kernel={kernel}, threads={threads}"
                );
            }
        }
        // The fault sweep covers a fault-free control and two loss rates.
        assert_eq!(
            sweep
                .cells
                .iter()
                .filter(|c| c.experiment == "fault-sweep")
                .count(),
            3
        );
        // The churn sweep covers two incremental batch sizes and one past
        // the rebuild threshold.
        assert_eq!(
            sweep
                .cells
                .iter()
                .filter(|c| c.experiment == "churn-sweep")
                .count(),
            3
        );
        // The grid grew past the historical n ≈ 400 ceiling.
        assert!(sweep
            .cells
            .iter()
            .any(|c| c.workload == "er(600,0.18)" && c.experiment == "enumeration"));
        assert!(sweep.cells.iter().any(|c| c.workload == "rmat(10,16)"));
        assert!(sweep
            .cells
            .iter()
            .any(|c| c.experiment == "engine" && c.workload == "listing_workload(200)"));
        // Every cell pins the build flavour, so sequential- and
        // parallel-build results never alias in the store.
        assert!(sweep
            .cells
            .iter()
            .all(|c| c.config.get("parallel_build").is_some()));
    }

    #[test]
    fn executor_runs_a_small_engine_cell() {
        let spec = CellSpec {
            experiment: "engine".into(),
            workload: "listing_workload(60)".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("engine".into())),
                ("workload", Json::Str("listing".into())),
                ("n", num(60)),
                ("p", num(4)),
                ("algorithm", Json::Str("general".into())),
            ]),
            seed: 13,
        };
        let metrics = execute_perf_cell(&spec).expect("executor never interrupts");
        assert!(metrics.get("cliques").and_then(Json::as_f64).unwrap() > 0.0);
        assert!(metrics.get("best_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(metrics.get("threads_used").and_then(Json::as_f64).unwrap() >= 1.0);
        assert!(metrics.get("report").is_some());
    }

    #[test]
    fn executor_runs_a_query_throughput_cell_deterministically() {
        let spec = CellSpec {
            experiment: "query-throughput".into(),
            workload: "er(50,0.3)".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("query-throughput".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(50)),
                ("param", Json::Num(0.3)),
                ("p", num(4)),
            ]),
            seed: 19,
        };
        let metrics = execute_perf_cell(&spec).expect("executor never interrupts");
        let responses = metrics.get("responses").and_then(Json::as_arr).unwrap();
        assert_eq!(
            responses.len(),
            metrics.get("queries").and_then(Json::as_f64).unwrap() as usize
        );
        // The census sum matches the exact enumeration.
        let graph = gen::erdos_renyi(50, 0.3, 19);
        let expected: usize = (3..=5).map(|p| cliques::count_cliques(&graph, p)).sum();
        assert_eq!(
            metrics.get("cliques").and_then(Json::as_f64).unwrap() as usize,
            expected
        );
        // The deterministic payloads reproduce byte for byte across runs.
        let again = execute_perf_cell(&spec).expect("executor never interrupts");
        assert_eq!(
            metrics.get("responses").unwrap().canonical(),
            again.get("responses").unwrap().canonical()
        );
        assert!(metrics.get("warm_best_ms").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn executor_runs_fault_cells_deterministically() {
        let cell = |drop_ppm: usize| CellSpec {
            experiment: "fault-sweep".into(),
            workload: "er(20,0.4) reliable naive".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("fault-sweep".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(20)),
                ("param", Json::Num(0.4)),
                ("p", num(3)),
                ("drop_ppm", num(drop_ppm)),
                ("fault_seed", num(0xFA17)),
                ("max_rounds", num(10_000)),
            ]),
            seed: 29,
        };
        // Fault-free control: nothing dropped, nothing retransmitted, and
        // the listing matches the exact enumeration.
        let clean = execute_perf_cell(&cell(0)).expect("executor never interrupts");
        let truth = cliques::count_cliques(&gen::erdos_renyi(20, 0.4, 29), 3);
        assert_eq!(
            clean.get("cliques").and_then(Json::as_f64).unwrap() as usize,
            truth
        );
        assert_eq!(
            clean.get("retransmits").and_then(Json::as_f64).unwrap(),
            0.0
        );
        assert_eq!(
            clean
                .get("dropped_messages")
                .and_then(Json::as_f64)
                .unwrap(),
            0.0
        );
        // Lossy: the transport masks the loss (same cliques), pays for it in
        // retransmissions, and replays byte-identically.
        let lossy = execute_perf_cell(&cell(50_000)).expect("executor never interrupts");
        assert_eq!(
            lossy.get("cliques").and_then(Json::as_f64).unwrap() as usize,
            truth
        );
        assert!(
            lossy
                .get("dropped_messages")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
        let again = execute_perf_cell(&cell(50_000)).expect("executor never interrupts");
        for metric in ["cliques", "simulated_rounds", "retransmits", "acks_sent"] {
            assert_eq!(
                lossy.get(metric).unwrap().canonical(),
                again.get(metric).unwrap().canonical(),
                "{metric} must replay identically"
            );
        }
    }

    #[test]
    fn executor_runs_churn_cells_deterministically() {
        let cell = |batch_target: usize| CellSpec {
            experiment: "churn-sweep".into(),
            workload: "er(60,0.2) churn".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("churn-sweep".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(60)),
                ("param", Json::Num(0.2)),
                ("p", num(3)),
                ("batch_target", num(batch_target)),
            ]),
            seed: 7,
        };
        // A small batch stays under the rebuild threshold (incremental);
        // a batch larger than the edge count crosses it (rebuild). The
        // executor itself asserts derived == from-scratch either way.
        let small = execute_perf_cell(&cell(8)).expect("executor never interrupts");
        assert_eq!(
            small.get("strategy").and_then(Json::as_str).unwrap(),
            "incremental"
        );
        let large = execute_perf_cell(&cell(1024)).expect("executor never interrupts");
        assert_eq!(
            large.get("strategy").and_then(Json::as_str).unwrap(),
            "rebuild"
        );
        // The deterministic metrics replay byte for byte.
        let again = execute_perf_cell(&cell(8)).expect("executor never interrupts");
        for metric in [
            "strategy",
            "inserted",
            "deleted",
            "churn_ppm",
            "cliques",
            "created_cliques",
            "destroyed_cliques",
        ] {
            assert_eq!(
                small.get(metric).unwrap().canonical(),
                again.get(metric).unwrap().canonical(),
                "{metric} must replay identically"
            );
        }
        assert!(small.get("best_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        assert!(small.get("rebuild_best_ms").and_then(Json::as_f64).unwrap() >= 0.0);
    }

    #[test]
    fn executor_runs_kernel_cells_deterministically() {
        let cell = |kernel: &str| CellSpec {
            experiment: "kernel-sweep".into(),
            workload: "er(40,0.3)".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("kernel-sweep".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(40)),
                ("param", Json::Num(0.3)),
                ("p", num(4)),
                ("kernel", Json::Str(kernel.into())),
            ]),
            seed: 3,
        };
        let truth = cliques::count_cliques(&gen::erdos_renyi(40, 0.3, 3), 4);
        for kernel in ["recursive", "trie", "auto"] {
            let metrics = execute_perf_cell(&cell(kernel)).expect("executor never interrupts");
            assert_eq!(
                metrics.get("cliques").and_then(Json::as_f64).unwrap() as usize,
                truth,
                "{kernel}: count diverged"
            );
            // The resolved kernel is pure in (strategy, graph): it replays
            // byte-identically — that is what lets the trajectory gate it.
            let again = execute_perf_cell(&cell(kernel)).expect("executor never interrupts");
            assert_eq!(
                metrics.get("resolved_kernel").unwrap().canonical(),
                again.get("resolved_kernel").unwrap().canonical()
            );
        }
        // Explicit strategies resolve to themselves.
        let recursive = execute_perf_cell(&cell("recursive")).expect("runs");
        assert_eq!(
            recursive.get("resolved_kernel").and_then(Json::as_str),
            Some("recursive")
        );
        let trie = execute_perf_cell(&cell("trie")).expect("runs");
        assert_eq!(
            trie.get("resolved_kernel").and_then(Json::as_str),
            Some("trie")
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn executor_runs_scaling_cells_at_any_pinned_grant() {
        let cell = |kernel: &str, threads: usize| CellSpec {
            experiment: "scaling-sweep".into(),
            workload: "er(40,0.3)".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("scaling-sweep".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(40)),
                ("param", Json::Num(0.3)),
                ("p", num(4)),
                ("kernel", Json::Str(kernel.into())),
                ("threads", num(threads)),
            ]),
            seed: 3,
        };
        let truth = cliques::count_cliques(&gen::erdos_renyi(40, 0.3, 3), 4);
        for kernel in ["recursive", "trie"] {
            for threads in [1usize, 4] {
                let metrics =
                    execute_perf_cell(&cell(kernel, threads)).expect("executor never interrupts");
                assert_eq!(
                    metrics.get("cliques").and_then(Json::as_f64).unwrap() as usize,
                    truth,
                    "{kernel} at {threads} threads: count diverged"
                );
                assert_eq!(
                    metrics.get("threads").and_then(Json::as_f64).unwrap() as usize,
                    threads
                );
                assert!(metrics.get("best_ms").and_then(Json::as_f64).unwrap() >= 0.0);
            }
        }
    }

    #[test]
    fn executor_counts_enumeration_cells_exactly() {
        let spec = CellSpec {
            experiment: "enumeration".into(),
            workload: "er(60,0.3)".into(),
            config: Json::obj(vec![
                ("kind", Json::Str("enumeration".into())),
                ("gen", Json::Str("er".into())),
                ("n", num(60)),
                ("param", Json::Num(0.3)),
                ("p", num(4)),
            ]),
            seed: 7,
        };
        let metrics = execute_perf_cell(&spec).expect("executor never interrupts");
        let expected = cliques::count_cliques(&gen::erdos_renyi(60, 0.3, 7), 4);
        assert_eq!(
            metrics.get("cliques").and_then(Json::as_f64).unwrap() as usize,
            expected
        );
    }
}
