//! Shared helpers for the benchmark and experiment harness.
//!
//! The actual experiments live in the `experiments` binary (one subcommand per
//! experiment id from `DESIGN.md` §4) and in the Criterion benches under
//! `benches/`. This library provides the pieces they share: standard
//! workloads, log–log exponent fitting and plain-text table rendering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod table;
pub mod workloads;

pub use fit::{fit_exponent, FitResult};
pub use table::Table;
pub use workloads::{core_periphery_workload, listing_workload, two_communities, ListingWorkload};
