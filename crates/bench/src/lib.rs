//! Shared helpers for the benchmark and experiment harness.
//!
//! The actual experiments live in the `experiments` binary (one subcommand per
//! experiment id from `DESIGN.md` §4) and in the Criterion benches under
//! `benches/`. This library provides the pieces they share: standard
//! workloads, log–log exponent fitting, plain-text table rendering, and the
//! resumable experiment harness (`json` / `store` / `sweep` / `sweeps` /
//! `trajectory`) behind `experiments -- perf --resume`, `report` and `check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fit;
pub mod json;
pub mod store;
pub mod sweep;
pub mod sweeps;
pub mod table;
pub mod trajectory;
pub mod workloads;

pub use fit::{fit_exponent, FitResult};
pub use json::Json;
pub use store::{git_rev, CellRecord, CellSpec, ResultStore};
pub use sweep::{run_sweep, Interrupted, Sweep, SweepOutcome};
pub use table::Table;
pub use workloads::{core_periphery_workload, listing_workload, two_communities, ListingWorkload};
