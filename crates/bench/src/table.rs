//! Minimal plain-text table rendering for experiment output.

/// A column-aligned plain-text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (shorter rows are padded with empty cells).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Appends a row of displayable values.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) {
        self.row(
            &cells
                .iter()
                .map(std::string::ToString::to_string)
                .collect::<Vec<_>>(),
        );
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&render_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["n", "rounds"]);
        assert!(t.is_empty());
        t.row(&["100".into(), "42".into()]);
        t.row_display(&[12345, 7]);
        assert_eq!(t.len(), 2);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("n"));
        assert!(lines[2].contains("100"));
        assert!(lines[3].contains("12345"));
        assert_eq!(format!("{t}"), text);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = Table::new(&["a", "b", "c"]);
        t.row(&["x".into()]);
        assert!(t.render().contains('x'));
    }
}
