//! Standard experiment workloads.

use graphcore::gen::{self, PlantedClique};
use graphcore::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A graph instance used by the listing experiments, together with the
/// parameters that produced it.
#[derive(Clone, Debug)]
pub struct ListingWorkload {
    /// Human-readable label (used in experiment tables).
    pub label: String,
    /// Number of vertices.
    pub n: usize,
    /// Clique size the workload targets.
    pub p: usize,
    /// The graph.
    pub graph: Graph,
    /// The cliques planted into the background.
    pub planted: Vec<PlantedClique>,
}

/// Background density of the standard workload.
pub const BACKGROUND_DENSITY: f64 = 0.8;

/// The standard hard-but-checkable workload for `K_p` listing experiments: a
/// dense random **tripartite** background with a handful of planted `K_p`
/// instances.
///
/// A tripartite graph contains no `K_4` (hence no `K_p` for any `p ≥ 4`), so
/// the only `p`-cliques are the planted ones plus the few their edges create
/// with the background — which keeps both the ground-truth enumeration and the
/// in-cluster listing cheap — while the arboricity is `Θ(n)`, which is what
/// exercises the decomposition, heavy/light and sparsity-aware machinery at
/// full communication load. The paper's hard instances are likewise dense
/// graphs; what matters for the round-complexity measurements is the edge
/// volume, not the clique count.
pub fn listing_workload(n: usize, p: usize, seed: u64) -> ListingWorkload {
    assert!(p >= 3, "clique size must be at least 3");
    let planted_count = (n / 40).clamp(2, 8);
    let background = gen::multipartite(n, 3, BACKGROUND_DENSITY, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_CAFE);
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    vertices.shuffle(&mut rng);
    let mut planted = Vec::with_capacity(planted_count);
    let mut planted_edges = Vec::new();
    for c in 0..planted_count {
        let mut members: Vec<u32> = vertices[c * p..(c + 1) * p].to_vec();
        members.sort_unstable();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                planted_edges.push((u, v));
            }
        }
        planted.push(PlantedClique { vertices: members });
    }
    let graph = background
        .with_edges_added(&planted_edges)
        .expect("planted vertices are in range");
    ListingWorkload {
        label: format!(
            "tripartite(n={n}, d={BACKGROUND_DENSITY}) + {planted_count} planted K{p} (seed={seed})"
        ),
        n,
        p,
        graph,
        planted,
    }
}

/// A core–periphery workload: a dense tripartite core (which the expander
/// decomposition turns into one cluster) surrounded by a periphery of
/// low-degree nodes, each attached to a few core nodes and sparsely to each
/// other, plus planted `K_4` instances that straddle the boundary.
///
/// This is the workload that exercises the Challenge-1 machinery of
/// Section 2.4.1: periphery nodes are `C`-light, their edges must be learned
/// through the probe protocol (or listed by the light nodes themselves in the
/// fast `K_4` variant), and lowering the bad-node threshold makes the
/// bad-edge deferral visible.
pub fn core_periphery_workload(n: usize, seed: u64) -> ListingWorkload {
    let core = 2 * n / 3;
    let periphery = n - core;
    let graph = gen::multipartite(n, 3, BACKGROUND_DENSITY, seed);
    // Remove nothing: the generator already placed the periphery vertices in
    // parts, but we rebuild their adjacency from scratch so they stay sparse.
    let mut edges: Vec<(u32, u32)> = graph
        .edges()
        .filter(|&(u, v)| (u as usize) < core && (v as usize) < core)
        .collect();
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x0C0E_11FE);
    use rand::Rng;
    for v in core..n {
        // Three core attachments keep the periphery node C-light
        // (the general algorithm's heavy threshold is n^{1/4}).
        for _ in 0..3 {
            edges.push((v as u32, rng.gen_range(0..core) as u32));
        }
        // A sparse periphery-periphery edge now and then: these are the
        // outside-outside edges the cluster has to learn about.
        if v + 1 < n && rng.gen_bool(0.5) {
            edges.push((v as u32, (v + 1) as u32));
        }
    }
    let background = Graph::from_edges(n, &edges).expect("core-periphery edges are in range");
    // Planted K4s with two core and two periphery vertices.
    let planted_count = (periphery / 20).clamp(1, 4);
    let mut planted = Vec::new();
    let mut planted_edges = Vec::new();
    for c in 0..planted_count {
        let members = vec![
            (2 * c) as u32,
            (2 * c + 1) as u32,
            (core + 2 * c) as u32,
            (core + 2 * c + 1) as u32,
        ];
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                planted_edges.push((u, v));
            }
        }
        let mut members = members;
        members.sort_unstable();
        planted.push(PlantedClique { vertices: members });
    }
    let graph = background
        .with_edges_added(&planted_edges)
        .expect("planted vertices are in range");
    ListingWorkload {
        label: format!("core-periphery(n={n}, core={core}, seed={seed})"),
        n,
        p: 4,
        graph,
        planted,
    }
}

/// Two dense Erdős–Rényi communities joined by a handful of bridge edges —
/// the canonical input on which an expander decomposition must place the
/// bridges in `E_r` (or accept a slower-mixing merged cluster while keeping
/// `|E_r| ≤ |E|/6`).
pub fn two_communities(block: usize, bridges: usize, density: f64, seed: u64) -> Graph {
    let n = 2 * block;
    let a = gen::erdos_renyi(block, density, seed);
    let b = gen::erdos_renyi(block, density, seed ^ 0xB10C);
    let mut edges: Vec<(u32, u32)> = a.edges().collect();
    edges.extend(b.edges().map(|(u, v)| (u + block as u32, v + block as u32)));
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB41D6E);
    use rand::Rng;
    for _ in 0..bridges {
        let u = rng.gen_range(0..block) as u32;
        let v = (block + rng.gen_range(0..block)) as u32;
        edges.push((u, v));
    }
    Graph::from_edges(n, &edges).expect("community edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_dense_and_contains_planted_cliques() {
        let w = listing_workload(120, 4, 3);
        assert_eq!(w.graph.num_vertices(), 120);
        assert!(w.graph.average_degree() > 40.0);
        assert!(!w.planted.is_empty());
        for c in &w.planted {
            assert!(graphcore::cliques::is_clique(&w.graph, &c.vertices));
        }
        assert!(w.label.contains("n=120"));
    }

    #[test]
    fn core_periphery_has_light_nodes_and_planted_cliques() {
        let w = core_periphery_workload(150, 3);
        assert_eq!(w.graph.num_vertices(), 150);
        let core = 100;
        // Periphery degrees are small, core degrees are large.
        assert!(w.graph.degree(149) <= 10);
        assert!(w.graph.degree(0) > 30);
        let _ = core;
        for c in &w.planted {
            assert!(graphcore::cliques::is_clique(&w.graph, &c.vertices));
        }
    }

    #[test]
    fn two_communities_are_dense_blocks_with_few_bridges() {
        let g = two_communities(80, 6, 0.4, 5);
        assert_eq!(g.num_vertices(), 160);
        let cross = g.edges().filter(|&(u, v)| (u < 80) != (v < 80)).count();
        assert!(cross <= 6);
        assert!(g.num_edges() > 2000);
    }

    #[test]
    fn workload_has_few_cliques_even_for_large_p() {
        // The tripartite background is K4-free; the only K6s are the planted
        // ones plus the bounded set their edges create together with the
        // background, so the exact enumeration stays cheap even for p = 6.
        let w = listing_workload(150, 6, 9);
        let count = graphcore::cliques::count_cliques(&w.graph, 6);
        assert!(count >= w.planted.len());
        assert!(
            count < 20_000,
            "too many K6s for a cheap ground truth: {count}"
        );
    }
}
