//! The resumable sweep runner: a [`Sweep`] declares a grid of cells in code,
//! [`run_sweep`] executes it through a [`ResultStore`] so an interrupted run
//! (`experiments -- perf --resume`) picks up exactly where it stopped.
//!
//! The executor is injected as a closure, which keeps the runner testable:
//! the integration tests drive it with deterministic synthetic executors
//! (including one that "dies" mid-sweep) and assert that a killed-then-
//! resumed sweep consolidates to byte-identical output.

use crate::json::Json;
use crate::store::{CellRecord, CellSpec, ResultStore};

/// A declared experiment sweep: an ordered list of cells. Construction is
/// plain code (no config files) — see [`crate::sweeps`] for the committed
/// definitions.
#[derive(Clone, Debug, Default)]
pub struct Sweep {
    /// Sweep id, e.g. `"perf"`. Used as the `results/` subdirectory.
    pub id: String,
    /// One-line description of what the sweep claims to measure.
    pub claim: String,
    /// The cells, in the order they run and are reported.
    pub cells: Vec<CellSpec>,
}

impl Sweep {
    /// Creates an empty sweep.
    pub fn new(id: impl Into<String>, claim: impl Into<String>) -> Sweep {
        Sweep {
            id: id.into(),
            claim: claim.into(),
            cells: Vec::new(),
        }
    }

    /// Appends one cell to the grid.
    pub fn cell(
        &mut self,
        experiment: impl Into<String>,
        workload: impl Into<String>,
        config: Json,
        seed: u64,
    ) {
        self.cells.push(CellSpec {
            experiment: experiment.into(),
            workload: workload.into(),
            config,
            seed,
        });
    }
}

/// Raised by an executor to abandon the sweep mid-run (the test double for a
/// killed process; the CLI never constructs it). Cells completed before the
/// interruption are already persisted, so a later `--resume` skips them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interrupted;

/// What [`run_sweep`] did: the completed records in sweep order, plus the
/// split between freshly-executed and cache-skipped cells.
#[derive(Debug)]
pub struct SweepOutcome {
    /// One record per sweep cell, in declaration order.
    pub records: Vec<CellRecord>,
    /// Cells actually executed this run.
    pub executed: usize,
    /// Cells satisfied from the store without running.
    pub skipped: usize,
}

/// Runs `sweep` through `store` at revision `git_rev`.
///
/// With `resume` set, a cell whose result is already in the store (same
/// experiment, workload, config hash, seed **and** revision) is skipped;
/// otherwise every cell re-runs and overwrites its stored record. Each cell's
/// result is persisted the moment its executor returns, so an interrupted
/// sweep loses at most the in-flight cell.
///
/// `progress` is called for every cell with `(index, total, spec, skipped)`
/// before the cell runs (or is skipped) — the CLI uses it for live status
/// lines, tests pass `|_, _, _, _| {}`.
pub fn run_sweep(
    store: &ResultStore,
    sweep: &Sweep,
    git_rev: &str,
    resume: bool,
    executor: &mut dyn FnMut(&CellSpec) -> Result<Json, Interrupted>,
    progress: &mut dyn FnMut(usize, usize, &CellSpec, bool),
) -> Result<SweepOutcome, Interrupted> {
    let total = sweep.cells.len();
    let mut outcome = SweepOutcome {
        records: Vec::with_capacity(total),
        executed: 0,
        skipped: 0,
    };
    for (index, spec) in sweep.cells.iter().enumerate() {
        if resume {
            if let Some(record) = store.load(spec, git_rev) {
                progress(index, total, spec, true);
                outcome.skipped += 1;
                outcome.records.push(record);
                continue;
            }
        }
        progress(index, total, spec, false);
        let metrics = executor(spec)?;
        let record = CellRecord {
            spec: spec.clone(),
            git_rev: git_rev.to_string(),
            metrics,
        };
        if let Err(e) = store.save(&record) {
            // A read-only results dir degrades to "no caching", not failure.
            eprintln!("warning: could not persist cell to {:?}: {e}", store.root());
        }
        outcome.executed += 1;
        outcome.records.push(record);
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> ResultStore {
        let dir: PathBuf =
            std::env::temp_dir().join(format!("cliquelist-sweep-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        ResultStore::new(dir)
    }

    fn tiny_sweep() -> Sweep {
        let mut sweep = Sweep::new("unit", "synthetic");
        for seed in 0..4 {
            sweep.cell(
                "synthetic",
                format!("w{seed}"),
                Json::obj(vec![("n", Json::Num(10.0))]),
                seed,
            );
        }
        sweep
    }

    fn echo_metrics(spec: &CellSpec) -> Json {
        Json::obj(vec![("value", Json::Num(spec.seed as f64 * 2.0))])
    }

    #[test]
    fn resume_skips_completed_cells() {
        let store = temp_store("resume");
        let sweep = tiny_sweep();
        let mut quiet = |_: usize, _: usize, _: &CellSpec, _: bool| {};
        let mut echo_executor = |spec: &CellSpec| Ok(echo_metrics(spec));

        let first = run_sweep(&store, &sweep, "rev", true, &mut echo_executor, &mut quiet)
            .expect("full run");
        assert_eq!((first.executed, first.skipped), (4, 0));

        let second = run_sweep(&store, &sweep, "rev", true, &mut echo_executor, &mut quiet)
            .expect("resumed run");
        assert_eq!((second.executed, second.skipped), (0, 4));
        assert_eq!(first.records, second.records);

        // Without --resume every cell re-runs even though the cache is warm.
        let fresh = run_sweep(&store, &sweep, "rev", false, &mut echo_executor, &mut quiet)
            .expect("fresh run");
        assert_eq!((fresh.executed, fresh.skipped), (4, 0));

        // A new revision invalidates the whole cache.
        let rev2 = run_sweep(&store, &sweep, "rev2", true, &mut echo_executor, &mut quiet)
            .expect("rev2 run");
        assert_eq!((rev2.executed, rev2.skipped), (4, 0));
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn interruption_persists_the_prefix() {
        let store = temp_store("interrupt");
        let sweep = tiny_sweep();
        let mut quiet = |_: usize, _: usize, _: &CellSpec, _: bool| {};
        let mut echo_executor = |spec: &CellSpec| Ok(echo_metrics(spec));

        // Executor that dies after two cells (a killed process).
        let mut ran = 0;
        let mut dying = |spec: &CellSpec| {
            if ran == 2 {
                return Err(Interrupted);
            }
            ran += 1;
            Ok(echo_metrics(spec))
        };
        let err = run_sweep(&store, &sweep, "rev", true, &mut dying, &mut quiet);
        assert_eq!(err.unwrap_err(), Interrupted);

        // Resume completes only the remaining cells.
        let resumed = run_sweep(&store, &sweep, "rev", true, &mut echo_executor, &mut quiet)
            .expect("resumed");
        assert_eq!((resumed.executed, resumed.skipped), (2, 2));
        assert_eq!(resumed.records.len(), 4);
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn records_preserve_sweep_order() {
        let store = temp_store("order");
        let sweep = tiny_sweep();
        let mut quiet = |_: usize, _: usize, _: &CellSpec, _: bool| {};
        let mut echo_executor = |spec: &CellSpec| Ok(echo_metrics(spec));
        let outcome =
            run_sweep(&store, &sweep, "rev", true, &mut echo_executor, &mut quiet).expect("run");
        let seeds: Vec<u64> = outcome.records.iter().map(|r| r.spec.seed).collect();
        assert_eq!(seeds, vec![0, 1, 2, 3]);
        let _ = fs::remove_dir_all(store.root());
    }
}
