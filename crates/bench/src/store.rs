//! The content-addressed result store behind the resumable experiment runner.
//!
//! Every sweep cell — one `(experiment, workload, config, seed)` combination
//! — is cached as a single JSON file under a `results/` directory, keyed by
//! the FNV-1a hash of the cell's **canonical** identity (sorted-key JSON of
//! the experiment id, workload label, config object, seed, and the git
//! revision the binary ran at). `experiments -- perf --resume` consults the
//! store before running a cell and skips the ones that already completed at
//! the same key; any change to the config (or a new commit) changes the key,
//! so stale cells are never reused. Corrupted cells — truncated writes,
//! hand-edited files — fail to parse or fail the embedded-key check, and are
//! treated as misses: the cell simply re-runs.
//!
//! The design follows the checkpoint/resume frameworks of `mergeable-etcd`'s
//! EXPERIMENTS setup and `OpenAgentsInc/openagents`' `ExperimentRunner`
//! (SNIPPETS.md §2–3): per-config result files, seeds carried in the config,
//! and "remove the results directory" as the blunt cache-clear.

use crate::json::Json;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The identity of one sweep cell. Everything that can change the cell's
/// measured result (other than the host) is part of the identity; the store
/// key is a hash over the canonical rendering of all four fields plus the
/// git revision.
#[derive(Clone, Debug, PartialEq)]
pub struct CellSpec {
    /// Experiment family, e.g. `"enumeration"` or `"thread-scaling"`.
    pub experiment: String,
    /// Workload label, e.g. `"er(400,0.25)"`.
    pub workload: String,
    /// The full cell configuration (a JSON object; field order irrelevant).
    pub config: Json,
    /// RNG seed the cell runs with (also present in most configs; kept
    /// separate so sweeps over seeds are first-class).
    pub seed: u64,
}

impl CellSpec {
    /// The cell's content hash at `git_rev`: FNV-1a 64 over the canonical
    /// JSON identity. Stable across config field reordering (objects are
    /// key-sorted first), different for any change to experiment, workload,
    /// config, seed or revision.
    pub fn key(&self, git_rev: &str) -> u64 {
        let identity = Json::obj(vec![
            ("experiment", Json::Str(self.experiment.clone())),
            ("workload", Json::Str(self.workload.clone())),
            ("config", self.config.clone()),
            ("seed", Json::Num(self.seed as f64)),
            ("git_rev", Json::Str(git_rev.to_string())),
        ]);
        fnv1a(identity.canonical().as_bytes())
    }

    /// The file name a cell is stored under: a slug of the experiment and
    /// workload (for humans browsing `results/`) plus the full key hash (for
    /// correctness).
    pub fn file_name(&self, git_rev: &str) -> String {
        format!(
            "{}--{}--{:016x}.json",
            slug(&self.experiment),
            slug(&self.workload),
            self.key(git_rev)
        )
    }
}

/// One completed cell: its spec, the revision it ran at, and the measured
/// metrics (a JSON object).
#[derive(Clone, Debug, PartialEq)]
pub struct CellRecord {
    /// The cell identity.
    pub spec: CellSpec,
    /// Git revision of the producing binary.
    pub git_rev: String,
    /// Measured metrics.
    pub metrics: Json,
}

impl CellRecord {
    /// Renders the record as the JSON document stored on disk. The embedded
    /// `key` lets [`ResultStore::load`] detect records whose content no
    /// longer matches their identity (hand-edited or half-written files).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("experiment", Json::Str(self.spec.experiment.clone())),
            ("workload", Json::Str(self.spec.workload.clone())),
            ("seed", Json::Num(self.spec.seed as f64)),
            ("config", self.spec.config.clone()),
            ("git_rev", Json::Str(self.git_rev.clone())),
            (
                "key",
                Json::Str(format!("{:016x}", self.spec.key(&self.git_rev))),
            ),
            ("metrics", self.metrics.clone()),
        ])
    }

    fn from_json(doc: &Json) -> Option<CellRecord> {
        let spec = CellSpec {
            experiment: doc.get("experiment")?.as_str()?.to_string(),
            workload: doc.get("workload")?.as_str()?.to_string(),
            config: doc.get("config")?.clone(),
            seed: doc.get("seed")?.as_f64()? as u64,
        };
        let git_rev = doc.get("git_rev")?.as_str()?.to_string();
        let record = CellRecord {
            metrics: doc.get("metrics")?.clone(),
            spec,
            git_rev,
        };
        let stored_key = doc.get("key")?.as_str()?;
        if stored_key != format!("{:016x}", record.spec.key(&record.git_rev)) {
            return None;
        }
        Some(record)
    }
}

/// A directory of completed cells, one JSON file per cell.
#[derive(Clone, Debug)]
pub struct ResultStore {
    root: PathBuf,
}

impl ResultStore {
    /// Opens (and lazily creates) a store rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> ResultStore {
        ResultStore { root: root.into() }
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Loads the completed cell for `spec` at `git_rev`, or `None` when the
    /// cell is missing **or corrupted** (unparseable JSON, or content that no
    /// longer matches the key it is filed under). Corrupted files are removed
    /// so the directory never accumulates junk — the cell re-runs and the
    /// fresh result overwrites them anyway.
    pub fn load(&self, spec: &CellSpec, git_rev: &str) -> Option<CellRecord> {
        let path = self.root.join(spec.file_name(git_rev));
        let text = fs::read_to_string(&path).ok()?;
        let record = Json::parse(&text)
            .ok()
            .as_ref()
            .and_then(CellRecord::from_json);
        match record {
            Some(record) if record.spec == *spec && record.git_rev == git_rev => Some(record),
            _ => {
                // Corrupted or mislabelled: recover by dropping the file.
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Writes a completed cell (atomically: temp file + rename, so a killed
    /// run can never leave a half-written cell that a later `--resume` would
    /// trust — at worst it leaves a `.tmp` the next save overwrites).
    pub fn save(&self, record: &CellRecord) -> io::Result<()> {
        fs::create_dir_all(&self.root)?;
        let path = self.root.join(record.spec.file_name(&record.git_rev));
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, record.to_json().render())?;
        fs::rename(&tmp, &path)
    }
}

/// The git revision the harness keys its cells by: the `CLIQUELIST_GIT_REV`
/// override when set (tests and CI use this), else the commit hash read
/// straight out of `.git` (no subprocess), else `"unknown"`.
///
/// Reading `.git` directly keeps the harness runnable where no `git` binary
/// exists; the resolution is deliberately simple (HEAD → ref file →
/// packed-refs) — exotic layouts fall back to `"unknown"`, which only makes
/// the cache conservative, never wrong.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("CLIQUELIST_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    read_git_rev(Path::new(".git")).unwrap_or_else(|| "unknown".to_string())
}

fn read_git_rev(git_dir: &Path) -> Option<String> {
    let head = fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    let Some(reference) = head.strip_prefix("ref: ") else {
        // Detached HEAD: the hash itself.
        return Some(head.to_string());
    };
    if let Ok(hash) = fs::read_to_string(git_dir.join(reference)) {
        return Some(hash.trim().to_string());
    }
    let packed = fs::read_to_string(git_dir.join("packed-refs")).ok()?;
    packed
        .lines()
        .filter(|line| !line.starts_with(['#', '^']))
        .find_map(|line| {
            let (hash, name) = line.split_once(' ')?;
            (name == reference).then(|| hash.to_string())
        })
}

/// FNV-1a, 64-bit. Tiny, dependency-free, and plenty for cache addressing
/// (a collision would need two *different* canonical cell identities — the
/// space is far too sparse for that to matter, and the stored record embeds
/// the full identity anyway, which `load` checks).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn slug(text: &str) -> String {
    let mut out: String = text
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    out.truncate(60);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cliquelist-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn spec() -> CellSpec {
        CellSpec {
            experiment: "enumeration".into(),
            workload: "er(400,0.25)".into(),
            config: Json::parse(r#"{"p":4,"threads":2,"algorithm":"general"}"#).unwrap(),
            seed: 7,
        }
    }

    #[test]
    fn key_is_stable_across_config_field_reordering() {
        let a = spec();
        let mut b = spec();
        b.config = Json::parse(r#"{"algorithm":"general","threads":2,"p":4}"#).unwrap();
        assert_ne!(a.config.render(), b.config.render());
        assert_eq!(a.key("rev1"), b.key("rev1"));
        assert_eq!(a.file_name("rev1"), b.file_name("rev1"));
    }

    #[test]
    fn key_changes_with_config_seed_and_rev() {
        let base = spec();
        let k = base.key("rev1");

        let mut config_change = spec();
        config_change.config.set("threads", Json::Num(4.0));
        assert_ne!(config_change.key("rev1"), k, "config change must miss");

        let mut seed_change = spec();
        seed_change.seed = 8;
        assert_ne!(seed_change.key("rev1"), k, "seed change must miss");

        assert_ne!(base.key("rev2"), k, "revision change must miss");

        let mut workload_change = spec();
        workload_change.workload = "er(600,0.18)".into();
        assert_ne!(workload_change.key("rev1"), k, "workload change must miss");
    }

    #[test]
    fn save_then_load_hits_on_the_identical_cell() {
        let store = ResultStore::new(temp_dir("hit"));
        let record = CellRecord {
            spec: spec(),
            git_rev: "rev1".into(),
            metrics: Json::parse(r#"{"best_ms":1.5,"cliques":263564}"#).unwrap(),
        };
        assert!(store.load(&spec(), "rev1").is_none(), "cold store misses");
        store.save(&record).unwrap();
        let loaded = store.load(&spec(), "rev1").expect("cache hit");
        assert_eq!(loaded, record);
        // A different revision misses even though the file for rev1 exists.
        assert!(store.load(&spec(), "rev2").is_none());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn corrupted_cells_are_recovered_as_misses() {
        let store = ResultStore::new(temp_dir("corrupt"));
        let record = CellRecord {
            spec: spec(),
            git_rev: "rev1".into(),
            metrics: Json::parse(r#"{"best_ms":1.5}"#).unwrap(),
        };
        store.save(&record).unwrap();
        let path = store.root().join(spec().file_name("rev1"));

        // Truncated write (killed process).
        fs::write(&path, &record.to_json().render()[..20]).unwrap();
        assert!(store.load(&spec(), "rev1").is_none(), "truncated → miss");
        assert!(!path.exists(), "corrupted file is removed");

        // Valid JSON whose content does not match the key it is filed under
        // (hand-edited metrics tampering with the seed).
        store.save(&record).unwrap();
        let mut doc = Json::parse(&fs::read_to_string(&path).unwrap()).unwrap();
        doc.set("seed", Json::Num(99.0));
        fs::write(&path, doc.render()).unwrap();
        assert!(store.load(&spec(), "rev1").is_none(), "tampered → miss");

        // After recovery a fresh save hits again.
        store.save(&record).unwrap();
        assert!(store.load(&spec(), "rev1").is_some());
        let _ = fs::remove_dir_all(store.root());
    }

    #[test]
    fn env_override_pins_the_revision() {
        // Can't mutate the process environment safely in a test harness, but
        // the .git fallback must at least produce *something* stable.
        let a = git_rev();
        let b = git_rev();
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
