//! Consolidation of sweep results into the bench-trajectory artifact, and
//! the regression gate CI runs against it.
//!
//! `experiments -- report` renders the current sweep's cells **plus** the
//! historical ad-hoc artifacts (`BENCH_PR3.json` … `BENCH_PR5.json`) into one
//! `BENCH_TRAJECTORY.json`, embedding the per-metric thresholds the gate
//! enforces. `experiments -- check` re-runs the sweep (through the cache, so
//! a warm `results/` directory makes it cheap) and compares against the
//! committed trajectory:
//!
//! * **Deterministic metrics are gated exactly.** Clique counts, the
//!   embedded engine [`RunReport`](cliquelist::RunReport) JSON and the
//!   query-service batch payloads (`responses`) must match byte-for-byte —
//!   the headline invariant is that reports and query payloads are
//!   identical across thread counts and cache states, so baseline cells
//!   produced on a 1-core host gate runs on any host. Cells are matched on
//!   their identity with the host/build-dependent knobs (`threads`,
//!   `auto_threads`, `parallel_build`) stripped.
//! * **Timing metrics are gated by a generous ratio** (`best_ms` may grow by
//!   at most `time_factor`, default [`DEFAULT_TIME_FACTOR`]), and only
//!   between cells whose *full* config matches (same thread grant, same
//!   build flavour). Committed baselines come from a 1-core container — the
//!   factor absorbs host noise while still catching order-of-magnitude
//!   regressions.
//! * **Scaling evidence is required on multi-core hosts.** [`check_scaling`]
//!   fails the gate when a parallel-build sweep on a host with two or more
//!   cores produces no derived `speedup_vs_1_thread` cells — the multi-core
//!   CI leg cannot silently lose the scaling series — while 1-core hosts
//!   pass vacuously (their derived cells are tagged with
//!   `speedup_provenance: "1-core host"`, so they never masquerade as
//!   multi-core evidence).
//!
//! New cells (grid growth) and baseline cells with no fresh counterpart
//! (feature-gated series) are reported but never fail the gate.

use crate::json::Json;
use crate::store::CellRecord;
use crate::sweep::Sweep;
use std::fs;
use std::path::Path;

/// Default multiplicative slack for timing metrics: fresh `best_ms` may be
/// up to this factor above baseline before `check` fails. Deliberately
/// generous — CI hosts differ wildly from the 1-core container the committed
/// baselines ran on; the gate exists to catch order-of-magnitude cliffs.
pub const DEFAULT_TIME_FACTOR: f64 = 10.0;

/// Config keys that are host- or build-dependent and therefore excluded
/// from the identity used for deterministic-metric matching.
const HOST_KEYS: &[&str] = &["threads", "auto_threads", "parallel_build"];

/// Metrics gated byte-exactly: clique counts, the embedded engine reports,
/// the query-service batch payloads (which exclude their execution reports,
/// so they too are thread- and cache-independent), the fault-sweep
/// retransmit-overhead counters (deterministic in `(graph, p, fault plan)`
/// by the fault replay contract), and the churn-sweep strategy decisions,
/// applied-change counts and delta-listing sizes (deterministic in
/// `(graph, batch_target)` by the churn differential contract). Metrics
/// absent from a baseline cell are skipped, so growing this list never
/// fails the gate against an older trajectory.
const DETERMINISTIC_METRICS: &[&str] = &[
    "churn_ppm",
    "cliques",
    "created_cliques",
    "deleted",
    "destroyed_cliques",
    "inserted",
    "report",
    "resolved_kernel",
    "responses",
    "retransmits",
    "simulated_rounds",
    "strategy",
];

/// The historical ad-hoc artifacts consolidated into the trajectory.
pub const HISTORY_FILES: &[&str] = &["BENCH_PR3.json", "BENCH_PR4.json", "BENCH_PR5.json"];

fn deterministic_identity(record: &CellRecord) -> String {
    let mut config = record.spec.config.clone();
    if let Json::Obj(pairs) = &mut config {
        pairs.retain(|(k, _)| !HOST_KEYS.contains(&k.as_str()));
    }
    Json::obj(vec![
        ("experiment", Json::Str(record.spec.experiment.clone())),
        ("workload", Json::Str(record.spec.workload.clone())),
        ("seed", Json::Num(record.spec.seed as f64)),
        ("config", config),
    ])
    .canonical()
}

fn full_identity(record: &CellRecord) -> String {
    Json::obj(vec![
        ("experiment", Json::Str(record.spec.experiment.clone())),
        ("workload", Json::Str(record.spec.workload.clone())),
        ("seed", Json::Num(record.spec.seed as f64)),
        ("config", record.spec.config.clone()),
    ])
    .canonical()
}

fn cell_label(record: &CellRecord) -> String {
    let threads = record
        .spec
        .config
        .get("threads")
        .and_then(Json::as_f64)
        .map(|t| format!(" threads={t}"))
        .unwrap_or_default();
    format!(
        "{}/{}{} seed={}",
        record.spec.experiment, record.spec.workload, threads, record.spec.seed
    )
}

/// A cell's config with one key removed, canonically rendered — the group
/// key of the speedup derivations (cells differing only in `threads`, or
/// only in `kernel`, form one series).
fn config_without(record: &CellRecord, key: &str) -> String {
    let mut config = record.spec.config.clone();
    if let Json::Obj(pairs) = &mut config {
        pairs.retain(|(k, _)| k != key);
    }
    config.canonical()
}

/// The host-provenance tag of a derived speedup: committed 1-core baselines
/// and real multi-core CI cells must be distinguishable in the artifact, so
/// every cell that gets a derived speedup also records which kind of host
/// produced it (from the `available_parallelism` metric the executor stamps
/// on every cell).
fn speedup_provenance(cell: &CellRecord) -> &'static str {
    let cores = cell
        .metrics
        .get("available_parallelism")
        .and_then(Json::as_f64)
        .unwrap_or(1.0);
    if cores > 1.0 {
        "multi-core host"
    } else {
        "1-core host"
    }
}

/// Adds `speedup_vs_1_thread` to every scaling cell whose series has a
/// `threads == 1` cell (same experiment, workload, seed and config apart
/// from the grant — so per-kernel series never cross-contaminate), and
/// `speedup_vs_recursive` to every kernel cell whose series has a
/// `kernel == "recursive"` cell. Each derived cell also records its
/// `speedup_provenance` (1-core vs multi-core host). Computed at
/// consolidation time from the cached cells, so a resumed sweep reports the
/// same speedups as the original run.
pub fn with_speedups(records: &[CellRecord]) -> Vec<CellRecord> {
    let mut out: Vec<CellRecord> = records.to_vec();
    for cell in &mut out {
        let best = cell.metrics.get("best_ms").and_then(Json::as_f64);
        let Some(best) = best.filter(|&ms| ms > 0.0) else {
            continue;
        };
        let (experiment, workload, seed) = (
            cell.spec.experiment.clone(),
            cell.spec.workload.clone(),
            cell.spec.seed,
        );
        let sans_threads = config_without(cell, "threads");
        let sans_kernel = config_without(cell, "kernel");
        let series = |r: &&CellRecord, key: &str, group: &str| {
            r.spec.experiment == experiment
                && r.spec.workload == workload
                && r.spec.seed == seed
                && config_without(r, key) == group
        };
        let mut derived = false;
        if cell.spec.config.get("threads").is_some() {
            let baseline = records.iter().find(|r| {
                series(r, "threads", &sans_threads)
                    && r.spec.config.get("threads").and_then(Json::as_f64) == Some(1.0)
            });
            if let Some(base_ms) = baseline
                .and_then(|r| r.metrics.get("best_ms").and_then(Json::as_f64))
                .filter(|&ms| ms > 0.0)
            {
                cell.metrics
                    .set("speedup_vs_1_thread", Json::Num(base_ms / best));
                derived = true;
            }
        }
        if cell.spec.config.get("kernel").and_then(Json::as_str) == Some("trie") {
            let baseline = records.iter().find(|r| {
                series(r, "kernel", &sans_kernel)
                    && r.spec.config.get("kernel").and_then(Json::as_str) == Some("recursive")
            });
            if let Some(base_ms) = baseline
                .and_then(|r| r.metrics.get("best_ms").and_then(Json::as_f64))
                .filter(|&ms| ms > 0.0)
            {
                cell.metrics
                    .set("speedup_vs_recursive", Json::Num(base_ms / best));
                derived = true;
            }
        }
        if derived {
            let provenance = speedup_provenance(cell);
            cell.metrics
                .set("speedup_provenance", Json::Str(provenance.to_string()));
        }
    }
    out
}

/// Reads whichever of [`HISTORY_FILES`] exist under `dir` and extracts their
/// `perf` experiment entries, normalising the two historical shapes (PR3/PR4
/// nest `experiments` under a `perf` key with `pr`/`note` metadata; PR5 has
/// `experiments` at top level).
pub fn load_history(dir: &Path) -> Vec<Json> {
    let mut history = Vec::new();
    for name in HISTORY_FILES {
        let Ok(text) = fs::read_to_string(dir.join(name)) else {
            continue;
        };
        let Ok(doc) = Json::parse(&text) else {
            continue;
        };
        let experiments = doc
            .get("perf")
            .and_then(|p| p.get("experiments"))
            .or_else(|| doc.get("experiments"))
            .and_then(Json::as_arr)
            .unwrap_or(&[]);
        let perf_runs = experiments
            .iter()
            .find(|e| e.get("id").and_then(Json::as_str) == Some("perf"))
            .and_then(|e| e.get("runs"))
            .cloned()
            .unwrap_or(Json::Arr(Vec::new()));
        let mut entry = vec![("source", Json::Str((*name).to_string()))];
        if let Some(pr) = doc.get("pr") {
            entry.push(("pr", pr.clone()));
        }
        if let Some(note) = doc.get("note") {
            entry.push(("note", note.clone()));
        }
        entry.push(("runs", perf_runs));
        history.push(Json::obj(entry));
    }
    history
}

/// Renders the consolidated trajectory document: sweep identity, the
/// completed cells (with derived speedups), the embedded gate thresholds,
/// and the normalised history. Deterministic given the records — no
/// timestamps — which is what makes "killed, resumed, consolidated" byte-
/// identical to a from-scratch run.
pub fn consolidate(sweep: &Sweep, records: &[CellRecord], history: &[Json], git_rev: &str) -> Json {
    let cells = with_speedups(records);
    let cell_docs: Vec<Json> = cells.iter().map(CellRecord::to_json).collect();
    Json::obj(vec![
        ("schema", Json::Num(1.0)),
        ("id", Json::Str(sweep.id.clone())),
        ("claim", Json::Str(sweep.claim.clone())),
        ("git_rev", Json::Str(git_rev.to_string())),
        (
            "provenance",
            Json::Str(
                "committed baselines are recorded on a 1-core container: timings and \
                 speedup_vs_1_thread carry 1-thread provenance (the query-throughput batch \
                 fan-out included); deterministic metrics gate any host. Every cell with a \
                 derived speedup records its own speedup_provenance (1-core host vs \
                 multi-core host), so multi-core CI cells never alias the committed series"
                    .into(),
            ),
        ),
        (
            "thresholds",
            Json::obj(vec![
                (
                    "deterministic",
                    Json::Str(
                        "exact: cliques, engine reports, query-batch payloads, fault-sweep \
                         retransmit counters, and churn-sweep strategy decisions and delta \
                         counts must match baseline"
                            .into(),
                    ),
                ),
                ("time_factor", Json::Num(DEFAULT_TIME_FACTOR)),
                (
                    "time_metric",
                    Json::Str("best_ms, compared only between identical full configs".into()),
                ),
                (
                    "scaling",
                    Json::Str(
                        "on multi-core parallel-build hosts, every threads > 1 scaling cell \
                         must derive speedup_vs_1_thread; missing cells fail the gate"
                            .into(),
                    ),
                ),
            ]),
        ),
        ("cells", Json::Arr(cell_docs)),
        ("history", Json::Arr(history.to_vec())),
    ])
}

/// One gate violation: a metric of a fresh cell that regressed beyond its
/// threshold relative to the committed trajectory.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Human-readable cell label.
    pub cell: String,
    /// The metric that regressed.
    pub metric: String,
    /// What the committed trajectory recorded.
    pub baseline: String,
    /// What the fresh run produced.
    pub fresh: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed (baseline {}, fresh {})",
            self.cell, self.metric, self.baseline, self.fresh
        )
    }
}

fn trajectory_cells(trajectory: &Json) -> Vec<CellRecord> {
    trajectory
        .get("cells")
        .and_then(Json::as_arr)
        .unwrap_or(&[])
        .iter()
        .filter_map(cell_from_doc)
        .collect()
}

fn cell_from_doc(doc: &Json) -> Option<CellRecord> {
    Some(CellRecord {
        spec: crate::store::CellSpec {
            experiment: doc.get("experiment")?.as_str()?.to_string(),
            workload: doc.get("workload")?.as_str()?.to_string(),
            config: doc.get("config")?.clone(),
            seed: doc.get("seed")?.as_f64()? as u64,
        },
        git_rev: doc
            .get("git_rev")
            .and_then(Json::as_str)
            .unwrap_or("unknown")
            .to_string(),
        metrics: doc.get("metrics")?.clone(),
    })
}

/// Compares fresh sweep results against a committed trajectory document.
///
/// Returns the violations (empty = gate passes). `time_factor` overrides the
/// timing threshold; pass the trajectory's embedded default by giving
/// `None`. See the module docs for the exact matching and threshold rules.
pub fn check(trajectory: &Json, fresh: &[CellRecord], time_factor: Option<f64>) -> Vec<Violation> {
    let time_factor = time_factor
        .or_else(|| {
            trajectory
                .get("thresholds")
                .and_then(|t| t.get("time_factor"))
                .and_then(Json::as_f64)
        })
        .unwrap_or(DEFAULT_TIME_FACTOR);
    let baseline = trajectory_cells(trajectory);
    let fresh = with_speedups(fresh);
    let mut violations = Vec::new();

    for base in &baseline {
        // Deterministic gate: match on the host-independent identity.
        let base_id = deterministic_identity(base);
        let Some(new) = fresh.iter().find(|r| deterministic_identity(r) == base_id) else {
            // Feature-gated or removed cell: reported by the CLI, not a failure.
            continue;
        };
        for metric in DETERMINISTIC_METRICS {
            let (Some(b), Some(n)) = (base.metrics.get(metric), new.metrics.get(metric)) else {
                continue;
            };
            if b.canonical() != n.canonical() {
                violations.push(Violation {
                    cell: cell_label(base),
                    metric: metric.to_string(),
                    baseline: truncate(&b.canonical()),
                    fresh: truncate(&n.canonical()),
                });
            }
        }

        // Timing gate: only between cells whose full config matches.
        let base_full = full_identity(base);
        let timed = fresh.iter().find(|r| full_identity(r) == base_full);
        let base_ms = base.metrics.get("best_ms").and_then(Json::as_f64);
        let new_ms = timed.and_then(|r| r.metrics.get("best_ms").and_then(Json::as_f64));
        if let (Some(base_ms), Some(new_ms)) = (base_ms, new_ms) {
            if base_ms > 0.0 && new_ms > base_ms * time_factor {
                violations.push(Violation {
                    cell: cell_label(base),
                    metric: "best_ms".to_string(),
                    baseline: format!("{base_ms:.2}ms (threshold {time_factor:.0}x)"),
                    fresh: format!("{new_ms:.2}ms"),
                });
            }
        }
    }
    violations
}

/// The multi-core scaling gate (PR 10): on a host with two or more cores, a
/// parallel-build sweep must actually produce the scaling evidence —
/// every `scaling-sweep`/`thread-scaling` cell with `threads > 1` must have
/// derived a `speedup_vs_1_thread`, and at least one such cell must exist.
/// A 1-core host (`host_threads < 2`) cannot measure speedup, so the gate
/// passes vacuously there — which is exactly why every derived cell also
/// carries `speedup_provenance`: committed 1-core numbers and multi-core CI
/// numbers never alias. The caller is expected to skip this on sequential
/// builds (where the scaling cells are feature-gated out).
pub fn check_scaling(fresh: &[CellRecord], host_threads: usize) -> Vec<Violation> {
    let mut violations = Vec::new();
    if host_threads < 2 {
        return violations;
    }
    let fresh = with_speedups(fresh);
    let mut saw_scaling_cell = false;
    for cell in fresh.iter().filter(|r| {
        matches!(
            r.spec.experiment.as_str(),
            "scaling-sweep" | "thread-scaling"
        )
    }) {
        if cell.metrics.get("skipped").is_some() {
            continue;
        }
        let threads = cell
            .spec
            .config
            .get("threads")
            .and_then(Json::as_f64)
            .unwrap_or(1.0);
        if threads <= 1.0 {
            continue;
        }
        saw_scaling_cell = true;
        if cell.metrics.get("speedup_vs_1_thread").is_none() {
            violations.push(Violation {
                cell: cell_label(cell),
                metric: "speedup_vs_1_thread".to_string(),
                baseline: "derivable (multi-core host, threads > 1)".to_string(),
                fresh: "missing".to_string(),
            });
        }
    }
    if !saw_scaling_cell {
        violations.push(Violation {
            cell: "scaling-sweep".to_string(),
            metric: "speedup_vs_1_thread".to_string(),
            baseline: "at least one threads > 1 scaling cell on a multi-core host".to_string(),
            fresh: "none ran".to_string(),
        });
    }
    violations
}

fn truncate(text: &str) -> String {
    if text.len() <= 96 {
        return text.to_string();
    }
    let mut end = 96;
    while !text.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &text[..end])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::CellSpec;

    fn record(workload: &str, threads: Option<usize>, cliques: f64, best_ms: f64) -> CellRecord {
        let mut config = vec![
            ("kind", Json::Str("thread-scaling".into())),
            ("p", Json::Num(4.0)),
        ];
        if let Some(t) = threads {
            config.push(("threads", Json::Num(t as f64)));
        }
        CellRecord {
            spec: CellSpec {
                experiment: "thread-scaling".into(),
                workload: workload.into(),
                config: Json::obj(config),
                seed: 7,
            },
            git_rev: "base-rev".into(),
            metrics: Json::obj(vec![
                ("cliques", Json::Num(cliques)),
                ("best_ms", Json::Num(best_ms)),
            ]),
        }
    }

    fn sweep() -> Sweep {
        Sweep::new("perf", "test claim")
    }

    #[test]
    fn consolidation_is_deterministic_and_adds_speedups() {
        let records = vec![
            record("er(400,0.25)", Some(1), 100.0, 8.0),
            record("er(400,0.25)", Some(4), 100.0, 2.0),
        ];
        let a = consolidate(&sweep(), &records, &[], "rev");
        let b = consolidate(&sweep(), &records, &[], "rev");
        assert_eq!(a.render(), b.render());
        let cells = a.get("cells").and_then(Json::as_arr).unwrap();
        let speedup = cells[1]
            .get("metrics")
            .and_then(|m| m.get("speedup_vs_1_thread"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((speedup - 4.0).abs() < 1e-9);
    }

    fn scaling_record(kernel: &str, threads: usize, best_ms: f64, cores: f64) -> CellRecord {
        CellRecord {
            spec: CellSpec {
                experiment: "scaling-sweep".into(),
                workload: "turan(450,3)".into(),
                config: Json::obj(vec![
                    ("kind", Json::Str("scaling-sweep".into())),
                    ("p", Json::Num(4.0)),
                    ("kernel", Json::Str(kernel.into())),
                    ("threads", Json::Num(threads as f64)),
                ]),
                seed: 7,
            },
            git_rev: "rev".into(),
            metrics: Json::obj(vec![
                ("available_parallelism", Json::Num(cores)),
                ("cliques", Json::Num(0.0)),
                ("best_ms", Json::Num(best_ms)),
            ]),
        }
    }

    #[test]
    fn speedup_series_never_cross_kernels() {
        // Two kernels share the workload: each speedup must come from its
        // own kernel's 1-thread cell, and the trie cells additionally derive
        // speedup_vs_recursive from the recursive cell at the same grant.
        let records = vec![
            scaling_record("recursive", 1, 8.0, 4.0),
            scaling_record("recursive", 4, 4.0, 4.0),
            scaling_record("trie", 1, 4.0, 4.0),
            scaling_record("trie", 4, 1.0, 4.0),
        ];
        let out = with_speedups(&records);
        let speedup = |i: usize, key: &str| out[i].metrics.get(key).and_then(Json::as_f64);
        assert!((speedup(1, "speedup_vs_1_thread").unwrap() - 2.0).abs() < 1e-9);
        assert!((speedup(3, "speedup_vs_1_thread").unwrap() - 4.0).abs() < 1e-9);
        assert!((speedup(2, "speedup_vs_recursive").unwrap() - 2.0).abs() < 1e-9);
        assert!((speedup(3, "speedup_vs_recursive").unwrap() - 4.0).abs() < 1e-9);
        assert!(speedup(0, "speedup_vs_recursive").is_none());
        // The provenance tag distinguishes multi-core cells from the
        // committed 1-core series.
        assert_eq!(
            out[3]
                .metrics
                .get("speedup_provenance")
                .and_then(Json::as_str),
            Some("multi-core host")
        );
        let one_core = with_speedups(&[
            scaling_record("trie", 1, 4.0, 1.0),
            scaling_record("trie", 4, 4.0, 1.0),
        ]);
        assert_eq!(
            one_core[1]
                .metrics
                .get("speedup_provenance")
                .and_then(Json::as_str),
            Some("1-core host")
        );
    }

    #[test]
    fn scaling_gate_requires_speedups_on_multi_core_hosts() {
        let full = vec![
            scaling_record("trie", 1, 8.0, 4.0),
            scaling_record("trie", 4, 2.0, 4.0),
        ];
        // A 1-core host passes vacuously — it cannot measure speedup.
        assert!(check_scaling(&full, 1).is_empty());
        // A multi-core host with a derivable series passes.
        assert!(check_scaling(&full, 4).is_empty());
        // Dropping the 1-thread baseline makes the speedup underivable: the
        // threads > 1 cell is a violation.
        let headless = vec![scaling_record("trie", 4, 2.0, 4.0)];
        let violations = check_scaling(&headless, 4);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "speedup_vs_1_thread");
        // Losing the scaling cells entirely is itself a violation.
        let none = vec![scaling_record("trie", 1, 8.0, 4.0)];
        assert_eq!(check_scaling(&none, 4).len(), 1);
        assert!(check_scaling(&[], 4).len() == 1);
    }

    #[test]
    fn check_passes_on_identical_results() {
        let records = vec![record("er(400,0.25)", Some(1), 100.0, 8.0)];
        let trajectory = consolidate(&sweep(), &records, &[], "base-rev");
        assert!(check(&trajectory, &records, None).is_empty());
    }

    #[test]
    fn check_fails_on_deterministic_regression() {
        let baseline = vec![record("er(400,0.25)", Some(1), 100.0, 8.0)];
        let trajectory = consolidate(&sweep(), &baseline, &[], "base-rev");
        // A changed clique count is a correctness regression regardless of
        // how fast it ran.
        let mut broken = vec![record("er(400,0.25)", Some(1), 99.0, 1.0)];
        broken[0].git_rev = "new-rev".into();
        let violations = check(&trajectory, &broken, None);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "cliques");
    }

    fn query_record(responses: &str, auto_threads: usize) -> CellRecord {
        CellRecord {
            spec: CellSpec {
                experiment: "query-throughput".into(),
                workload: "er(300,0.2)".into(),
                config: Json::obj(vec![
                    ("kind", Json::Str("query-throughput".into())),
                    ("p", Json::Num(4.0)),
                    ("auto_threads", Json::Num(auto_threads as f64)),
                ]),
                seed: 19,
            },
            git_rev: "base-rev".into(),
            metrics: Json::obj(vec![
                ("cliques", Json::Num(50.0)),
                ("responses", Json::parse(responses).unwrap()),
                ("best_ms", Json::Num(3.0)),
            ]),
        }
    }

    #[test]
    fn check_gates_query_payloads_exactly_across_thread_grants() {
        let baseline = vec![query_record("[{\"outcome\":{\"count\":50}}]", 1)];
        let trajectory = consolidate(&sweep(), &baseline, &[], "base-rev");
        // Same payloads from a 4-thread host: the deterministic identity
        // strips `auto_threads`, so the 1-core baseline still gates it.
        let same = vec![query_record("[{\"outcome\":{\"count\":50}}]", 4)];
        assert!(check(&trajectory, &same, None).is_empty());
        // A changed payload is a regression even when the counts agree.
        let changed = vec![query_record("[{\"outcome\":{\"count\":50},\"x\":1}]", 4)];
        let violations = check(&trajectory, &changed, None);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "responses");
    }

    #[test]
    fn check_fails_on_timing_cliff_but_tolerates_noise() {
        let baseline = vec![record("er(400,0.25)", Some(1), 100.0, 8.0)];
        let trajectory = consolidate(&sweep(), &baseline, &[], "base-rev");
        // 2x slower: inside the 10x budget.
        let noisy = vec![record("er(400,0.25)", Some(1), 100.0, 16.0)];
        assert!(check(&trajectory, &noisy, None).is_empty());
        // 20x slower: a cliff.
        let cliff = vec![record("er(400,0.25)", Some(1), 100.0, 160.0)];
        let violations = check(&trajectory, &cliff, None);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "best_ms");
        // A tighter explicit factor catches the 2x case too.
        assert_eq!(check(&trajectory, &noisy, Some(1.5)).len(), 1);
    }

    #[test]
    fn deterministic_gate_matches_across_thread_counts() {
        // Baseline ran on a 1-core host; fresh run uses 4 threads. The
        // deterministic identity strips the grant, so a wrong count is still
        // caught; timing is not compared (different full configs).
        let baseline = vec![record("er(400,0.25)", Some(1), 100.0, 8.0)];
        let trajectory = consolidate(&sweep(), &baseline, &[], "base-rev");
        let fresh = vec![record("er(400,0.25)", Some(4), 123.0, 1000.0)];
        let violations = check(&trajectory, &fresh, None);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].metric, "cliques");
    }

    #[test]
    fn missing_fresh_cells_do_not_fail_the_gate() {
        let baseline = vec![
            record("er(400,0.25)", Some(1), 100.0, 8.0),
            record("er(600,0.18)", Some(1), 500.0, 80.0),
        ];
        let trajectory = consolidate(&sweep(), &baseline, &[], "base-rev");
        let fresh = vec![record("er(400,0.25)", Some(1), 100.0, 8.0)];
        assert!(check(&trajectory, &fresh, None).is_empty());
    }
}
