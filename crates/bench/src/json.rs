//! A minimal JSON value type with parsing, rendering and canonicalisation.
//!
//! The workspace vendors a marker-only `serde` stand-in (`DESIGN.md` §5), so
//! everything that must *read* JSON back — the content-addressed result store,
//! the trajectory consolidation over the historical `BENCH_PR{3,4,5}.json`
//! artifacts, and the perf-gate comparison — goes through this hand-rolled
//! value type instead. It is deliberately small: objects preserve insertion
//! order (so re-rendered documents stay diffable), numbers are `f64` (every
//! metric the harness records fits), and the only extravagance is
//! [`Json::canonical`], the sorted-key rendering that makes the store's
//! config hashes stable under field reordering.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (the harness never needs more than `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicated keys keep the last value).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs (convenience for literals).
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Inserts (or replaces) a key in an object; no-op on other variants.
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                pairs.push((key.to_string(), value));
            }
        }
    }

    /// Renders the value as compact JSON, preserving object insertion order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, false);
        out
    }

    /// Renders the value with every object's keys sorted (recursively):
    /// the canonical form the result store hashes, so two configs that
    /// differ only in field order hash identically.
    pub fn canonical(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, true);
        out
    }

    fn write(&self, out: &mut String, canonical: bool) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // Integral values render without a trailing `.0` so the
                    // round-trip `parse(render(x)) == x` stays exact and the
                    // output matches the hand-written emitters elsewhere.
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{}", *v as i64);
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out, canonical);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                let mut order: Vec<usize> = (0..pairs.len()).collect();
                if canonical {
                    order.sort_by(|&a, &b| pairs[a].0.cmp(&pairs[b].0));
                }
                for (i, &idx) in order.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, &pairs[idx].0);
                    out.push(':');
                    pairs[idx].1.write(out, canonical);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document. Returns a descriptive error (byte offset +
    /// reason) on malformed input — the result store treats any error as a
    /// corrupted cell and recovers by re-running it.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

/// A parse failure: byte offset and reason.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset the parser stopped at.
    pub offset: usize,
    /// What went wrong.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.reason
        )
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, expected: u8) -> Result<(), ParseError> {
        if self.peek() == Some(expected) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", expected as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are irrelevant to the harness's own
                            // documents; map unpaired ones to the replacement
                            // character rather than failing the whole cell.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar. The input came in as a &str
                    // and the parser only ever advances by whole scalars, so
                    // the remainder is valid UTF-8.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let text = r#"{"a":1,"b":[true,null,"x\ny"],"c":{"d":2.5,"e":-3}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(
            parsed.get("c").unwrap().get("d").unwrap().as_f64(),
            Some(2.5)
        );
        assert_eq!(parsed.get("b").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn canonical_sorts_keys_recursively() {
        let a = Json::parse(r#"{"z":{"b":1,"a":2},"a":3}"#).unwrap();
        let b = Json::parse(r#"{"a":3,"z":{"a":2,"b":1}}"#).unwrap();
        assert_ne!(a.render(), b.render());
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.canonical(), r#"{"a":3,"z":{"a":2,"b":1}}"#);
    }

    #[test]
    fn parses_the_run_report_shape() {
        // The exact shape RunReport::to_json emits must survive a round trip.
        let text = r#"{"algorithm":"general","model":"congest","p":4,"rounds":{"total":15,"phases":{"decomposition":10}},"parallel":{"supported":true,"sequential_reason":null}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.render(), text);
        assert_eq!(
            parsed.get("rounds").unwrap().get("total").unwrap().as_f64(),
            Some(15.0)
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "1 2"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
        let err = Json::parse("{\"a\" 1}").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn numbers_render_like_the_hand_written_emitters() {
        assert_eq!(Json::Num(5.0).render(), "5");
        assert_eq!(Json::Num(2.5).render(), "2.5");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::parse("1e3").unwrap(), Json::Num(1000.0));
    }

    #[test]
    fn set_and_get_on_objects() {
        let mut v = Json::obj(vec![("a", Json::Num(1.0))]);
        v.set("b", Json::Str("x".into()));
        v.set("a", Json::Num(2.0));
        assert_eq!(v.get("a").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
