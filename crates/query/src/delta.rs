//! Delta listing: exactly the cliques created and destroyed by an edge
//! churn batch, computed from the two snapshots it connects.
//!
//! The semantics rest on one observation: every edge of a clique of the
//! *new* graph is either an edge that survived from the old graph or one the
//! batch inserted. A clique that exists in the new graph but not the old must
//! therefore contain at least one inserted edge — so the created set is the
//! union, over the inserted edges, of the new graph's cliques containing that
//! edge. Symmetrically, the destroyed set is the union over the deleted edges
//! of the *old* graph's cliques containing them. Both unions are tiny
//! compared to the full listings: the work scales with the churn, not with
//! the graph.
//!
//! [`delta_cliques`] diffs the two snapshots' sorted edge streams directly
//! (it never trusts a caller-supplied batch), fans the per-edge enumerations
//! out through `graphcore::ordered_merge` under the `parallel` feature, and
//! canonicalises the result — sorted, duplicate-free, exactly-once — so the
//! delta is byte-identical at any thread grant. The churn differential
//! battery (`tests/churn_differential.rs`) pins `delta == set difference of
//! the full listings` across workloads, clique sizes and thread grants.

use crate::service::resolve_threads;
use crate::snapshot::GraphSnapshot;
use cliquelist::Parallelism;
use graphcore::Clique;
use std::fmt;

/// Why [`delta_cliques`] refused to diff two snapshots.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// The snapshots have different vertex counts: they cannot be two states
    /// of one churned graph (edge batches never change the vertex set), so a
    /// per-edge delta is not defined between them.
    VertexCountMismatch {
        /// Vertex count of the `old` snapshot.
        old_n: usize,
        /// Vertex count of the `new` snapshot.
        new_n: usize,
    },
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::VertexCountMismatch { old_n, new_n } => write!(
                f,
                "snapshots disagree on the vertex set ({old_n} vs {new_n} vertices)"
            ),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The exact clique-level effect of an edge churn batch: every `p`-clique
/// that exists after but not before (`created`) and before but not after
/// (`destroyed`). Both lists are canonical — each clique sorted internally,
/// the lists sorted lexicographically, no duplicates — and the two sets are
/// provably disjoint (a created clique contains an edge the old graph did
/// not have).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CliqueDelta {
    /// The clique size the delta was computed for.
    pub p: usize,
    /// Cliques of the new snapshot absent from the old one.
    pub created: Vec<Clique>,
    /// Cliques of the old snapshot absent from the new one.
    pub destroyed: Vec<Clique>,
}

impl CliqueDelta {
    /// Whether the batch changed no `p`-clique at all.
    pub fn is_empty(&self) -> bool {
        self.created.is_empty() && self.destroyed.is_empty()
    }

    /// Total number of affected cliques.
    pub fn len(&self) -> usize {
        self.created.len() + self.destroyed.len()
    }
}

/// A sorted list of canonical (`u < v`) edges.
type EdgeList = Vec<(u32, u32)>;

/// Diffs the sorted edge streams of two graphs: returns
/// `(in new only, in old only)`, both sorted with `u < v`.
fn edge_diff(old: &graphcore::Graph, new: &graphcore::Graph) -> (EdgeList, EdgeList) {
    let mut inserted = Vec::new();
    let mut deleted = Vec::new();
    let mut old_edges = old.edges().peekable();
    let mut new_edges = new.edges().peekable();
    loop {
        match (old_edges.peek(), new_edges.peek()) {
            (Some(&a), Some(&b)) => match a.cmp(&b) {
                std::cmp::Ordering::Less => {
                    deleted.push(a);
                    old_edges.next();
                }
                std::cmp::Ordering::Greater => {
                    inserted.push(b);
                    new_edges.next();
                }
                std::cmp::Ordering::Equal => {
                    old_edges.next();
                    new_edges.next();
                }
            },
            (Some(&a), None) => {
                deleted.push(a);
                old_edges.next();
            }
            (None, Some(&b)) => {
                inserted.push(b);
                new_edges.next();
            }
            (None, None) => break,
        }
    }
    (inserted, deleted)
}

/// All `p`-cliques of `snapshot` containing the edge `{u, v}`, in the
/// enumerator's deterministic order.
fn cliques_on_edge(snapshot: &GraphSnapshot, p: usize, (u, v): (u32, u32)) -> Vec<Clique> {
    let mut out = Vec::new();
    snapshot
        .index()
        .for_each_containing_edge_while(snapshot.graph(), p, u, v, |c| {
            out.push(c.to_vec());
            true
        });
    out
}

/// Computes the [`CliqueDelta`] between two snapshots of one churned graph.
///
/// The edge difference is taken from the snapshots themselves (a linear merge
/// of their sorted edge streams), so the result is correct even when the
/// caller's batch contained ineffective changes — and `delta_cliques(s, s, p,
/// ..)` is always empty. Work is proportional to the churn: one per-edge
/// containment enumeration per changed edge, fanned out over scoped workers
/// when the `parallel` feature is on. The output is canonical and identical
/// at every thread grant (`&self`-concurrent: both snapshots are only read).
///
/// `p < 2` deltas are empty by definition (vertices never churn); `p == 2`
/// deltas are the edge difference itself.
///
/// # Errors
///
/// [`DeltaError::VertexCountMismatch`] when the snapshots' vertex counts
/// differ.
pub fn delta_cliques(
    old: &GraphSnapshot,
    new: &GraphSnapshot,
    p: usize,
    parallelism: Parallelism,
) -> Result<CliqueDelta, DeltaError> {
    let (old_n, new_n) = (old.graph().num_vertices(), new.graph().num_vertices());
    if old_n != new_n {
        return Err(DeltaError::VertexCountMismatch { old_n, new_n });
    }
    if p < 2 {
        return Ok(CliqueDelta {
            p,
            ..CliqueDelta::default()
        });
    }
    let (inserted, deleted) = edge_diff(old.graph(), new.graph());
    if p == 2 {
        return Ok(CliqueDelta {
            p,
            created: inserted.iter().map(|&(u, v)| vec![u, v]).collect(),
            destroyed: deleted.iter().map(|&(u, v)| vec![u, v]).collect(),
        });
    }
    let num_items = inserted.len() + deleted.len();
    // Item i enumerates against the snapshot that owns the edge: inserted
    // edges exist only in `new`, deleted ones only in `old`.
    let produce = |i: usize| {
        if i < inserted.len() {
            cliques_on_edge(new, p, inserted[i])
        } else {
            cliques_on_edge(old, p, deleted[i - inserted.len()])
        }
    };
    let mut created: Vec<Clique> = Vec::new();
    let mut destroyed: Vec<Clique> = Vec::new();
    let mut consumed = 0usize;
    let mut consume = |cliques: Vec<Clique>| {
        let bucket = if consumed < inserted.len() {
            &mut created
        } else {
            &mut destroyed
        };
        bucket.extend(cliques);
        consumed += 1;
    };
    let threads = resolve_threads(parallelism).min(num_items.max(1));
    #[cfg(feature = "parallel")]
    let fanned_out = threads > 1 && {
        graphcore::ordered_merge::ordered_merge(num_items, threads, produce, |cliques| {
            consume(cliques);
            true
        });
        true
    };
    #[cfg(not(feature = "parallel"))]
    let fanned_out = {
        let _ = threads;
        false
    };
    // Sequential path (and the only path without the `parallel` feature).
    if !fanned_out {
        for i in 0..num_items {
            consume(produce(i));
        }
    }
    // A clique containing several changed edges was enumerated once per
    // edge: canonicalise to exactly-once. The per-edge streams are already
    // internally sorted, but the concatenation across edges is not.
    created.sort_unstable();
    created.dedup();
    destroyed.sort_unstable();
    destroyed.dedup();
    Ok(CliqueDelta {
        p,
        created,
        destroyed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::{cliques, gen, EdgeBatch, Graph};

    /// Reference implementation: the set difference of the full listings.
    fn reference_delta(old: &Graph, new: &Graph, p: usize) -> (Vec<Clique>, Vec<Clique>) {
        let before = cliques::list_cliques(old, p);
        let after = cliques::list_cliques(new, p);
        let created = after
            .iter()
            .filter(|c| !before.contains(c))
            .cloned()
            .collect();
        let destroyed = before
            .iter()
            .filter(|c| !after.contains(c))
            .cloned()
            .collect();
        (created, destroyed)
    }

    #[test]
    fn delta_matches_full_listing_set_difference() {
        for seed in 0..3u64 {
            let g = gen::erdos_renyi(45, 0.25, seed);
            let old = GraphSnapshot::build(g.clone());
            let deletes: Vec<(u32, u32)> = g.edges().step_by(11).take(5).collect();
            let inserts: Vec<(u32, u32)> = gen::erdos_renyi(45, 0.05, seed + 7)
                .edges()
                .filter(|&(u, v)| !g.has_edge(u, v))
                .take(5)
                .collect();
            let batch = EdgeBatch::new(&inserts, &deletes).unwrap();
            let (new, _) = old.apply_batch(&batch).unwrap();
            for p in [3, 4] {
                let delta = delta_cliques(&old, &new, p, Parallelism::Off).unwrap();
                let (created, destroyed) = reference_delta(old.graph(), new.graph(), p);
                assert_eq!(delta.created, created, "seed {seed} p {p}");
                assert_eq!(delta.destroyed, destroyed, "seed {seed} p {p}");
                assert_eq!(delta.len(), created.len() + destroyed.len());
            }
        }
    }

    #[test]
    fn small_p_and_identity_edge_cases() {
        let g = gen::erdos_renyi(20, 0.3, 1);
        let old = GraphSnapshot::build(g.clone());
        // Identical snapshots: empty delta at any p.
        for p in [0, 1, 2, 3] {
            let delta = delta_cliques(&old, &old, p, Parallelism::Off).unwrap();
            assert!(delta.is_empty(), "p {p}");
            assert_eq!(delta.p, p);
        }
        // p == 2: the delta is the edge diff itself.
        let batch = EdgeBatch::new(&[], &[g.edges().next().unwrap()]).unwrap();
        let (new, _) = old.apply_batch(&batch).unwrap();
        let delta = delta_cliques(&old, &new, 2, Parallelism::Off).unwrap();
        let (u, v) = g.edges().next().unwrap();
        assert!(delta.created.is_empty());
        assert_eq!(delta.destroyed, vec![vec![u, v]]);
    }

    #[test]
    fn vertex_count_mismatch_is_rejected() {
        let a = GraphSnapshot::build(gen::path_graph(4));
        let b = GraphSnapshot::build(gen::path_graph(5));
        let err = delta_cliques(&a, &b, 3, Parallelism::Off).unwrap_err();
        assert_eq!(err, DeltaError::VertexCountMismatch { old_n: 4, new_n: 5 });
        assert!(format!("{err}").contains("vertex set"));
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn delta_is_identical_at_any_thread_grant() {
        let g = gen::erdos_renyi(50, 0.25, 9);
        let old = GraphSnapshot::build(g.clone());
        let deletes: Vec<(u32, u32)> = g.edges().step_by(5).take(12).collect();
        let inserts: Vec<(u32, u32)> = gen::erdos_renyi(50, 0.08, 21)
            .edges()
            .filter(|&(u, v)| !g.has_edge(u, v))
            .take(12)
            .collect();
        let (new, _) = old
            .apply_batch(&EdgeBatch::new(&inserts, &deletes).unwrap())
            .unwrap();
        let baseline = delta_cliques(&old, &new, 4, Parallelism::Off).unwrap();
        for threads in [1, 2, 8] {
            let delta = delta_cliques(&old, &new, 4, Parallelism::Threads(threads)).unwrap();
            assert_eq!(delta, baseline, "threads {threads}");
        }
    }
}
