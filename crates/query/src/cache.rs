//! The in-memory content-addressed result cache of a
//! [`QueryService`](crate::QueryService).
//!
//! Cache keys are FNV-1a hashes of the canonical `(snapshot id, query)`
//! identity string — the same canonical-identity idiom the bench harness uses
//! for its on-disk result store (`bench::store::CellSpec::key`), kept
//! dependency-free here because `bench` sits *above* this crate in the
//! dependency order. A hit is only served when the stored identity string
//! matches exactly, so a 64-bit key collision degrades to a miss-and-replace,
//! never to a wrong answer. Hit/miss counters are atomics, so concurrent
//! batch workers update them without taking the map lock twice.

use crate::service::QueryOutcome;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Incremental 64-bit FNV-1a hasher over byte streams.
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV offset basis.
    pub(crate) fn new() -> Fnv1a {
        Fnv1a(FNV_OFFSET)
    }

    /// Folds `bytes` into the hash.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Folds a `u32` (little-endian bytes) into the hash.
    pub(crate) fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }

    /// Folds a `u64` (little-endian bytes) into the hash.
    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The hash of everything written so far.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Hashes one byte slice with 64-bit FNV-1a.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

/// One cached result: the full identity string (collision guard) plus the
/// outcome to replay.
struct CacheEntry {
    identity: String,
    outcome: QueryOutcome,
}

/// The service-owned result cache: a keyed map behind a [`Mutex`] (held only
/// for lookups and inserts, never while enumerating) plus lock-free hit/miss
/// counters.
pub(crate) struct QueryCache {
    entries: Mutex<HashMap<u64, CacheEntry>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl QueryCache {
    /// An empty cache.
    pub(crate) fn new() -> QueryCache {
        QueryCache {
            entries: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached outcome for `key` when its stored identity matches
    /// `identity` exactly, counting a hit; otherwise counts a miss.
    pub(crate) fn lookup(&self, key: u64, identity: &str) -> Option<QueryOutcome> {
        let entries = self.entries.lock().expect("query cache lock poisoned");
        match entries.get(&key) {
            Some(entry) if entry.identity == identity => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.outcome.clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores `outcome` under `key`. An existing entry is replaced: either it
    /// carries the same identity (a concurrent duplicate computed the same
    /// deterministic outcome) or it was a 64-bit collision, which the
    /// identity guard in [`QueryCache::lookup`] already demoted to a miss.
    pub(crate) fn insert(&self, key: u64, identity: String, outcome: QueryOutcome) {
        let mut entries = self.entries.lock().expect("query cache lock poisoned");
        entries.insert(key, CacheEntry { identity, outcome });
    }

    /// Point-in-time counters and entry count.
    pub(crate) fn stats(&self) -> CacheStats {
        let entries = self.entries.lock().expect("query cache lock poisoned");
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: entries.len(),
        }
    }

    /// Drops every entry and zeroes the counters.
    pub(crate) fn clear(&self) {
        let mut entries = self.entries.lock().expect("query cache lock poisoned");
        entries.clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time view of a service's cache counters, returned by
/// [`QueryService::cache_stats`](crate::QueryService::cache_stats).
///
/// `hits + misses` equals the number of cache probes so far (one per executed
/// query); `entries` is the number of distinct results currently stored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Probes answered from the cache (the enumeration was short-circuited).
    pub hits: u64,
    /// Probes that fell through to a fresh enumeration.
    pub misses: u64,
    /// Distinct results currently stored.
    pub entries: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_the_reference_vectors() {
        // Classic FNV-1a test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn incremental_writes_match_one_shot_hashing() {
        let mut h = Fnv1a::new();
        h.write_u32(7);
        h.write_u64(11);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&11u64.to_le_bytes());
        assert_eq!(h.finish(), fnv1a(&bytes));
    }

    #[test]
    fn lookup_guards_against_key_collisions() {
        let cache = QueryCache::new();
        cache.insert(42, "a".to_string(), QueryOutcome::Count(1));
        assert_eq!(cache.lookup(42, "a"), Some(QueryOutcome::Count(1)));
        // Same key, different identity: a collision must read as a miss.
        assert_eq!(cache.lookup(42, "b"), None);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }
}
