//! Immutable, shareable graph snapshots: the build-once half of the
//! build-once/query-many split.
//!
//! A [`GraphSnapshot`] owns the graph (CSR form) together with every artifact
//! the ordered clique search needs — the degeneracy ordering, the oriented
//! DAG and the adjacency bitsets, bundled as a
//! [`CliqueIndex`] — plus one balanced
//! [`ShardPlan`] per prepared clique size. Everything is built exactly once
//! by [`SnapshotBuilder::build`] and never mutated afterwards, so a snapshot
//! behind an [`Arc`] serves any number of concurrent queries through `&self`.
//!
//! Snapshots are content-addressed: [`GraphSnapshot::id`] is the FNV-1a hash
//! of the graph's vertex count and edge list, so two snapshots of identical
//! graphs share cached results and any structural change produces a fresh
//! identity (see `DESIGN.md` §11).

use crate::cache::Fnv1a;
use graphcore::cliques::{CliqueIndex, ShardPlan};
use graphcore::Graph;
use std::fmt;
use std::sync::Arc;

/// Clique sizes a snapshot prepares shard plans for when the builder names
/// none explicitly.
pub const DEFAULT_PREPARED_PS: &[usize] = &[3, 4, 5];

/// Default number of shards planned per prepared clique size. A fixed target
/// (rather than one derived from the thread count) keeps the plans — and
/// everything downstream of them — independent of the host's parallelism.
pub const DEFAULT_TARGET_SHARDS: usize = 64;

/// Why a [`SnapshotBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A prepared clique size was below 3; the `p ≤ 2` queries are trivial
    /// scans that need no shard plan, so preparing them is a misuse.
    CliqueSizeTooSmall {
        /// The offending clique size.
        p: usize,
    },
    /// The shard target was zero.
    ZeroShards,
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::CliqueSizeTooSmall { p } => {
                write!(f, "prepared clique size must be at least 3, got {p}")
            }
            SnapshotError::ZeroShards => write!(f, "shard target must be at least 1"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Validating builder for [`GraphSnapshot`] — misconfiguration surfaces as a
/// typed [`SnapshotError`] before any index work happens.
#[derive(Debug)]
pub struct SnapshotBuilder {
    graph: Graph,
    ps: Vec<usize>,
    target_shards: usize,
}

impl SnapshotBuilder {
    /// Declares a clique size the snapshot will serve. Repeated declarations
    /// are deduplicated; when none are made, [`DEFAULT_PREPARED_PS`] applies.
    #[must_use]
    pub fn prepare_p(mut self, p: usize) -> Self {
        self.ps.push(p);
        self
    }

    /// Overrides the per-`p` shard target (default
    /// [`DEFAULT_TARGET_SHARDS`]).
    #[must_use]
    pub fn target_shards(mut self, target_shards: usize) -> Self {
        self.target_shards = target_shards;
        self
    }

    /// Builds the snapshot: validates the configuration, then constructs the
    /// clique index and one shard plan per prepared size.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when a prepared size is below 3 or the
    /// shard target is zero.
    pub fn build(self) -> Result<GraphSnapshot, SnapshotError> {
        if self.target_shards == 0 {
            return Err(SnapshotError::ZeroShards);
        }
        let mut ps = self.ps;
        if let Some(&p) = ps.iter().find(|&&p| p < 3) {
            return Err(SnapshotError::CliqueSizeTooSmall { p });
        }
        if ps.is_empty() {
            ps.extend_from_slice(DEFAULT_PREPARED_PS);
        }
        ps.sort_unstable();
        ps.dedup();
        let id = content_id(&self.graph);
        let index = CliqueIndex::build(&self.graph);
        let plans = ps
            .iter()
            .map(|&p| {
                (
                    p,
                    ShardPlan::balanced(index.dag(), index.ordering(), p, self.target_shards),
                )
            })
            .collect();
        Ok(GraphSnapshot {
            graph: self.graph,
            index,
            plans,
            id,
        })
    }
}

/// An immutable graph plus every build-once artifact of the ordered clique
/// search, shareable across threads behind an [`Arc`].
///
/// All state is read-only after [`SnapshotBuilder::build`]; queries against
/// the snapshot (see [`QueryService`](crate::QueryService)) allocate their
/// own scratch per call, so `&self` access is safely concurrent.
pub struct GraphSnapshot {
    graph: Graph,
    index: CliqueIndex,
    /// `(p, plan)` pairs, ascending in `p`.
    plans: Vec<(usize, ShardPlan)>,
    id: u64,
}

impl GraphSnapshot {
    /// Starts a validating builder over `graph` (consumed: the snapshot owns
    /// its graph so the pair can live behind one `Arc`).
    pub fn builder(graph: Graph) -> SnapshotBuilder {
        SnapshotBuilder {
            graph,
            ps: Vec::new(),
            target_shards: DEFAULT_TARGET_SHARDS,
        }
    }

    /// Builds a snapshot with the default configuration
    /// ([`DEFAULT_PREPARED_PS`], [`DEFAULT_TARGET_SHARDS`]), which cannot
    /// fail validation.
    pub fn build(graph: Graph) -> GraphSnapshot {
        GraphSnapshot::builder(graph)
            .build()
            .expect("default snapshot configuration is valid")
    }

    /// Wraps the snapshot for sharing across threads and services.
    pub fn into_shared(self) -> Arc<GraphSnapshot> {
        Arc::new(self)
    }

    /// The content identity: FNV-1a over the vertex count and the sorted edge
    /// list. Equal for structurally identical graphs, different after any
    /// edge/vertex change — the first half of every cache key.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshotted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared clique index (ordering + DAG + bitsets).
    pub fn index(&self) -> &CliqueIndex {
        &self.index
    }

    /// The clique sizes this snapshot prepared shard plans for, ascending.
    pub fn prepared_ps(&self) -> Vec<usize> {
        self.plans.iter().map(|&(p, _)| p).collect()
    }

    /// Whether queries for clique size `p` can be built against this
    /// snapshot.
    pub fn is_prepared(&self, p: usize) -> bool {
        self.plan_for(p).is_some()
    }

    /// The prebuilt shard plan for `p`, if prepared.
    pub(crate) fn plan_for(&self, p: usize) -> Option<&ShardPlan> {
        self.plans
            .iter()
            .find(|&&(prepared, _)| prepared == p)
            .map(|(_, plan)| plan)
    }
}

impl fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("id", &format_args!("{:016x}", self.id))
            .field("num_vertices", &self.graph.num_vertices())
            .field("num_edges", &self.graph.num_edges())
            .field("prepared_ps", &self.prepared_ps())
            .finish_non_exhaustive()
    }
}

/// The content identity of a graph: vertex count, edge count, then every
/// edge in the (deterministic, sorted) CSR traversal order.
fn content_id(graph: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for (u, v) in graph.edges() {
        h.write_u32(u);
        h.write_u32(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    #[test]
    fn builder_validates_sizes_and_shards() {
        let err = GraphSnapshot::builder(gen::path_graph(4))
            .prepare_p(2)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::CliqueSizeTooSmall { p: 2 });
        let err = GraphSnapshot::builder(gen::path_graph(4))
            .target_shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::ZeroShards);
        assert!(format!("{err}").contains("shard target"));
    }

    #[test]
    fn prepared_sizes_default_sort_and_dedup() {
        let snapshot = GraphSnapshot::build(gen::path_graph(4));
        assert_eq!(snapshot.prepared_ps(), DEFAULT_PREPARED_PS);
        let snapshot = GraphSnapshot::builder(gen::path_graph(4))
            .prepare_p(5)
            .prepare_p(3)
            .prepare_p(5)
            .build()
            .expect("valid");
        assert_eq!(snapshot.prepared_ps(), vec![3, 5]);
        assert!(snapshot.is_prepared(3));
        assert!(!snapshot.is_prepared(4));
    }

    #[test]
    fn content_id_tracks_graph_structure() {
        let a = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 7));
        let same = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 7));
        let reseeded = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 8));
        assert_eq!(a.id(), same.id(), "identical graphs share an identity");
        assert_ne!(a.id(), reseeded.id(), "different edges, different identity");
        // Adding one edge changes the identity.
        let path = GraphSnapshot::build(gen::path_graph(4));
        let grown = gen::path_graph(4)
            .with_edges_added(&[(0, 3)])
            .expect("edge fits");
        assert_ne!(path.id(), GraphSnapshot::build(grown).id());
    }
}
