//! Immutable, shareable graph snapshots: the build-once half of the
//! build-once/query-many split.
//!
//! A [`GraphSnapshot`] owns the graph (CSR form) together with every artifact
//! the ordered clique search needs — the degeneracy ordering, the oriented
//! DAG and the adjacency bitsets, bundled as a
//! [`CliqueIndex`] — plus one balanced
//! [`ShardPlan`] per prepared clique size. Everything is built exactly once
//! by [`SnapshotBuilder::build`] and never mutated afterwards, so a snapshot
//! behind an [`Arc`] serves any number of concurrent queries through `&self`.
//!
//! Snapshots are content-addressed: [`GraphSnapshot::id`] is the FNV-1a hash
//! of the graph's vertex count and edge list, so two snapshots of identical
//! graphs share cached results and any structural change produces a fresh
//! identity (see `DESIGN.md` §11).

use crate::cache::Fnv1a;
use graphcore::cliques::{CliqueIndex, ShardPlan};
use graphcore::{BatchError, EdgeBatch, Graph, KernelChoice, KernelStrategy};
use std::fmt;
use std::sync::Arc;

/// Clique sizes a snapshot prepares shard plans for when the builder names
/// none explicitly.
pub const DEFAULT_PREPARED_PS: &[usize] = &[3, 4, 5];

/// Default number of shards planned per prepared clique size. A fixed target
/// (rather than one derived from the thread count) keeps the plans — and
/// everything downstream of them — independent of the host's parallelism.
pub const DEFAULT_TARGET_SHARDS: usize = 64;

/// Churn fraction (parts per million of the old edge count) at or above
/// which [`GraphSnapshot::apply_batch`] abandons the incremental index patch
/// and rebuilds from scratch. At 25% churn the per-row merges and bitset
/// copies save little over a cold build, and the cold build has better
/// constants; below it the incremental path wins. Either strategy produces a
/// byte-identical snapshot — the threshold is purely a performance choice,
/// which is why it can be a fixed integer rather than a tunable.
pub const REBUILD_CHURN_PPM: u64 = 250_000;

/// Why a [`SnapshotBuilder`] refused to build.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// A prepared clique size was below 3; the `p ≤ 2` queries are trivial
    /// scans that need no shard plan, so preparing them is a misuse.
    CliqueSizeTooSmall {
        /// The offending clique size.
        p: usize,
    },
    /// The shard target was zero.
    ZeroShards,
    /// An [`EdgeBatch`] could not be applied to the snapshot's graph (an
    /// endpoint out of range — the batch-construction errors are caught
    /// earlier, by [`EdgeBatch::new`] itself).
    Batch(BatchError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::CliqueSizeTooSmall { p } => {
                write!(f, "prepared clique size must be at least 3, got {p}")
            }
            SnapshotError::ZeroShards => write!(f, "shard target must be at least 1"),
            SnapshotError::Batch(err) => write!(f, "edge batch rejected: {err}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<BatchError> for SnapshotError {
    fn from(err: BatchError) -> SnapshotError {
        SnapshotError::Batch(err)
    }
}

/// How [`GraphSnapshot::apply_batch`] produced the new snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChurnStrategy {
    /// The batch changed nothing effective: the new snapshot is a clone with
    /// the *same* content identity, so every cached result stays valid.
    Noop,
    /// Below [`REBUILD_CHURN_PPM`]: CSR rows merged in place, untouched
    /// bitset rows copied verbatim, ordering and DAG recomputed.
    Incremental,
    /// At or above [`REBUILD_CHURN_PPM`]: full from-scratch index build.
    Rebuild,
}

impl ChurnStrategy {
    /// Stable lower-case name (used in bench metrics and logs).
    pub fn as_str(self) -> &'static str {
        match self {
            ChurnStrategy::Noop => "noop",
            ChurnStrategy::Incremental => "incremental",
            ChurnStrategy::Rebuild => "rebuild",
        }
    }
}

impl fmt::Display for ChurnStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one [`GraphSnapshot::apply_batch`] call did: the strategy chosen,
/// the *effective* churn (requested inserts already present and deletes
/// already absent are excluded), and how much of the index was reused.
///
/// Every field is a deterministic function of (old graph, batch), so the
/// report is itself gated byte-exactly by the bench trajectory check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnReport {
    /// How the new snapshot was produced.
    pub strategy: ChurnStrategy,
    /// Effectively inserted edges (`u < v`, sorted).
    pub inserted: Vec<(u32, u32)>,
    /// Effectively deleted edges (`u < v`, sorted).
    pub deleted: Vec<(u32, u32)>,
    /// Effective churn in parts per million of the old edge count:
    /// `(inserted + deleted) · 10⁶ / max(old m, 1)`.
    pub churn_ppm: u64,
    /// Adjacency bitset rows copied verbatim from the old index
    /// (incremental strategy only; zero otherwise).
    pub bitset_rows_reused: usize,
    /// Adjacency bitset rows rebuilt from the mutated CSR (incremental
    /// strategy only; zero otherwise).
    pub bitset_rows_rebuilt: usize,
}

impl ChurnReport {
    /// Total number of effective edge changes.
    pub fn num_changes(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }
}

/// Validating builder for [`GraphSnapshot`] — misconfiguration surfaces as a
/// typed [`SnapshotError`] before any index work happens.
#[derive(Debug)]
pub struct SnapshotBuilder {
    graph: Graph,
    ps: Vec<usize>,
    target_shards: usize,
    kernel: KernelStrategy,
}

impl SnapshotBuilder {
    /// Declares a clique size the snapshot will serve. Repeated declarations
    /// are deduplicated; when none are made, [`DEFAULT_PREPARED_PS`] applies.
    #[must_use]
    pub fn prepare_p(mut self, p: usize) -> Self {
        self.ps.push(p);
        self
    }

    /// Overrides the per-`p` shard target (default
    /// [`DEFAULT_TARGET_SHARDS`]).
    #[must_use]
    pub fn target_shards(mut self, target_shards: usize) -> Self {
        self.target_shards = target_shards;
        self
    }

    /// Selects the enumeration kernel every query against the snapshot runs
    /// with (default [`KernelStrategy::Auto`], which resolves once per
    /// snapshot by the built index's degeneracy). Like the shard target, the
    /// knob is a pure performance choice: both kernels emit byte-identical
    /// listings, so cached results — keyed by content identity — stay valid
    /// across kernel settings.
    #[must_use]
    pub fn kernel(mut self, kernel: KernelStrategy) -> Self {
        self.kernel = kernel;
        self
    }

    /// Builds the snapshot: validates the configuration, then constructs the
    /// clique index and one shard plan per prepared size.
    ///
    /// # Errors
    ///
    /// Returns a [`SnapshotError`] when a prepared size is below 3 or the
    /// shard target is zero.
    pub fn build(self) -> Result<GraphSnapshot, SnapshotError> {
        if self.target_shards == 0 {
            return Err(SnapshotError::ZeroShards);
        }
        let mut ps = self.ps;
        if let Some(&p) = ps.iter().find(|&&p| p < 3) {
            return Err(SnapshotError::CliqueSizeTooSmall { p });
        }
        if ps.is_empty() {
            ps.extend_from_slice(DEFAULT_PREPARED_PS);
        }
        ps.sort_unstable();
        ps.dedup();
        let id = content_id(&self.graph);
        let index = CliqueIndex::build(&self.graph);
        let plans = ps
            .iter()
            .map(|&p| {
                (
                    p,
                    ShardPlan::balanced(index.dag(), index.ordering(), p, self.target_shards),
                )
            })
            .collect();
        Ok(GraphSnapshot {
            graph: self.graph,
            index,
            plans,
            id,
            target_shards: self.target_shards,
            kernel: self.kernel,
        })
    }
}

/// An immutable graph plus every build-once artifact of the ordered clique
/// search, shareable across threads behind an [`Arc`].
///
/// All state is read-only after [`SnapshotBuilder::build`]; queries against
/// the snapshot (see [`QueryService`](crate::QueryService)) allocate their
/// own scratch per call, so `&self` access is safely concurrent. Mutation is
/// modelled as derivation: [`GraphSnapshot::apply_batch`] leaves `self`
/// untouched and returns a *new* snapshot with a new content identity.
///
/// `PartialEq` compares the full built state — graph bytes, index, plans,
/// identity, shard target — so `incremental == from-scratch` assertions in
/// the churn battery mean structural byte-identity, not just equal ids.
#[derive(Clone, PartialEq, Eq)]
pub struct GraphSnapshot {
    graph: Graph,
    index: CliqueIndex,
    /// `(p, plan)` pairs, ascending in `p`.
    plans: Vec<(usize, ShardPlan)>,
    id: u64,
    /// Remembered so derived snapshots ([`GraphSnapshot::apply_batch`]) plan
    /// their shards with the same target as the original build.
    target_shards: usize,
    /// The kernel strategy queries run with; propagated to derived snapshots
    /// like the shard target. Deliberately **not** part of the content
    /// identity: both kernels emit byte-identical listings, so cached
    /// results transfer across kernel settings.
    kernel: KernelStrategy,
}

impl GraphSnapshot {
    /// Starts a validating builder over `graph` (consumed: the snapshot owns
    /// its graph so the pair can live behind one `Arc`).
    ///
    /// # Duplicate edges: the dedup contract
    ///
    /// The builder consumes a [`Graph`], and `Graph::from_edges` already
    /// canonicalises its input — duplicate edges (in either orientation) are
    /// merged during CSR construction, so a duplicate can never reach the
    /// builder, there is no `SnapshotError::DuplicateEdge`, and two edge
    /// lists describing the same simple graph always produce the **same
    /// content identity**. This is deliberate: the snapshot id must be a
    /// function of the graph, not of how its edge list was spelled. (The
    /// churn layer makes the same choice: `EdgeBatch` dedups at
    /// construction.) Pinned by `duplicate_edges_collapse_to_one_identity`.
    pub fn builder(graph: Graph) -> SnapshotBuilder {
        SnapshotBuilder {
            graph,
            ps: Vec::new(),
            target_shards: DEFAULT_TARGET_SHARDS,
            kernel: KernelStrategy::Auto,
        }
    }

    /// Builds a snapshot with the default configuration
    /// ([`DEFAULT_PREPARED_PS`], [`DEFAULT_TARGET_SHARDS`]), which cannot
    /// fail validation.
    pub fn build(graph: Graph) -> GraphSnapshot {
        GraphSnapshot::builder(graph)
            .build()
            .expect("default snapshot configuration is valid")
    }

    /// Wraps the snapshot for sharing across threads and services.
    pub fn into_shared(self) -> Arc<GraphSnapshot> {
        Arc::new(self)
    }

    /// The content identity: FNV-1a over the vertex count and the sorted edge
    /// list. Equal for structurally identical graphs, different after any
    /// edge/vertex change — the first half of every cache key.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The snapshotted graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The shared clique index (ordering + DAG + bitsets).
    pub fn index(&self) -> &CliqueIndex {
        &self.index
    }

    /// The kernel strategy queries against this snapshot run with.
    pub fn kernel(&self) -> KernelStrategy {
        self.kernel
    }

    /// What the snapshot's strategy resolves to on its own index — a pure
    /// function of (strategy, degeneracy) plus the trie node budget.
    pub fn resolved_kernel(&self) -> KernelChoice {
        self.index.resolve_kernel(self.kernel)
    }

    /// The clique sizes this snapshot prepared shard plans for, ascending.
    pub fn prepared_ps(&self) -> Vec<usize> {
        self.plans.iter().map(|&(p, _)| p).collect()
    }

    /// Whether queries for clique size `p` can be built against this
    /// snapshot.
    pub fn is_prepared(&self, p: usize) -> bool {
        self.plan_for(p).is_some()
    }

    /// The prebuilt shard plan for `p`, if prepared.
    pub(crate) fn plan_for(&self, p: usize) -> Option<&ShardPlan> {
        self.plans
            .iter()
            .find(|&&(prepared, _)| prepared == p)
            .map(|(_, plan)| plan)
    }

    /// Applies an edge churn batch, deriving a **new** snapshot (same
    /// prepared sizes and shard target) and a [`ChurnReport`] describing what
    /// happened. `self` is untouched — existing queries and caches against it
    /// remain valid.
    ///
    /// Strategy selection is by effective churn fraction: a batch that
    /// changes nothing returns a clone with the *same* content identity
    /// ([`ChurnStrategy::Noop`] — the cache-reuse guarantee); below
    /// [`REBUILD_CHURN_PPM`] the CSR and bitset table are patched
    /// incrementally ([`ChurnStrategy::Incremental`]); at or above it the
    /// index is rebuilt cold ([`ChurnStrategy::Rebuild`]). All three produce
    /// byte-identical results — the churn differential battery holds every
    /// strategy to `SnapshotBuilder::build` over the mutated edge list.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Batch`] when a batch endpoint is out of range for the
    /// snapshot's vertex set.
    pub fn apply_batch(
        &self,
        batch: &EdgeBatch,
    ) -> Result<(GraphSnapshot, ChurnReport), SnapshotError> {
        let (graph, applied) = self.graph.apply_edge_batch(batch)?;
        let old_m = self.graph.num_edges();
        let churn_ppm = (applied.len() as u64) * 1_000_000 / (old_m as u64).max(1);
        if applied.is_noop() {
            return Ok((
                self.clone(),
                ChurnReport {
                    strategy: ChurnStrategy::Noop,
                    inserted: applied.inserted,
                    deleted: applied.deleted,
                    churn_ppm,
                    bitset_rows_reused: 0,
                    bitset_rows_rebuilt: 0,
                },
            ));
        }
        let (strategy, index, reused, rebuilt) = if churn_ppm >= REBUILD_CHURN_PPM {
            (ChurnStrategy::Rebuild, CliqueIndex::build(&graph), 0, 0)
        } else {
            let mut touched = vec![false; graph.num_vertices()];
            for &(u, v) in applied.inserted.iter().chain(&applied.deleted) {
                touched[u as usize] = true;
                touched[v as usize] = true;
            }
            let (index, stats) = CliqueIndex::build_incremental(&graph, &self.index, &touched);
            (
                ChurnStrategy::Incremental,
                index,
                stats.bitset_rows_reused,
                stats.bitset_rows_rebuilt,
            )
        };
        let id = content_id(&graph);
        let plans = self
            .plans
            .iter()
            .map(|&(p, _)| {
                (
                    p,
                    ShardPlan::balanced(index.dag(), index.ordering(), p, self.target_shards),
                )
            })
            .collect();
        let snapshot = GraphSnapshot {
            graph,
            index,
            plans,
            id,
            target_shards: self.target_shards,
            kernel: self.kernel,
        };
        let report = ChurnReport {
            strategy,
            inserted: applied.inserted,
            deleted: applied.deleted,
            churn_ppm,
            bitset_rows_reused: reused,
            bitset_rows_rebuilt: rebuilt,
        };
        Ok((snapshot, report))
    }
}

impl fmt::Debug for GraphSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GraphSnapshot")
            .field("id", &format_args!("{:016x}", self.id))
            .field("num_vertices", &self.graph.num_vertices())
            .field("num_edges", &self.graph.num_edges())
            .field("prepared_ps", &self.prepared_ps())
            .finish_non_exhaustive()
    }
}

/// The content identity of a graph: vertex count, edge count, then every
/// edge in the (deterministic, sorted) CSR traversal order.
fn content_id(graph: &Graph) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(graph.num_vertices() as u64);
    h.write_u64(graph.num_edges() as u64);
    for (u, v) in graph.edges() {
        h.write_u32(u);
        h.write_u32(v);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    #[test]
    fn builder_validates_sizes_and_shards() {
        let err = GraphSnapshot::builder(gen::path_graph(4))
            .prepare_p(2)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::CliqueSizeTooSmall { p: 2 });
        let err = GraphSnapshot::builder(gen::path_graph(4))
            .target_shards(0)
            .build()
            .unwrap_err();
        assert_eq!(err, SnapshotError::ZeroShards);
        assert!(format!("{err}").contains("shard target"));
    }

    #[test]
    fn prepared_sizes_default_sort_and_dedup() {
        let snapshot = GraphSnapshot::build(gen::path_graph(4));
        assert_eq!(snapshot.prepared_ps(), DEFAULT_PREPARED_PS);
        let snapshot = GraphSnapshot::builder(gen::path_graph(4))
            .prepare_p(5)
            .prepare_p(3)
            .prepare_p(5)
            .build()
            .expect("valid");
        assert_eq!(snapshot.prepared_ps(), vec![3, 5]);
        assert!(snapshot.is_prepared(3));
        assert!(!snapshot.is_prepared(4));
    }

    #[test]
    fn content_id_tracks_graph_structure() {
        let a = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 7));
        let same = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 7));
        let reseeded = GraphSnapshot::build(gen::erdos_renyi(40, 0.2, 8));
        assert_eq!(a.id(), same.id(), "identical graphs share an identity");
        assert_ne!(a.id(), reseeded.id(), "different edges, different identity");
        // Adding one edge changes the identity.
        let path = GraphSnapshot::build(gen::path_graph(4));
        let grown = gen::path_graph(4)
            .with_edges_added(&[(0, 3)])
            .expect("edge fits");
        assert_ne!(path.id(), GraphSnapshot::build(grown).id());
    }

    #[test]
    fn duplicate_edges_collapse_to_one_identity() {
        // The dedup contract (see `GraphSnapshot::builder`): duplicates —
        // repeated or re-oriented — are merged by `Graph::from_edges`, so
        // the snapshot and its identity depend only on the simple graph.
        let clean = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let noisy =
            Graph::from_edges(4, &[(1, 0), (0, 1), (2, 1), (2, 3), (3, 2), (1, 2)]).unwrap();
        assert_eq!(clean, noisy, "CSR form is canonical in the edge set");
        let a = GraphSnapshot::build(clean);
        let b = GraphSnapshot::build(noisy);
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b, "identical snapshots, byte for byte");
        // And the inverse direction: a genuinely different edge set (one
        // extra edge, not a duplicate) must change the identity.
        let extra = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]).unwrap();
        assert_ne!(a.id(), GraphSnapshot::build(extra).id());
    }

    #[test]
    fn apply_batch_matches_a_from_scratch_build() {
        let g = gen::erdos_renyi(50, 0.2, 11);
        let snapshot = GraphSnapshot::builder(g.clone())
            .prepare_p(3)
            .prepare_p(4)
            .target_shards(16)
            .build()
            .unwrap();
        let deletes: Vec<(u32, u32)> = g.edges().step_by(9).take(6).collect();
        let inserts: Vec<(u32, u32)> = gen::erdos_renyi(50, 0.04, 99)
            .edges()
            .filter(|&(u, v)| !g.has_edge(u, v))
            .take(6)
            .collect();
        let batch = EdgeBatch::new(&inserts, &deletes).unwrap();
        let (next, report) = snapshot.apply_batch(&batch).unwrap();
        assert_eq!(report.strategy, ChurnStrategy::Incremental);
        assert_eq!(report.inserted, inserts);
        assert_eq!(report.deleted, deletes);
        assert_eq!(report.num_changes(), 12);
        let scratch = GraphSnapshot::builder(next.graph().clone())
            .prepare_p(3)
            .prepare_p(4)
            .target_shards(16)
            .build()
            .unwrap();
        assert_eq!(next, scratch, "derived snapshot equals a cold build");
        assert_ne!(next.id(), snapshot.id());
        assert_eq!(next.prepared_ps(), vec![3, 4]);
    }

    #[test]
    fn apply_batch_rebuilds_past_the_churn_threshold() {
        let g = gen::path_graph(10); // 9 edges
        let snapshot = GraphSnapshot::build(g);
        // 3 effective changes over 9 edges = 333 333 ppm ≥ threshold.
        let batch = EdgeBatch::new(&[(0, 5)], &[(0, 1), (1, 2)]).unwrap();
        let (next, report) = snapshot.apply_batch(&batch).unwrap();
        assert_eq!(report.strategy, ChurnStrategy::Rebuild);
        assert!(report.churn_ppm >= REBUILD_CHURN_PPM);
        assert_eq!(report.bitset_rows_reused + report.bitset_rows_rebuilt, 0);
        assert_eq!(next, GraphSnapshot::build(next.graph().clone()));
    }

    #[test]
    fn noop_batches_preserve_the_content_identity() {
        let g = gen::erdos_renyi(30, 0.2, 3);
        let snapshot = GraphSnapshot::build(g.clone());
        // The empty batch.
        let (same, report) = snapshot.apply_batch(&EdgeBatch::empty()).unwrap();
        assert_eq!(report.strategy, ChurnStrategy::Noop);
        assert_eq!(same.id(), snapshot.id());
        assert_eq!(same, snapshot);
        // Inserts that all exist + deletes that all miss: still a no-op.
        let existing: Vec<(u32, u32)> = g.edges().take(4).collect();
        let missing: Vec<(u32, u32)> = (0..30u32)
            .flat_map(|u| ((u + 1)..30).map(move |v| (u, v)))
            .filter(|&(u, v)| !g.has_edge(u, v))
            .take(4)
            .collect();
        let batch = EdgeBatch::new(&existing, &missing).unwrap();
        assert!(!batch.is_empty(), "the *batch* is non-empty");
        let (same, report) = snapshot.apply_batch(&batch).unwrap();
        assert_eq!(report.strategy, ChurnStrategy::Noop);
        assert_eq!(report.num_changes(), 0);
        assert_eq!(report.churn_ppm, 0);
        assert_eq!(
            same.id(),
            snapshot.id(),
            "no-op churn must not invalidate caches"
        );
        assert_eq!(same, snapshot);
    }

    #[test]
    fn kernel_strategy_is_remembered_but_never_feeds_the_identity() {
        let g = gen::erdos_renyi(40, 0.2, 5);
        let snapshot = GraphSnapshot::builder(g.clone())
            .kernel(KernelStrategy::Trie)
            .build()
            .unwrap();
        assert_eq!(snapshot.kernel(), KernelStrategy::Trie);
        assert_eq!(snapshot.resolved_kernel(), KernelChoice::Trie);
        // Derived snapshots inherit the knob, like the shard target.
        let removed: Vec<(u32, u32)> = g.edges().take(1).collect();
        let batch = EdgeBatch::new(&[], &removed).unwrap();
        let (next, _) = snapshot.apply_batch(&batch).unwrap();
        assert_eq!(next.kernel(), KernelStrategy::Trie);
        // The knob is a performance choice, not content: the same graph under
        // the default strategy carries the same identity, so cached results
        // transfer across kernel settings.
        assert_eq!(GraphSnapshot::build(g).id(), snapshot.id());
    }

    #[test]
    fn apply_batch_rejects_out_of_range_endpoints() {
        let snapshot = GraphSnapshot::build(gen::path_graph(4));
        let batch = EdgeBatch::new(&[(0, 40)], &[]).unwrap();
        let err = snapshot.apply_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            SnapshotError::Batch(BatchError::VertexOutOfRange { vertex: 40, n: 4 })
        );
        assert!(format!("{err}").contains("edge batch rejected"));
    }
}
