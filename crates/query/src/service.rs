//! The query executor: single queries and deterministic batches over one
//! shared snapshot.
//!
//! A [`QueryService`] holds an [`Arc<GraphSnapshot>`], a resolved thread
//! grant and the content-addressed result cache. Execution is `&self`
//! throughout — all mutable state is per call or behind the cache lock — so
//! one service instance answers concurrent queries from many threads.
//!
//! Batches are deterministic by construction: [`QueryService::execute_batch`]
//! fans the requests out over scoped workers through
//! [`graphcore::ordered_merge`] (the same orchestrator behind the sharded
//! enumeration and the cluster pipeline) and replays the responses on the
//! calling thread in request order. Each response's deterministic payload
//! ([`QueryResponse::to_json`]) is byte-identical at any thread count and
//! whether or not the cache was warm; the execution-shape fields live in
//! [`QueryReport`], which is deliberately excluded from that payload — the
//! same split `RunReport` makes for `threads_used` (see `DESIGN.md` §11).

use crate::cache::{CacheStats, QueryCache};
use crate::model::{Query, QueryError, QueryKind};
use crate::snapshot::GraphSnapshot;
use cliquelist::Parallelism;
use graphcore::Clique;
use std::sync::Arc;

/// How one query was executed: the cache/fan-out facts that vary with the
/// host, kept out of the deterministic response payload on purpose (the
/// `RunReport`/`ParallelismSummary` precedent).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueryReport {
    /// Whether the result was served from the cache (the enumeration was
    /// short-circuited entirely).
    pub cache_hit: bool,
    /// Shards enumerated (1 for unsharded sequential paths, 0 on a cache
    /// hit).
    pub shards: usize,
    /// Worker threads this query's own enumeration fanned out to (1 for
    /// sequential paths and cache hits; batch-level fan-out is reported by
    /// [`QueryService::threads`], not here).
    pub threads_used: usize,
}

/// What a query produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryOutcome {
    /// The number of `p`-cliques ([`QueryKind::CountKp`]).
    Count(u64),
    /// Cliques in canonical sorted order ([`QueryKind::FirstK`],
    /// [`QueryKind::ContainingVertex`], [`QueryKind::ContainingEdge`]).
    Cliques(Vec<Clique>),
    /// Whether any `p`-clique exists ([`QueryKind::Exists`]).
    Exists(bool),
}

/// One answered query: the request, its outcome and the execution report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueryResponse {
    /// The validated request this response answers.
    pub query: Query,
    /// The deterministic result.
    pub outcome: QueryOutcome,
    /// How the execution went (cache, shards, threads). Not part of
    /// [`QueryResponse::to_json`].
    pub report: QueryReport,
}

impl QueryResponse {
    /// The deterministic payload: the outcome plus the query's canonical
    /// identity, with a fixed field order. Byte-identical across thread
    /// counts, cache states, runs and hosts — this is what the differential
    /// battery and the bench trajectory gate compare. [`QueryReport`] is
    /// deliberately excluded.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"outcome\":");
        match &self.outcome {
            QueryOutcome::Count(count) => s.push_str(&format!("{{\"count\":{count}}}")),
            QueryOutcome::Exists(exists) => s.push_str(&format!("{{\"exists\":{exists}}}")),
            QueryOutcome::Cliques(cliques) => {
                s.push_str("{\"cliques\":[");
                for (i, clique) in cliques.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('[');
                    for (j, v) in clique.iter().enumerate() {
                        if j > 0 {
                            s.push(',');
                        }
                        s.push_str(&v.to_string());
                    }
                    s.push(']');
                }
                s.push_str("]}");
            }
        }
        s.push_str(",\"query\":");
        s.push_str(&self.query.canonical_identity());
        s.push('}');
        s
    }
}

/// Executes queries against one shared [`GraphSnapshot`].
///
/// ```
/// use graphcore::gen;
/// use query::{GraphSnapshot, QueryBuilder, QueryService};
///
/// let snapshot = GraphSnapshot::build(gen::complete_graph(8)).into_shared();
/// let service = QueryService::new(snapshot.clone());
/// let query = QueryBuilder::new().p(4).count().build(&snapshot)?;
/// let response = service.execute(&query)?;
/// assert_eq!(response.outcome, query::QueryOutcome::Count(70));
/// # Ok::<(), query::QueryError>(())
/// ```
pub struct QueryService {
    snapshot: Arc<GraphSnapshot>,
    threads: usize,
    cache: QueryCache,
}

impl QueryService {
    /// A service over `snapshot` with the [`Parallelism::Auto`] thread grant
    /// (the `CLIQUELIST_THREADS` environment knob, available parallelism
    /// otherwise; always 1 without the `parallel` feature).
    pub fn new(snapshot: Arc<GraphSnapshot>) -> QueryService {
        QueryService::with_parallelism(snapshot, Parallelism::Auto)
    }

    /// A service with an explicit [`Parallelism`] setting. Thread counts
    /// shape wall-clock time only; every response payload is byte-identical
    /// at any setting.
    pub fn with_parallelism(snapshot: Arc<GraphSnapshot>, parallelism: Parallelism) -> Self {
        QueryService {
            snapshot,
            threads: resolve_threads(parallelism),
            cache: QueryCache::new(),
        }
    }

    /// The shared snapshot this service answers queries about.
    pub fn snapshot(&self) -> &Arc<GraphSnapshot> {
        &self.snapshot
    }

    /// The resolved thread grant (batch fan-out width; 1 = sequential).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Point-in-time cache counters (one probe per executed query).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drops every cached result and zeroes the counters.
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Executes one query, consulting the cache first.
    ///
    /// # Errors
    ///
    /// [`QueryError::SnapshotMismatch`] when the query was built against a
    /// different snapshot, [`QueryError::UnpreparedCliqueSize`] when this
    /// snapshot (despite an identical graph) did not prepare the query's
    /// clique size, [`QueryError::BudgetExceeded`] when the query carries a
    /// work budget the enumeration exhausted (the partial result is
    /// discarded, never cached).
    pub fn execute(&self, query: &Query) -> Result<QueryResponse, QueryError> {
        self.check(query)?;
        self.run(query, self.threads)
    }

    /// Executes a batch, returning responses in request order.
    ///
    /// With more than one granted thread (and the `parallel` feature), the
    /// requests fan out over scoped workers through
    /// [`graphcore::ordered_merge`]; the replay happens on the calling
    /// thread in ascending request order, so the response sequence — and
    /// every [`QueryResponse::to_json`] payload in it — is byte-identical at
    /// any thread count. Duplicate queries within one batch may race to the
    /// same cache entry; both compute the same deterministic outcome, so
    /// only the hit/miss counters (never the payloads) depend on timing.
    ///
    /// # Errors
    ///
    /// Validates every query up front (see [`QueryService::execute`]) and
    /// returns the first error before executing anything. A
    /// [`QueryError::BudgetExceeded`] surfaces at execution time instead;
    /// the replay stops at the first exhausted query in *request* order, so
    /// which error a mixed batch reports is deterministic at any thread
    /// count (earlier queries may already have been computed and cached).
    pub fn execute_batch(&self, queries: &[Query]) -> Result<Vec<QueryResponse>, QueryError> {
        for query in queries {
            self.check(query)?;
        }
        let mut responses = Vec::with_capacity(queries.len());
        #[cfg(feature = "parallel")]
        {
            let fanout = self.threads.min(queries.len());
            if fanout > 1 {
                let mut first_error = None;
                graphcore::ordered_merge::ordered_merge(
                    queries.len(),
                    fanout,
                    |i| self.run(&queries[i], 1),
                    |result| match result {
                        Ok(response) => {
                            responses.push(response);
                            true
                        }
                        Err(error) => {
                            first_error = Some(error);
                            false
                        }
                    },
                );
                return match first_error {
                    Some(error) => Err(error),
                    None => Ok(responses),
                };
            }
        }
        for query in queries {
            responses.push(self.run(query, 1)?);
        }
        Ok(responses)
    }

    /// The execution-time validation: the query must target this service's
    /// snapshot and a prepared clique size.
    fn check(&self, query: &Query) -> Result<(), QueryError> {
        if query.snapshot_id() != self.snapshot.id() {
            return Err(QueryError::SnapshotMismatch {
                expected: self.snapshot.id(),
                got: query.snapshot_id(),
            });
        }
        // Content-identical snapshots can differ in prepared sizes, so the
        // builder's check does not transfer; re-verify against *this*
        // snapshot.
        if self.snapshot.plan_for(query.p()).is_none() {
            return Err(QueryError::UnpreparedCliqueSize {
                p: query.p(),
                prepared: self.snapshot.prepared_ps(),
            });
        }
        Ok(())
    }

    /// Cache-or-compute for one pre-validated query. `inner_threads` is the
    /// grant for this query's own enumeration (1 inside batches, whose
    /// parallelism is the fan-out across queries). Budget-exceeded failures
    /// are never cached — only completed outcomes enter the cache.
    fn run(&self, query: &Query, inner_threads: usize) -> Result<QueryResponse, QueryError> {
        let key = query.cache_key();
        let identity = query.canonical_identity();
        if let Some(outcome) = self.cache.lookup(key, &identity) {
            return Ok(QueryResponse {
                query: query.clone(),
                outcome,
                report: QueryReport {
                    cache_hit: true,
                    shards: 0,
                    threads_used: 1,
                },
            });
        }
        let (outcome, shards, threads_used) = self.compute(query, inner_threads)?;
        self.cache.insert(key, identity, outcome.clone());
        Ok(QueryResponse {
            query: query.clone(),
            outcome,
            report: QueryReport {
                cache_hit: false,
                shards,
                threads_used,
            },
        })
    }

    /// Runs the enumeration for one query against the snapshot artifacts.
    /// Returns `(outcome, shards, threads_used)`, or
    /// [`QueryError::BudgetExceeded`] when a budgeted enumeration would
    /// visit more cliques than its budget allows. Budgeted queries always
    /// take the sequential path, so the visit count the budget meters is the
    /// deterministic enumeration order — the same at any thread grant.
    fn compute(
        &self,
        query: &Query,
        inner_threads: usize,
    ) -> Result<(QueryOutcome, usize, usize), QueryError> {
        let graph = self.snapshot.graph();
        let index = self.snapshot.index();
        let p = query.p();
        let mut meter = BudgetMeter::new(query.budget());
        let outcome = match query.kind() {
            QueryKind::CountKp => {
                #[cfg(feature = "parallel")]
                if inner_threads > 1 && query.budget().is_none() {
                    let plan = self
                        .snapshot
                        .plan_for(p)
                        .expect("checked: p is prepared")
                        .clone();
                    let shards = plan.num_shards();
                    if shards > 1 {
                        let enumerator =
                            graphcore::cliques::ShardedEnumerator::from_plan(graph, index, p, plan)
                                .with_kernel(self.snapshot.kernel());
                        let mut total = 0u64;
                        graphcore::ordered_merge::ordered_merge(
                            shards,
                            inner_threads,
                            |shard| {
                                let mut count = 0u64;
                                enumerator.for_each_in_shard(shard, |_| count += 1);
                                count
                            },
                            |count| {
                                total += count;
                                true
                            },
                        );
                        return Ok((
                            QueryOutcome::Count(total),
                            shards,
                            inner_threads.min(shards),
                        ));
                    }
                }
                let _ = inner_threads;
                let mut total = 0u64;
                index.for_each_clique_while_with(graph, p, self.snapshot.kernel(), |_| {
                    if !meter.admit() {
                        return false;
                    }
                    total += 1;
                    true
                });
                QueryOutcome::Count(total)
            }
            QueryKind::FirstK { k } => {
                let mut cliques: Vec<Clique> = Vec::with_capacity(k);
                index.for_each_clique_while_with(graph, p, self.snapshot.kernel(), |c| {
                    if !meter.admit() {
                        return false;
                    }
                    cliques.push(c.to_vec());
                    cliques.len() < k
                });
                cliques.sort_unstable();
                QueryOutcome::Cliques(cliques)
            }
            QueryKind::ContainingVertex { vertex } => {
                let mut cliques: Vec<Clique> = Vec::new();
                index.for_each_containing_vertex_while(graph, p, vertex, |c| {
                    if !meter.admit() {
                        return false;
                    }
                    cliques.push(c.to_vec());
                    true
                });
                cliques.sort_unstable();
                QueryOutcome::Cliques(cliques)
            }
            QueryKind::ContainingEdge { u, v } => {
                let mut cliques: Vec<Clique> = Vec::new();
                index.for_each_containing_edge_while(graph, p, u, v, |c| {
                    if !meter.admit() {
                        return false;
                    }
                    cliques.push(c.to_vec());
                    true
                });
                cliques.sort_unstable();
                QueryOutcome::Cliques(cliques)
            }
            QueryKind::Exists => {
                let mut found = false;
                index.for_each_clique_while_with(graph, p, self.snapshot.kernel(), |_| {
                    if !meter.admit() {
                        return false;
                    }
                    found = true;
                    false
                });
                QueryOutcome::Exists(found)
            }
        };
        meter.finish()?;
        Ok((outcome, 1, 1))
    }
}

/// Meters the cliques a budgeted enumeration visits. Admitting one more
/// visit than the budget allows trips the meter; [`BudgetMeter::finish`]
/// turns a tripped meter into [`QueryError::BudgetExceeded`]. Unbudgeted
/// queries admit everything for free.
struct BudgetMeter {
    budget: Option<u64>,
    visited: u64,
    exceeded: bool,
}

impl BudgetMeter {
    fn new(budget: Option<u64>) -> BudgetMeter {
        BudgetMeter {
            budget,
            visited: 0,
            exceeded: false,
        }
    }

    /// Whether the enumeration may visit one more clique. Once this returns
    /// `false` the enumeration must stop; the partial result is invalid.
    fn admit(&mut self) -> bool {
        if let Some(budget) = self.budget {
            if self.visited == budget {
                self.exceeded = true;
                return false;
            }
        }
        self.visited += 1;
        true
    }

    fn finish(&self) -> Result<(), QueryError> {
        match (self.exceeded, self.budget) {
            (true, Some(budget)) => Err(QueryError::BudgetExceeded { budget }),
            _ => Ok(()),
        }
    }
}

/// Resolves a [`Parallelism`] setting to a concrete worker count. Without
/// the `parallel` feature everything runs sequentially. Shared with the
/// delta-listing fan-out in [`crate::delta`].
pub(crate) fn resolve_threads(parallelism: Parallelism) -> usize {
    if cfg!(not(feature = "parallel")) {
        return 1;
    }
    match parallelism {
        Parallelism::Off => 1,
        Parallelism::Threads(n) => n.max(1),
        Parallelism::Auto => cliquelist::auto_threads(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::QueryBuilder;
    use graphcore::{cliques, gen};

    fn service(n: usize, prob: f64, seed: u64) -> (QueryService, Arc<GraphSnapshot>) {
        let snapshot = GraphSnapshot::build(gen::erdos_renyi(n, prob, seed)).into_shared();
        (QueryService::new(snapshot.clone()), snapshot)
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn query_reports_record_actual_fanout_not_the_grant() {
        // A tiny snapshot degenerates to a single shard: however wide the
        // service's grant, the per-query report must record what actually
        // happened (sequential, one shard), and batch members always run
        // their own enumeration sequentially — the batch's parallelism is the
        // fan-out across queries, reported by `threads()`, not per query.
        let snapshot = GraphSnapshot::build(gen::complete_graph(6)).into_shared();
        let service = QueryService::with_parallelism(snapshot.clone(), Parallelism::Threads(8));
        assert_eq!(service.threads(), 8, "the grant itself is remembered");
        let count = QueryBuilder::new().p(4).count().build(&snapshot).unwrap();
        let single = service.execute(&count).unwrap();
        assert!(
            single.report.threads_used < 8,
            "one shard cannot use an 8-thread grant (used {})",
            single.report.threads_used
        );
        service.clear_cache();
        let batch = service
            .execute_batch(&[count.clone(), count.clone(), count])
            .unwrap();
        for response in &batch {
            assert_eq!(response.report.threads_used, 1);
        }
    }

    #[test]
    fn kernel_strategies_answer_queries_identically() {
        // The snapshot's kernel knob must never change an answer — only the
        // wall-clock profile of computing it.
        let graph = gen::erdos_renyi(45, 0.3, 11);
        let reference = GraphSnapshot::build(graph.clone()).into_shared();
        let trie = GraphSnapshot::builder(graph)
            .kernel(cliques::KernelStrategy::Trie)
            .build()
            .unwrap()
            .into_shared();
        assert_eq!(trie.id(), reference.id());
        let ref_service = QueryService::new(reference.clone());
        let trie_service = QueryService::new(trie.clone());
        for p in [3usize, 4] {
            let count_a = QueryBuilder::new().p(p).count().build(&reference).unwrap();
            let count_b = QueryBuilder::new().p(p).count().build(&trie).unwrap();
            assert_eq!(
                ref_service.execute(&count_a).unwrap().outcome,
                trie_service.execute(&count_b).unwrap().outcome,
                "count p={p}"
            );
            let first_a = QueryBuilder::new().p(p).first(7).build(&reference).unwrap();
            let first_b = QueryBuilder::new().p(p).first(7).build(&trie).unwrap();
            assert_eq!(
                ref_service.execute(&first_a).unwrap().outcome,
                trie_service.execute(&first_b).unwrap().outcome,
                "first-k p={p}"
            );
        }
    }

    #[test]
    fn every_query_kind_matches_the_ground_truth() {
        let (service, snapshot) = service(45, 0.3, 11);
        let graph = snapshot.graph();
        for p in [3usize, 4, 5] {
            let truth = cliques::list_cliques(graph, p);
            let count = QueryBuilder::new().p(p).count().build(&snapshot).unwrap();
            assert_eq!(
                service.execute(&count).unwrap().outcome,
                QueryOutcome::Count(truth.len() as u64),
                "count p={p}"
            );
            let exists = QueryBuilder::new().p(p).exists().build(&snapshot).unwrap();
            assert_eq!(
                service.execute(&exists).unwrap().outcome,
                QueryOutcome::Exists(!truth.is_empty()),
                "exists p={p}"
            );
            let k = 5usize;
            let first = QueryBuilder::new().p(p).first(k).build(&snapshot).unwrap();
            let mut expected_first: Vec<Clique> = Vec::new();
            cliques::for_each_clique_while(graph, p, |c| {
                expected_first.push(c.to_vec());
                expected_first.len() < k
            });
            expected_first.sort_unstable();
            assert_eq!(
                service.execute(&first).unwrap().outcome,
                QueryOutcome::Cliques(expected_first),
                "first-k p={p}"
            );
            for vertex in [0u32, 22, 44] {
                let through = QueryBuilder::new()
                    .p(p)
                    .containing_vertex(vertex)
                    .build(&snapshot)
                    .unwrap();
                let expected: Vec<Clique> = truth
                    .iter()
                    .filter(|c| c.contains(&vertex))
                    .cloned()
                    .collect();
                assert_eq!(
                    service.execute(&through).unwrap().outcome,
                    QueryOutcome::Cliques(expected),
                    "vertex {vertex} p={p}"
                );
            }
            for (u, v) in graph.edges().take(10) {
                let through = QueryBuilder::new()
                    .p(p)
                    .containing_edge(u, v)
                    .build(&snapshot)
                    .unwrap();
                assert_eq!(
                    service.execute(&through).unwrap().outcome,
                    QueryOutcome::Cliques(cliques::cliques_containing_edge(graph, p, u, v)),
                    "edge {u}-{v} p={p}"
                );
            }
        }
    }

    #[test]
    fn cache_hits_short_circuit_and_are_observable() {
        let (service, snapshot) = service(40, 0.3, 3);
        let query = QueryBuilder::new().p(4).count().build(&snapshot).unwrap();
        let cold = service.execute(&query).unwrap();
        assert!(!cold.report.cache_hit);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 1, 1));
        let warm = service.execute(&query).unwrap();
        assert!(warm.report.cache_hit);
        assert_eq!(warm.outcome, cold.outcome);
        // The deterministic payload is identical cold or warm.
        assert_eq!(warm.to_json(), cold.to_json());
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        service.clear_cache();
        assert_eq!(service.cache_stats(), CacheStats::default());
        // Distinct queries (different seed) never share entries.
        let reseeded = QueryBuilder::new()
            .p(4)
            .seed(9)
            .count()
            .build(&snapshot)
            .unwrap();
        service.execute(&query).unwrap();
        let miss = service.execute(&reseeded).unwrap();
        assert!(!miss.report.cache_hit, "seed change must miss");
        assert_eq!(service.cache_stats().entries, 2);
    }

    #[test]
    fn snapshot_mismatch_is_a_typed_error() {
        let (service, _snapshot) = service(30, 0.3, 1);
        let other = GraphSnapshot::build(gen::erdos_renyi(30, 0.3, 2));
        let foreign = QueryBuilder::new().p(3).count().build(&other).unwrap();
        let err = service.execute(&foreign).unwrap_err();
        assert!(matches!(err, QueryError::SnapshotMismatch { .. }));
        assert!(format!("{err}").contains("snapshot"));
        // Identical graph, different prepared sizes: same id, typed error.
        let twin = GraphSnapshot::builder(gen::erdos_renyi(30, 0.3, 1))
            .prepare_p(6)
            .build()
            .unwrap();
        let unprepared = QueryBuilder::new().p(6).count().build(&twin).unwrap();
        assert_eq!(
            service.execute(&unprepared).unwrap_err(),
            QueryError::UnpreparedCliqueSize {
                p: 6,
                prepared: vec![3, 4, 5],
            }
        );
    }

    #[test]
    fn batches_replay_in_request_order() {
        let (service, snapshot) = service(35, 0.35, 7);
        let graph = snapshot.graph();
        let mut queries = vec![
            QueryBuilder::new().p(3).count().build(&snapshot).unwrap(),
            QueryBuilder::new().p(4).first(3).build(&snapshot).unwrap(),
            QueryBuilder::new().p(3).exists().build(&snapshot).unwrap(),
        ];
        for (u, v) in graph.edges().take(5) {
            queries.push(
                QueryBuilder::new()
                    .p(3)
                    .containing_edge(u, v)
                    .build(&snapshot)
                    .unwrap(),
            );
        }
        let responses = service.execute_batch(&queries).unwrap();
        assert_eq!(responses.len(), queries.len());
        for (query, response) in queries.iter().zip(&responses) {
            assert_eq!(&response.query, query, "responses must be in request order");
            let alone = service.execute(query).unwrap();
            assert_eq!(alone.outcome, response.outcome);
        }
        // A batch containing an invalid query fails up front.
        let other = GraphSnapshot::build(gen::complete_graph(5));
        queries.push(QueryBuilder::new().p(3).count().build(&other).unwrap());
        assert!(service.execute_batch(&queries).is_err());
    }

    #[test]
    fn query_surfaces_return_canonical_sorted_order() {
        let (service, snapshot) = service(40, 0.4, 13);
        for query in [
            QueryBuilder::new().p(3).first(20).build(&snapshot).unwrap(),
            QueryBuilder::new()
                .p(3)
                .containing_vertex(5)
                .build(&snapshot)
                .unwrap(),
        ] {
            let response = service.execute(&query).unwrap();
            let QueryOutcome::Cliques(cliques) = response.outcome else {
                panic!("expected cliques");
            };
            assert!(
                cliques.windows(2).all(|w| w[0] < w[1]),
                "not in canonical sorted order: {cliques:?}"
            );
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn thread_grants_never_change_payloads() {
        let snapshot = GraphSnapshot::build(gen::erdos_renyi(50, 0.3, 21)).into_shared();
        let mut queries = vec![
            QueryBuilder::new().p(4).count().build(&snapshot).unwrap(),
            QueryBuilder::new().p(3).first(7).build(&snapshot).unwrap(),
        ];
        for (u, v) in snapshot.graph().edges().take(8) {
            queries.push(
                QueryBuilder::new()
                    .p(3)
                    .containing_edge(u, v)
                    .build(&snapshot)
                    .unwrap(),
            );
        }
        let reference: Vec<String> =
            QueryService::with_parallelism(snapshot.clone(), Parallelism::Off)
                .execute_batch(&queries)
                .unwrap()
                .iter()
                .map(QueryResponse::to_json)
                .collect();
        for threads in [1usize, 2, 8] {
            let service =
                QueryService::with_parallelism(snapshot.clone(), Parallelism::Threads(threads));
            let payloads: Vec<String> = service
                .execute_batch(&queries)
                .unwrap()
                .iter()
                .map(QueryResponse::to_json)
                .collect();
            assert_eq!(payloads, reference, "threads={threads}");
            // Warm replay: byte-identical again, all hits.
            let warm: Vec<String> = service
                .execute_batch(&queries)
                .unwrap()
                .iter()
                .map(QueryResponse::to_json)
                .collect();
            assert_eq!(warm, reference, "warm threads={threads}");
        }
    }
}
