//! The typed query model: what can be asked of a snapshot, validated up
//! front.
//!
//! A [`Query`] is only obtainable through [`QueryBuilder::build`], which
//! checks the request against the target [`GraphSnapshot`] — kind present and
//! unambiguous, clique size prepared, vertices in range — and returns a typed
//! [`QueryError`] instead of panicking (the validated-builder contract the
//! engine's `EngineBuilder` established; see `DESIGN.md` §11). A built query
//! carries the snapshot's content identity, so executing it against a
//! different snapshot is itself a typed error, and the canonical
//! `(snapshot id, query)` identity string doubles as the cache key preimage.

use crate::cache::fnv1a;
use crate::snapshot::GraphSnapshot;
use std::fmt;

/// What a query asks for. Carried inside [`Query`]; constructed via the
/// [`QueryBuilder`] kind setters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// The number of `p`-cliques in the snapshot.
    CountKp,
    /// The first `k` cliques of the deterministic enumeration order,
    /// returned in canonical sorted order.
    FirstK {
        /// How many cliques to return (at most).
        k: usize,
    },
    /// Every `p`-clique containing one vertex.
    ContainingVertex {
        /// The vertex all returned cliques must contain.
        vertex: u32,
    },
    /// Every `p`-clique containing one edge.
    ContainingEdge {
        /// One endpoint of the edge.
        u: u32,
        /// The other endpoint.
        v: u32,
    },
    /// Whether at least one `p`-clique exists.
    Exists,
}

impl QueryKind {
    /// The kind's canonical name (used in identities and error messages).
    pub fn name(self) -> &'static str {
        match self {
            QueryKind::CountKp => "count-kp",
            QueryKind::FirstK { .. } => "first-k",
            QueryKind::ContainingVertex { .. } => "containing-vertex",
            QueryKind::ContainingEdge { .. } => "containing-edge",
            QueryKind::Exists => "exists",
        }
    }
}

/// A validated query against one specific snapshot.
///
/// Obtainable only via [`QueryBuilder::build`], so holding one proves the
/// request was well-formed for the snapshot whose identity it carries.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Query {
    snapshot_id: u64,
    p: usize,
    seed: u64,
    budget: Option<u64>,
    kind: QueryKind,
}

impl Query {
    /// The content identity of the snapshot this query was validated
    /// against.
    pub fn snapshot_id(&self) -> u64 {
        self.snapshot_id
    }

    /// The clique size queried.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The reproducibility seed carried in the cache identity.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-query work budget — the maximum number of cliques one
    /// execution may visit — or `None` for an unbounded query.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// What the query asks for.
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The canonical `(snapshot id, query)` identity: a JSON object with a
    /// fixed field order, stable across runs and hosts. Equal queries render
    /// identically; any parameter change (kind, `p`, seed, snapshot) changes
    /// the string — this is the cache key preimage and part of
    /// [`QueryResponse::to_json`](crate::QueryResponse::to_json).
    pub fn canonical_identity(&self) -> String {
        let mut s = format!("{{\"kind\":\"{}\"", self.kind.name());
        match self.kind {
            QueryKind::FirstK { k } => s.push_str(&format!(",\"k\":{k}")),
            QueryKind::ContainingVertex { vertex } => s.push_str(&format!(",\"vertex\":{vertex}")),
            QueryKind::ContainingEdge { u, v } => s.push_str(&format!(",\"u\":{u},\"v\":{v}")),
            QueryKind::CountKp | QueryKind::Exists => {}
        }
        s.push_str(&format!(",\"p\":{},\"seed\":{}", self.p, self.seed));
        // The budget participates only when set, so every pre-budget
        // identity (and thus every cache key and recorded response payload)
        // is unchanged byte for byte.
        if let Some(budget) = self.budget {
            s.push_str(&format!(",\"budget\":{budget}"));
        }
        s.push_str(&format!(",\"snapshot\":\"{:016x}\"}}", self.snapshot_id));
        s
    }

    /// The FNV-1a hash of [`Query::canonical_identity`] — the cache key.
    pub fn cache_key(&self) -> u64 {
        fnv1a(self.canonical_identity().as_bytes())
    }
}

/// Why a [`QueryBuilder`] refused to build, or a
/// [`QueryService`](crate::QueryService) refused to execute.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// No kind setter (`count`, `first`, …) was called.
    MissingKind,
    /// Two kind setters were called; the request is ambiguous.
    ConflictingKinds {
        /// The kind selected first.
        first: &'static str,
        /// The kind that tried to replace it.
        second: &'static str,
    },
    /// No clique size was given.
    MissingCliqueSize,
    /// The clique size was below 3 (smaller cliques are trivial scans the
    /// service does not index).
    CliqueSizeTooSmall {
        /// The offending clique size.
        p: usize,
    },
    /// The snapshot did not prepare shard plans for this clique size.
    UnpreparedCliqueSize {
        /// The requested clique size.
        p: usize,
        /// The sizes the snapshot prepared.
        prepared: Vec<usize>,
    },
    /// A `FirstK` query with `k = 0` (always empty; certainly a bug).
    ZeroLimit,
    /// A work budget of zero (every execution would be refused; drop the
    /// budget instead for an unbounded query).
    ZeroBudget,
    /// The enumeration hit the query's work budget before completing; the
    /// partial result is discarded and nothing is cached.
    BudgetExceeded {
        /// The budget the query carried.
        budget: u64,
    },
    /// A vertex parameter outside the snapshot's vertex range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: u32,
        /// The snapshot's vertex count.
        num_vertices: usize,
    },
    /// A `ContainingEdge` query with both endpoints equal.
    SelfLoopEdge {
        /// The repeated endpoint.
        vertex: u32,
    },
    /// A query built against one snapshot was executed against another.
    SnapshotMismatch {
        /// The executing service's snapshot identity.
        expected: u64,
        /// The identity the query was built against.
        got: u64,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::MissingKind => write!(f, "no query kind selected"),
            QueryError::ConflictingKinds { first, second } => {
                write!(f, "conflicting query kinds: {first} then {second}")
            }
            QueryError::MissingCliqueSize => write!(f, "no clique size given (call .p(...))"),
            QueryError::CliqueSizeTooSmall { p } => {
                write!(f, "clique size must be at least 3, got {p}")
            }
            QueryError::UnpreparedCliqueSize { p, prepared } => {
                write!(
                    f,
                    "snapshot did not prepare p = {p} (prepared: {prepared:?})"
                )
            }
            QueryError::ZeroLimit => write!(f, "first-k limit must be at least 1"),
            QueryError::ZeroBudget => write!(
                f,
                "work budget must be at least 1 (omit the budget for an unbounded query)"
            ),
            QueryError::BudgetExceeded { budget } => write!(
                f,
                "work budget exhausted: the enumeration would visit more than {budget} cliques"
            ),
            QueryError::VertexOutOfRange {
                vertex,
                num_vertices,
            } => write!(
                f,
                "vertex {vertex} out of range for a {num_vertices}-vertex snapshot"
            ),
            QueryError::SelfLoopEdge { vertex } => {
                write!(f, "edge query endpoints must differ, got {vertex} twice")
            }
            QueryError::SnapshotMismatch { expected, got } => write!(
                f,
                "query was built against snapshot {got:016x}, service holds {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for QueryError {}

/// Validating builder for [`Query`] — the only way to obtain one.
///
/// Pick exactly one kind, set the clique size, optionally tag a seed, then
/// [`build`](QueryBuilder::build) against the target snapshot:
///
/// ```
/// use graphcore::gen;
/// use query::{GraphSnapshot, QueryBuilder};
///
/// let snapshot = GraphSnapshot::build(gen::complete_graph(6));
/// let query = QueryBuilder::new().p(4).count().build(&snapshot)?;
/// assert_eq!(query.p(), 4);
/// # Ok::<(), query::QueryError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct QueryBuilder {
    p: Option<usize>,
    seed: u64,
    budget: Option<u64>,
    kind: Option<QueryKind>,
    conflict: Option<(&'static str, &'static str)>,
}

impl QueryBuilder {
    /// An empty builder (no kind, no clique size, seed 0).
    pub fn new() -> QueryBuilder {
        QueryBuilder::default()
    }

    /// Sets the clique size to query.
    #[must_use]
    pub fn p(mut self, p: usize) -> Self {
        self.p = Some(p);
        self
    }

    /// Tags the query with a reproducibility seed (default 0). The seed is
    /// part of the canonical identity, so results produced under different
    /// seeds never share cache entries.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Caps the work one execution may spend on this query: the enumeration
    /// may visit at most `budget` cliques before the service refuses with
    /// [`QueryError::BudgetExceeded`] instead of answering. Budgeted queries
    /// always enumerate sequentially, and the budget joins the canonical
    /// identity (only when set), so budgeted and unbounded variants of the
    /// same request never share cache entries.
    #[must_use]
    pub fn budget(mut self, budget: u64) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Asks for the number of `p`-cliques.
    #[must_use]
    pub fn count(self) -> Self {
        self.set_kind(QueryKind::CountKp)
    }

    /// Asks for the first `k` cliques of the deterministic enumeration
    /// order.
    #[must_use]
    pub fn first(self, k: usize) -> Self {
        self.set_kind(QueryKind::FirstK { k })
    }

    /// Asks for every `p`-clique containing `vertex`.
    #[must_use]
    pub fn containing_vertex(self, vertex: u32) -> Self {
        self.set_kind(QueryKind::ContainingVertex { vertex })
    }

    /// Asks for every `p`-clique containing the edge `{u, v}`.
    #[must_use]
    pub fn containing_edge(self, u: u32, v: u32) -> Self {
        self.set_kind(QueryKind::ContainingEdge { u, v })
    }

    /// Asks whether at least one `p`-clique exists.
    #[must_use]
    pub fn exists(self) -> Self {
        self.set_kind(QueryKind::Exists)
    }

    fn set_kind(mut self, kind: QueryKind) -> Self {
        if let Some(existing) = self.kind {
            if self.conflict.is_none() {
                self.conflict = Some((existing.name(), kind.name()));
            }
        } else {
            self.kind = Some(kind);
        }
        self
    }

    /// Validates the request against `snapshot` and produces the query.
    ///
    /// # Errors
    ///
    /// Returns a [`QueryError`] naming the first violated rule: ambiguous or
    /// missing kind, missing/too-small/unprepared clique size, zero `first`
    /// limit, out-of-range vertex, or a self-loop edge.
    pub fn build(self, snapshot: &GraphSnapshot) -> Result<Query, QueryError> {
        if let Some((first, second)) = self.conflict {
            return Err(QueryError::ConflictingKinds { first, second });
        }
        let kind = self.kind.ok_or(QueryError::MissingKind)?;
        let p = self.p.ok_or(QueryError::MissingCliqueSize)?;
        if p < 3 {
            return Err(QueryError::CliqueSizeTooSmall { p });
        }
        if !snapshot.is_prepared(p) {
            return Err(QueryError::UnpreparedCliqueSize {
                p,
                prepared: snapshot.prepared_ps(),
            });
        }
        if self.budget == Some(0) {
            return Err(QueryError::ZeroBudget);
        }
        let num_vertices = snapshot.graph().num_vertices();
        let check_vertex = |vertex: u32| {
            if (vertex as usize) < num_vertices {
                Ok(())
            } else {
                Err(QueryError::VertexOutOfRange {
                    vertex,
                    num_vertices,
                })
            }
        };
        match kind {
            QueryKind::FirstK { k: 0 } => return Err(QueryError::ZeroLimit),
            QueryKind::ContainingVertex { vertex } => check_vertex(vertex)?,
            QueryKind::ContainingEdge { u, v } => {
                if u == v {
                    return Err(QueryError::SelfLoopEdge { vertex: u });
                }
                check_vertex(u)?;
                check_vertex(v)?;
            }
            _ => {}
        }
        Ok(Query {
            snapshot_id: snapshot.id(),
            p,
            seed: self.seed,
            budget: self.budget,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    fn snapshot() -> GraphSnapshot {
        GraphSnapshot::build(gen::erdos_renyi(30, 0.3, 5))
    }

    #[test]
    fn builder_reports_each_validation_error() {
        let s = snapshot();
        assert_eq!(
            QueryBuilder::new().p(4).build(&s),
            Err(QueryError::MissingKind)
        );
        assert_eq!(
            QueryBuilder::new().count().build(&s),
            Err(QueryError::MissingCliqueSize)
        );
        assert_eq!(
            QueryBuilder::new().p(2).count().build(&s),
            Err(QueryError::CliqueSizeTooSmall { p: 2 })
        );
        assert_eq!(
            QueryBuilder::new().p(9).count().build(&s),
            Err(QueryError::UnpreparedCliqueSize {
                p: 9,
                prepared: vec![3, 4, 5],
            })
        );
        assert_eq!(
            QueryBuilder::new().p(3).first(0).build(&s),
            Err(QueryError::ZeroLimit)
        );
        assert_eq!(
            QueryBuilder::new().p(3).budget(0).count().build(&s),
            Err(QueryError::ZeroBudget)
        );
        assert_eq!(
            QueryBuilder::new().p(3).containing_vertex(30).build(&s),
            Err(QueryError::VertexOutOfRange {
                vertex: 30,
                num_vertices: 30,
            })
        );
        assert_eq!(
            QueryBuilder::new().p(3).containing_edge(7, 7).build(&s),
            Err(QueryError::SelfLoopEdge { vertex: 7 })
        );
        assert_eq!(
            QueryBuilder::new().p(3).containing_edge(0, 31).build(&s),
            Err(QueryError::VertexOutOfRange {
                vertex: 31,
                num_vertices: 30,
            })
        );
        assert_eq!(
            QueryBuilder::new().p(3).count().exists().build(&s),
            Err(QueryError::ConflictingKinds {
                first: "count-kp",
                second: "exists",
            })
        );
        // Errors render.
        let err = QueryBuilder::new().p(9).count().build(&s).unwrap_err();
        assert!(format!("{err}").contains("did not prepare"));
    }

    #[test]
    fn canonical_identity_is_stable_and_parameter_sensitive() {
        let s = snapshot();
        let count = QueryBuilder::new().p(4).count().build(&s).expect("valid");
        assert_eq!(
            count.canonical_identity(),
            format!(
                "{{\"kind\":\"count-kp\",\"p\":4,\"seed\":0,\"snapshot\":\"{:016x}\"}}",
                s.id()
            )
        );
        // Every parameter participates in the identity (and thus the key).
        let variants = [
            QueryBuilder::new().p(3).count().build(&s).expect("valid"),
            QueryBuilder::new()
                .p(4)
                .seed(1)
                .count()
                .build(&s)
                .expect("valid"),
            QueryBuilder::new().p(4).first(2).build(&s).expect("valid"),
            QueryBuilder::new()
                .p(4)
                .budget(100)
                .count()
                .build(&s)
                .expect("valid"),
            QueryBuilder::new().p(4).exists().build(&s).expect("valid"),
            QueryBuilder::new()
                .p(4)
                .containing_vertex(3)
                .build(&s)
                .expect("valid"),
            QueryBuilder::new()
                .p(4)
                .containing_edge(1, 2)
                .build(&s)
                .expect("valid"),
        ];
        for variant in &variants {
            assert_ne!(count.canonical_identity(), variant.canonical_identity());
            assert_ne!(count.cache_key(), variant.cache_key());
        }
        // Rebuilding the same request reproduces the identity byte for byte.
        let again = QueryBuilder::new().p(4).count().build(&s).expect("valid");
        assert_eq!(count, again);
        assert_eq!(count.cache_key(), again.cache_key());
        // A budget renders between the seed and the snapshot — and only when
        // one was set, so unbounded identities never change.
        let budgeted = QueryBuilder::new()
            .p(4)
            .budget(100)
            .count()
            .build(&s)
            .expect("valid");
        assert_eq!(budgeted.budget(), Some(100));
        assert_eq!(
            budgeted.canonical_identity(),
            format!(
                "{{\"kind\":\"count-kp\",\"p\":4,\"seed\":0,\"budget\":100,\"snapshot\":\"{:016x}\"}}",
                s.id()
            )
        );
        assert_eq!(count.budget(), None);
        assert!(!count.canonical_identity().contains("budget"));
    }
}
