//! Concurrent clique queries over immutable graph snapshots.
//!
//! The engine in `cliquelist` owns a graph end to end for one run; this crate
//! serves the opposite regime — **many independent queries against one
//! graph** — by splitting the work the way the DIST line of work does:
//!
//! 1. [`GraphSnapshot`]: build every enumeration artifact (CSR graph,
//!    degeneracy ordering, oriented DAG, adjacency bitsets, per-`p` shard
//!    plans) exactly once, then share the immutable result behind an `Arc`.
//! 2. [`Query`] / [`QueryBuilder`]: a typed request model — counts, bounded
//!    prefixes, per-vertex and per-edge listings, existence — validated up
//!    front with typed [`QueryError`]s instead of panics.
//! 3. [`QueryService`]: executes single queries and deterministic batches
//!    (fan-out over scoped threads through `graphcore::ordered_merge`,
//!    replayed in request order) with an in-memory content-addressed result
//!    cache keyed by the canonical `(snapshot id, query)` identity.
//! 4. [`GraphSnapshot::apply_batch`] / [`delta_cliques`]: dynamic snapshots.
//!    An `EdgeBatch` derives a *new* content-addressed snapshot (incremental
//!    index patch below the churn threshold, cold rebuild above it — the
//!    decision lands in a [`ChurnReport`]), and the delta API lists exactly
//!    the cliques the batch created and destroyed, byte-identical at any
//!    thread grant (see `DESIGN.md` §13).
//!
//! Determinism contract: a response's payload ([`QueryResponse::to_json`])
//! depends only on the snapshot contents and the query — never on thread
//! counts or cache state, which live in the separate [`QueryReport`]. See
//! `DESIGN.md` §11 for the architecture and the cache identity scheme.
//!
//! # Quickstart
//!
//! ```
//! use graphcore::gen;
//! use query::{GraphSnapshot, QueryBuilder, QueryOutcome, QueryService};
//!
//! // Build once: graph + ordering + DAG + bitsets + shard plans.
//! let graph = gen::erdos_renyi(150, 0.15, 42);
//! let snapshot = GraphSnapshot::builder(graph)
//!     .prepare_p(3)
//!     .prepare_p(4)
//!     .build()?
//!     .into_shared();
//!
//! // Query many: a mixed batch answered in request order.
//! let service = QueryService::new(snapshot.clone());
//! let batch = vec![
//!     QueryBuilder::new().p(3).count().build(&snapshot)?,
//!     QueryBuilder::new().p(4).first(5).build(&snapshot)?,
//!     QueryBuilder::new().p(3).containing_vertex(7).build(&snapshot)?,
//! ];
//! let responses = service.execute_batch(&batch)?;
//! if let QueryOutcome::Count(triangles) = responses[0].outcome {
//!     println!("{triangles} triangles");
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod delta;
pub mod model;
pub mod service;
pub mod snapshot;

pub use cache::CacheStats;
pub use delta::{delta_cliques, CliqueDelta, DeltaError};
pub use model::{Query, QueryBuilder, QueryError, QueryKind};
pub use service::{QueryOutcome, QueryReport, QueryResponse, QueryService};
pub use snapshot::{
    ChurnReport, ChurnStrategy, GraphSnapshot, SnapshotBuilder, SnapshotError, DEFAULT_PREPARED_PS,
    DEFAULT_TARGET_SHARDS, REBUILD_CHURN_PPM,
};
