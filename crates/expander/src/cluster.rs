//! Clusters: dense, well-mixing components of the decomposition.

use graphcore::{spectral, EdgeSet, Graph};
use serde::{Deserialize, Serialize};

/// One `n^δ`-cluster of a δ-expander decomposition (Definition 2.1 of the
/// paper): a maximal connected component of the `E_m` edges in which every
/// node has degree `Ω(n^δ)` and whose mixing time is polylogarithmic.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cluster {
    /// Dense identifier of the cluster within its decomposition.
    pub id: usize,
    /// The vertices of the cluster, sorted by identifier.
    pub vertices: Vec<u32>,
}

impl Cluster {
    /// Creates a cluster from a vertex list (sorted and deduplicated).
    pub fn new(id: usize, vertices: Vec<u32>) -> Self {
        let mut vertices = vertices;
        vertices.sort_unstable();
        vertices.dedup();
        Cluster { id, vertices }
    }

    /// Number of nodes in the cluster (the paper's `k`).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the cluster is empty.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Whether `v` belongs to the cluster.
    pub fn contains(&self, v: u32) -> bool {
        self.vertices.binary_search(&v).is_ok()
    }

    /// The cluster's edges within the given `E_m` edge set.
    pub fn edges_within(&self, em: &EdgeSet) -> EdgeSet {
        em.iter()
            .filter(|e| self.contains(e.u()) && self.contains(e.v()))
            .collect()
    }

    /// Minimum `E_m`-degree over the cluster's nodes.
    pub fn min_internal_degree(&self, em_graph: &Graph) -> usize {
        self.vertices
            .iter()
            .map(|&v| {
                em_graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| self.contains(w))
                    .count()
            })
            .min()
            .unwrap_or(0)
    }

    /// Number of `E_m` edges inside the cluster.
    pub fn internal_edge_count(&self, em_graph: &Graph) -> usize {
        self.vertices
            .iter()
            .map(|&v| {
                em_graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&w| self.contains(w))
                    .count()
            })
            .sum::<usize>()
            / 2
    }

    /// Estimated mixing time of the lazy random walk restricted to the
    /// cluster's internal edges.
    pub fn mixing_time(&self, em_graph: &Graph) -> f64 {
        spectral::mixing_time_estimate(em_graph, &self.vertices)
    }

    /// Per-node bandwidth the cluster can sustain per round: its minimum
    /// internal degree (each incident cluster edge carries one word per round).
    pub fn bandwidth(&self, em_graph: &Graph) -> u64 {
        self.min_internal_degree(em_graph) as u64
    }

    /// The neighbours of the cluster: vertices outside the cluster with at
    /// least one edge (in `graph`) to a cluster vertex.
    pub fn outside_neighbors(&self, graph: &Graph) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .vertices
            .iter()
            .flat_map(|&v| graph.neighbors(v).iter().copied())
            .filter(|&w| !self.contains(w))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    #[test]
    fn membership_and_size() {
        let c = Cluster::new(0, vec![5, 3, 3, 9]);
        assert_eq!(c.len(), 3);
        assert!(!c.is_empty());
        assert!(c.contains(3) && c.contains(9));
        assert!(!c.contains(4));
        assert_eq!(c.vertices, vec![3, 5, 9]);
    }

    #[test]
    fn internal_degree_and_edges() {
        let g = gen::complete_graph(6);
        let c = Cluster::new(1, (0..4).collect());
        assert_eq!(c.min_internal_degree(&g), 3);
        assert_eq!(c.internal_edge_count(&g), 6);
        assert_eq!(c.outside_neighbors(&g), vec![4, 5]);
        assert!(c.mixing_time(&g) < 10.0);
        assert_eq!(c.bandwidth(&g), 3);
    }

    #[test]
    fn edges_within_filters() {
        let g = gen::complete_graph(5);
        let em = g.edge_set();
        let c = Cluster::new(0, vec![0, 1, 2]);
        assert_eq!(c.edges_within(&em).len(), 3);
    }

    #[test]
    fn empty_cluster() {
        let g = gen::path_graph(3);
        let c = Cluster::new(0, vec![]);
        assert!(c.is_empty());
        assert_eq!(c.min_internal_degree(&g), 0);
        assert_eq!(c.internal_edge_count(&g), 0);
    }
}
