//! Construction and validation of δ-expander decompositions (Definition 2.2).

use crate::cluster::Cluster;
use congest::{ChargePolicy, PrimitiveKind};
use graphcore::{spectral, Edge, EdgeSet, Graph, Orientation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Tuning knobs of the decomposition construction.
///
/// The defaults implement the guarantees of Definition 2.2 with the hidden
/// constants instantiated as follows: clusters must have minimum internal
/// degree at least `degree_fraction · n^δ`, their estimated mixing time must
/// be at most `mixing_factor · log2(n)^mixing_exponent`, and at most
/// `max_er_fraction · |E|` edges may be placed in `E_r`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DecompositionConfig {
    /// Fraction of `n^δ` required as the minimum internal degree of a cluster.
    pub degree_fraction: f64,
    /// Multiplier of the polylogarithmic mixing-time acceptance threshold.
    pub mixing_factor: f64,
    /// Exponent of the `log2 n` term in the mixing-time acceptance threshold.
    pub mixing_exponent: u32,
    /// Maximum fraction of the input edges that may be assigned to `E_r`
    /// (the paper requires `1/6`).
    pub max_er_fraction: f64,
}

impl Default for DecompositionConfig {
    fn default() -> Self {
        DecompositionConfig {
            degree_fraction: 0.5,
            mixing_factor: 4.0,
            mixing_exponent: 2,
            max_er_fraction: 1.0 / 6.0,
        }
    }
}

impl DecompositionConfig {
    /// Minimum internal degree required of cluster nodes for an `n`-node graph.
    pub fn degree_threshold(&self, n: usize, delta: f64) -> usize {
        let raw = (n.max(1) as f64).powf(delta) * self.degree_fraction;
        raw.ceil().max(1.0) as usize
    }

    /// Mixing-time acceptance threshold for an `n`-node graph.
    pub fn mixing_limit(&self, n: usize) -> f64 {
        self.mixing_factor * (n.max(2) as f64).log2().powi(self.mixing_exponent as i32)
    }
}

/// A violation of the decomposition guarantees, reported by
/// [`Decomposition::verify`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// `E_m`, `E_s`, `E_r` do not partition the input edge set.
    NotAPartition {
        /// Number of input edges.
        expected: usize,
        /// Sum of the three parts (after checking pairwise disjointness).
        found: usize,
    },
    /// `|E_r|` exceeds the allowed fraction of `|E|`.
    ErTooLarge {
        /// Number of edges in `E_r`.
        er: usize,
        /// Maximum allowed.
        limit: usize,
    },
    /// A cluster node has too small an internal degree.
    LowClusterDegree {
        /// Cluster identifier.
        cluster: usize,
        /// Minimum internal degree found.
        found: usize,
        /// Required minimum.
        required: usize,
    },
    /// A cluster mixes too slowly.
    SlowMixing {
        /// Cluster identifier.
        cluster: usize,
        /// Estimated mixing time.
        mixing_time: f64,
        /// Acceptance threshold.
        limit: f64,
    },
    /// The `E_s` orientation has a vertex with too many outgoing edges.
    EsOutDegreeTooHigh {
        /// Offending vertex.
        vertex: u32,
        /// Its out-degree.
        out_degree: usize,
        /// The bound `n^δ`.
        limit: usize,
    },
    /// The `E_s` orientation does not cover exactly the `E_s` edges.
    EsOrientationMismatch,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::NotAPartition { expected, found } => {
                write!(
                    f,
                    "edge parts do not partition the input ({found} != {expected})"
                )
            }
            Violation::ErTooLarge { er, limit } => write!(f, "|E_r| = {er} exceeds limit {limit}"),
            Violation::LowClusterDegree {
                cluster,
                found,
                required,
            } => {
                write!(f, "cluster {cluster} has min degree {found} < {required}")
            }
            Violation::SlowMixing {
                cluster,
                mixing_time,
                limit,
            } => {
                write!(
                    f,
                    "cluster {cluster} mixing time {mixing_time:.1} exceeds {limit:.1}"
                )
            }
            Violation::EsOutDegreeTooHigh {
                vertex,
                out_degree,
                limit,
            } => {
                write!(f, "E_s out-degree of {vertex} is {out_degree} > {limit}")
            }
            Violation::EsOrientationMismatch => write!(f, "E_s orientation does not match E_s"),
        }
    }
}

/// A δ-expander decomposition of a graph.
#[derive(Clone, Debug)]
pub struct Decomposition {
    /// The δ parameter the decomposition was built for.
    pub delta: f64,
    /// Minimum internal degree required of cluster nodes.
    pub degree_threshold: usize,
    /// Cluster edges.
    pub em: EdgeSet,
    /// Low-arboricity edges, oriented by [`Decomposition::es_orientation`].
    pub es: EdgeSet,
    /// Leftover edges (at most a sixth of the input).
    pub er: EdgeSet,
    /// Orientation of `E_s` with out-degree at most `n^δ`.
    pub es_orientation: Orientation,
    /// The clusters (connected components of `E_m` with at least two nodes).
    pub clusters: Vec<Cluster>,
    /// For every vertex, the id of the cluster containing it (if any).
    pub cluster_of: Vec<Option<usize>>,
    /// Configuration used during construction (also used by `verify`).
    pub config: DecompositionConfig,
}

impl Decomposition {
    /// The cluster containing vertex `v`, if any.
    pub fn cluster_containing(&self, v: u32) -> Option<&Cluster> {
        self.cluster_of[v as usize].map(|i| &self.clusters[i])
    }

    /// Builds the subgraph consisting of the `E_m` edges only.
    pub fn em_graph(&self, n: usize) -> Graph {
        Graph::from_edge_set(n, &self.em).expect("E_m endpoints are in range")
    }

    /// Rounds charged for constructing this decomposition distributively
    /// (Theorem 2.3: `~O(n^{1-δ})`).
    pub fn charged_rounds(&self, n: usize, policy: &ChargePolicy) -> u64 {
        policy.decomposition_rounds(n, self.delta)
    }

    /// The primitive kind under which the construction cost is charged.
    pub fn primitive_kind() -> PrimitiveKind {
        PrimitiveKind::ExpanderDecomposition
    }

    /// Checks every guarantee of Definition 2.2 against the original graph
    /// and returns all violations found (empty means the decomposition is
    /// valid).
    ///
    /// # Errors
    ///
    /// Returns the list of violations if any guarantee fails.
    pub fn verify(&self, graph: &Graph) -> Result<(), Vec<Violation>> {
        let mut violations = Vec::new();
        let n = graph.num_vertices();

        // Partition check.
        let total = self.em.len() + self.es.len() + self.er.len();
        let disjoint = self.em.is_disjoint(&self.es)
            && self.em.is_disjoint(&self.er)
            && self.es.is_disjoint(&self.er);
        let all_present = self
            .em
            .iter()
            .chain(self.es.iter())
            .chain(self.er.iter())
            .all(|e| graph.has_edge(e.u(), e.v()));
        if !disjoint || !all_present || total != graph.num_edges() {
            violations.push(Violation::NotAPartition {
                expected: graph.num_edges(),
                found: total,
            });
        }

        // E_r size.
        let limit = (self.config.max_er_fraction * graph.num_edges() as f64).floor() as usize;
        if self.er.len() > limit {
            violations.push(Violation::ErTooLarge {
                er: self.er.len(),
                limit,
            });
        }

        // Cluster guarantees.
        let em_graph = self.em_graph(n);
        let mixing_limit = self.config.mixing_limit(n);
        for cluster in &self.clusters {
            let min_deg = cluster.min_internal_degree(&em_graph);
            if min_deg < self.degree_threshold {
                violations.push(Violation::LowClusterDegree {
                    cluster: cluster.id,
                    found: min_deg,
                    required: self.degree_threshold,
                });
            }
            let mixing = cluster.mixing_time(&em_graph);
            if !mixing.is_finite() || mixing > mixing_limit {
                violations.push(Violation::SlowMixing {
                    cluster: cluster.id,
                    mixing_time: mixing,
                    limit: mixing_limit,
                });
            }
        }

        // E_s orientation: coverage and out-degree bound of n^δ.
        let es_limit = (n.max(1) as f64).powf(self.delta).ceil() as usize;
        let mut oriented = EdgeSet::new();
        for (u, v) in self.es_orientation.edges() {
            oriented.insert(Edge::new(u, v));
        }
        if oriented != self.es {
            violations.push(Violation::EsOrientationMismatch);
        }
        for v in 0..n as u32 {
            let d = self.es_orientation.out_degree(v);
            if d > es_limit {
                violations.push(Violation::EsOutDegreeTooHigh {
                    vertex: v,
                    out_degree: d,
                    limit: es_limit,
                });
            }
        }

        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

/// Builds a δ-expander decomposition of `graph`.
///
/// The construction peels vertices of remaining degree below the cluster
/// degree threshold into `E_s` (oriented away from the peeled vertex, which
/// bounds the out-degree and hence the arboricity), and refines the remaining
/// dense components by sweep cuts on the second eigenvector of the lazy
/// random walk until every component mixes fast enough to be accepted as a
/// cluster. Cut edges go to `E_r`; if the `E_r` budget (`|E|/6` by default)
/// would be exceeded, the component is accepted as-is so the budget guarantee
/// always holds.
pub fn decompose(
    graph: &Graph,
    delta: f64,
    config: &DecompositionConfig,
    _seed: u64,
) -> Decomposition {
    let n = graph.num_vertices();
    let m = graph.num_edges();
    let threshold = config.degree_threshold(n, delta);
    let mixing_limit = config.mixing_limit(n);
    let er_budget = (config.max_er_fraction * m as f64).floor() as usize;

    // Remaining graph as mutable adjacency sets.
    let mut remaining: Vec<BTreeSet<u32>> = (0..n as u32)
        .map(|v| graph.neighbors(v).iter().copied().collect())
        .collect();

    let mut es = EdgeSet::new();
    let mut es_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut er = EdgeSet::new();
    let mut em = EdgeSet::new();
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut cluster_of: Vec<Option<usize>> = vec![None; n];

    // Global peel.
    let all: Vec<u32> = (0..n as u32).collect();
    peel(&mut remaining, &all, threshold, &mut es, &mut es_out);

    // Component queue.
    let mut queue: Vec<Vec<u32>> = components(&remaining, &all);

    while let Some(component) = queue.pop() {
        if component.len() < 2 {
            continue;
        }
        let sub = subgraph(&remaining, n, &component);
        let mixing = spectral::mixing_time_estimate(&sub, &component);
        if mixing.is_finite() && mixing <= mixing_limit {
            accept_cluster(
                &component,
                &sub,
                &mut em,
                &mut clusters,
                &mut cluster_of,
                &mut remaining,
            );
            continue;
        }

        // Try to find a sparse cut.
        let cut = sweep_cut(&sub, &component);
        let cut_edges: Vec<Edge> = match &cut {
            Some((side, _)) => {
                let side_set: BTreeSet<u32> = side.iter().copied().collect();
                sub.edges()
                    .filter(|&(u, v)| side_set.contains(&u) != side_set.contains(&v))
                    .map(|(u, v)| Edge::new(u, v))
                    .collect()
            }
            None => Vec::new(),
        };

        if cut_edges.is_empty() || er.len() + cut_edges.len() > er_budget {
            // Accept the component as a (possibly slow-mixing) cluster; the
            // E_r budget takes precedence so the |E_r| <= |E|/6 guarantee
            // always holds.
            accept_cluster(
                &component,
                &sub,
                &mut em,
                &mut clusters,
                &mut cluster_of,
                &mut remaining,
            );
            continue;
        }

        // Apply the cut: the crossing edges go to E_r.
        for e in &cut_edges {
            er.insert(*e);
            remaining[e.u() as usize].remove(&e.v());
            remaining[e.v() as usize].remove(&e.u());
        }
        // Degrees dropped: re-peel within the component, then re-split it into
        // connected components and keep refining.
        peel(&mut remaining, &component, threshold, &mut es, &mut es_out);
        for part in components(&remaining, &component) {
            queue.push(part);
        }
    }

    Decomposition {
        delta,
        degree_threshold: threshold,
        em,
        es,
        er,
        es_orientation: Orientation::from_out_lists(es_out),
        clusters,
        cluster_of,
        config: *config,
    }
}

/// Repeatedly removes vertices (restricted to `scope`) whose remaining degree
/// is below `threshold`, assigning their remaining incident edges to `E_s`
/// oriented away from the removed vertex.
fn peel(
    remaining: &mut [BTreeSet<u32>],
    scope: &[u32],
    threshold: usize,
    es: &mut EdgeSet,
    es_out: &mut [Vec<u32>],
) {
    let mut stack: Vec<u32> = scope
        .iter()
        .copied()
        .filter(|&v| !remaining[v as usize].is_empty() && remaining[v as usize].len() < threshold)
        .collect();
    let mut queued: BTreeSet<u32> = stack.iter().copied().collect();
    while let Some(v) = stack.pop() {
        queued.remove(&v);
        if remaining[v as usize].is_empty() || remaining[v as usize].len() >= threshold {
            continue;
        }
        let nbrs: Vec<u32> = remaining[v as usize].iter().copied().collect();
        for w in nbrs {
            es.insert(Edge::new(v, w));
            es_out[v as usize].push(w);
            remaining[v as usize].remove(&w);
            remaining[w as usize].remove(&v);
            if !remaining[w as usize].is_empty()
                && remaining[w as usize].len() < threshold
                && queued.insert(w)
            {
                stack.push(w);
            }
        }
    }
}

/// Connected components of the remaining graph restricted to `scope`
/// (only vertices with at least one remaining edge are reported).
fn components(remaining: &[BTreeSet<u32>], scope: &[u32]) -> Vec<Vec<u32>> {
    let scope_set: BTreeSet<u32> = scope
        .iter()
        .copied()
        .filter(|&v| !remaining[v as usize].is_empty())
        .collect();
    let mut seen: BTreeSet<u32> = BTreeSet::new();
    let mut out = Vec::new();
    for &start in &scope_set {
        if seen.contains(&start) {
            continue;
        }
        let mut stack = vec![start];
        seen.insert(start);
        let mut comp = Vec::new();
        while let Some(v) = stack.pop() {
            comp.push(v);
            for &w in &remaining[v as usize] {
                if scope_set.contains(&w) && seen.insert(w) {
                    stack.push(w);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out
}

/// Materialises the remaining edges among `component` as a graph (keeping the
/// original vertex identifiers).
fn subgraph(remaining: &[BTreeSet<u32>], n: usize, component: &[u32]) -> Graph {
    let comp_set: BTreeSet<u32> = component.iter().copied().collect();
    let mut edges = Vec::new();
    for &v in component {
        for &w in &remaining[v as usize] {
            if v < w && comp_set.contains(&w) {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("remaining edges are in range")
}

fn accept_cluster(
    component: &[u32],
    sub: &Graph,
    em: &mut EdgeSet,
    clusters: &mut Vec<Cluster>,
    cluster_of: &mut [Option<usize>],
    remaining: &mut [BTreeSet<u32>],
) {
    let id = clusters.len();
    for (u, v) in sub.edges() {
        em.insert(Edge::new(u, v));
    }
    for &v in component {
        cluster_of[v as usize] = Some(id);
        remaining[v as usize].clear();
    }
    // Clear reverse entries pointing into the component from outside (there
    // should be none, since components are maximal, but stay defensive).
    clusters.push(Cluster::new(id, component.to_vec()));
}

/// Finds the prefix of the second-eigenvector ordering with minimum
/// conductance. Returns the chosen side and its conductance, or `None` if no
/// eigenvector is available (e.g. the component is disconnected).
fn sweep_cut(sub: &Graph, component: &[u32]) -> Option<(Vec<u32>, f64)> {
    let (_, vector) = spectral::second_eigenpair(sub, component)?;
    let mut order: Vec<usize> = (0..component.len()).collect();
    order.sort_by(|&a, &b| {
        vector[a]
            .partial_cmp(&vector[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let total_volume: usize = component.iter().map(|&v| sub.degree(v)).sum();
    let mut in_prefix: BTreeSet<u32> = BTreeSet::new();
    let mut volume = 0usize;
    let mut cut = 0usize;
    let mut best: Option<(usize, f64)> = None;
    for (i, &idx) in order.iter().enumerate().take(component.len() - 1) {
        let v = component[idx];
        let internal = sub
            .neighbors(v)
            .iter()
            .filter(|&&w| in_prefix.contains(&w))
            .count();
        volume += sub.degree(v);
        cut = cut + sub.degree(v) - 2 * internal;
        in_prefix.insert(v);
        let denom = volume.min(total_volume - volume);
        if denom == 0 {
            continue;
        }
        let conductance = cut as f64 / denom as f64;
        if best.is_none_or(|(_, c)| conductance < c) {
            best = Some((i, conductance));
        }
    }
    let (prefix_len, conductance) = best?;
    let side: Vec<u32> = order[..=prefix_len].iter().map(|&i| component[i]).collect();
    Some((side, conductance))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    #[test]
    fn dense_random_graph_forms_one_cluster() {
        let g = gen::erdos_renyi(120, 0.4, 3);
        let d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        d.verify(&g).expect("valid decomposition");
        assert!(!d.clusters.is_empty());
        // Most edges should live in E_m for a dense expander-like graph.
        assert!(d.em.len() > g.num_edges() / 2, "em = {}", d.em.len());
        assert!(d.er.len() <= g.num_edges() / 6);
    }

    #[test]
    fn sparse_graph_goes_entirely_to_es() {
        let g = gen::path_graph(200);
        let d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        d.verify(&g).expect("valid decomposition");
        assert!(d.clusters.is_empty());
        assert_eq!(d.es.len(), g.num_edges());
        assert!(d.er.is_empty());
    }

    #[test]
    fn two_dense_communities_joined_by_a_bridge() {
        // Two K_20's joined by a single edge: the bridge should not prevent
        // finding two well-mixing clusters (it is either cut into E_r or the
        // merged component already mixes well enough to be accepted).
        let mut edges = Vec::new();
        for u in 0..20u32 {
            for v in (u + 1)..20u32 {
                edges.push((u, v));
                edges.push((u + 20, v + 20));
            }
        }
        edges.push((0, 20));
        let g = Graph::from_edges(40, &edges).unwrap();
        let d = decompose(&g, 0.6, &DecompositionConfig::default(), 1);
        d.verify(&g).expect("valid decomposition");
        assert!(!d.clusters.is_empty());
        let clustered: usize = d.clusters.iter().map(Cluster::len).sum();
        assert!(clustered >= 38, "only {clustered} vertices clustered");
    }

    #[test]
    fn empty_and_tiny_graphs() {
        let g = Graph::new(0);
        let d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        d.verify(&g).expect("valid");
        let g1 = Graph::new(5);
        let d1 = decompose(&g1, 0.5, &DecompositionConfig::default(), 1);
        d1.verify(&g1).expect("valid");
        assert!(d1.clusters.is_empty() && d1.em.is_empty() && d1.es.is_empty());
    }

    #[test]
    fn partition_is_exact_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::erdos_renyi(150, 0.1, seed);
            let d = decompose(&g, 0.4, &DecompositionConfig::default(), seed);
            d.verify(&g).expect("valid decomposition");
            assert_eq!(d.em.len() + d.es.len() + d.er.len(), g.num_edges());
        }
    }

    #[test]
    fn es_orientation_out_degree_is_bounded() {
        let g = gen::barabasi_albert(300, 4, 9);
        let delta = 0.5;
        let d = decompose(&g, delta, &DecompositionConfig::default(), 2);
        d.verify(&g).expect("valid decomposition");
        let limit = (300f64).powf(delta).ceil() as usize;
        assert!(d.es_orientation.max_out_degree() <= limit);
    }

    #[test]
    fn charged_rounds_follow_theorem_2_3() {
        let g = gen::erdos_renyi(100, 0.3, 3);
        let d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        let bare = ChargePolicy::bare();
        assert_eq!(d.charged_rounds(10_000, &bare), 100); // 10000^{0.5}
        assert_eq!(
            Decomposition::primitive_kind(),
            PrimitiveKind::ExpanderDecomposition
        );
    }

    #[test]
    fn cluster_lookup() {
        let g = gen::complete_graph(30);
        let d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        assert_eq!(d.clusters.len(), 1);
        let c = d.cluster_containing(3).expect("vertex 3 clustered");
        assert_eq!(c.len(), 30);
        assert!(d.em_graph(30).num_edges() > 0);
    }

    #[test]
    fn verify_detects_corruption() {
        let g = gen::complete_graph(20);
        let mut d = decompose(&g, 0.5, &DecompositionConfig::default(), 1);
        // Corrupt: move a cluster edge into E_r without removing it from E_m.
        let edge = d.em.iter().next().unwrap();
        d.er.insert(edge);
        let violations = d.verify(&g).unwrap_err();
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::NotAPartition { .. })));
        assert!(!format!("{}", violations[0]).is_empty());
    }
}
