//! Intra-cluster identifier assignment (Lemma 2.5) and the flat dense-id
//! tables built on top of it.
//!
//! Several steps of the listing algorithm need every cluster node to know a
//! dense rank in `{0, …, |C| − 1}`: responsibilities for outside vertices and
//! the radix-based part assignment are both functions of the rank. Lemma 2.5
//! states this can be computed for all clusters in parallel in
//! `O(polylog n)` rounds; we compute the ranks directly (sorted by original
//! identifier, which is what a distributed prefix-sum over a BFS tree would
//! produce) and charge that cost.
//!
//! The dense ranks are what make the pipeline's load accounting flat:
//! [`DenseTable`] (per-rank word counters) and [`PairTable`] (per-part-pair
//! edge counters) are plain `Vec`-indexed tables keyed by dense identifiers,
//! replacing the `HashMap`/`HashSet` bookkeeping of the earlier pipeline.
//! Beyond skipping a hash per touch on the hot path, their iteration order
//! is *structural* (ascending rank / pair index), which is what lets the
//! cluster fan-out run in parallel with byte-identical output instead of
//! repairing iteration order downstream.

use crate::cluster::Cluster;
use congest::{ChargePolicy, PrimitiveKind};

/// The dense identifier assignment of one cluster.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterIds {
    by_rank: Vec<u32>,
}

impl ClusterIds {
    /// Assigns ranks `0..k` to the cluster's nodes in increasing order of
    /// their original identifiers.
    pub fn assign(cluster: &Cluster) -> Self {
        // Cluster vertices are sorted and deduplicated on construction, so
        // the vertex list *is* the rank order and ranks resolve by binary
        // search — no per-vertex hash table.
        ClusterIds {
            by_rank: cluster.vertices.clone(),
        }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// The rank of an original vertex, if it belongs to the cluster.
    pub fn rank(&self, v: u32) -> Option<usize> {
        self.by_rank.binary_search(&v).ok()
    }

    /// The original vertex holding `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    pub fn vertex(&self, rank: usize) -> u32 {
        self.by_rank[rank]
    }

    /// Rounds charged for running the assignment distributively (Lemma 2.5).
    pub fn charged_rounds(n: usize, policy: &ChargePolicy) -> u64 {
        policy.id_assignment_rounds(n)
    }

    /// The primitive kind under which the cost is charged.
    pub fn primitive_kind() -> PrimitiveKind {
        PrimitiveKind::ClusterIdAssignment
    }
}

/// A flat `u64` counter table keyed by dense identifiers `0..len` — the
/// load-accounting workhorse of the cluster pipeline (per-rank send/receive
/// words, learned-word counts).
///
/// Every operation is a direct `Vec` index: no hashing on the hot path, and
/// [`DenseTable::iter`] walks the keys in ascending order, so any value
/// derived from an iteration is deterministic by construction.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DenseTable {
    values: Vec<u64>,
}

impl DenseTable {
    /// Creates a zeroed table over the dense key space `0..len`.
    pub fn new(len: usize) -> Self {
        DenseTable {
            values: vec![0; len],
        }
    }

    /// Number of keys (dense identifiers) covered.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the key space is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Adds `delta` to the counter of dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn add(&mut self, id: usize, delta: u64) {
        self.values[id] += delta;
    }

    /// The counter of dense id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn get(&self, id: usize) -> u64 {
        self.values[id]
    }

    /// The maximum counter over all ids (0 for an empty table).
    pub fn max(&self) -> u64 {
        self.values.iter().copied().max().unwrap_or(0)
    }

    /// Iterates over `(id, value)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.values.iter().copied().enumerate()
    }
}

/// A flat counter table over unordered pairs of dense identifiers
/// `{a, b} ⊆ 0..num_ids` (including `a == b`), stored as one
/// upper-triangular `Vec<u64>`.
///
/// This replaces the `HashMap<(u32, u32), u64>` pair-count tables of the
/// part-exchange accounting: the part universe of the radix assignment is
/// `P ≈ k^{1/p}`, so the full triangle is tiny (`P(P+1)/2` words) while a
/// hash map would pay a hash per counted edge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PairTable {
    num_ids: u32,
    values: Vec<u64>,
}

impl PairTable {
    /// Creates a zeroed table over all unordered pairs of `0..num_ids`.
    pub fn new(num_ids: u32) -> Self {
        let n = num_ids as usize;
        PairTable {
            num_ids,
            values: vec![0; n * (n + 1) / 2],
        }
    }

    /// Number of distinct dense identifiers covered.
    pub fn num_ids(&self) -> u32 {
        self.num_ids
    }

    /// The flat index of the unordered pair `{a, b}`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    fn index(&self, a: u32, b: u32) -> usize {
        let (lo, hi) = (a.min(b) as usize, a.max(b) as usize);
        assert!(hi < self.num_ids as usize, "pair id {hi} out of range");
        // Row `lo` of the upper triangle starts after the rows above it.
        lo * self.num_ids as usize - lo * (lo + 1) / 2 + hi
    }

    /// Adds `delta` to the counter of the unordered pair `{a, b}`.
    pub fn add(&mut self, a: u32, b: u32, delta: u64) {
        let i = self.index(a, b);
        self.values[i] += delta;
    }

    /// The counter of the unordered pair `{a, b}`.
    pub fn get(&self, a: u32, b: u32) -> u64 {
        self.values[self.index(a, b)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_dense_and_consistent() {
        let c = Cluster::new(0, vec![30, 7, 12]);
        let ids = ClusterIds::assign(&c);
        assert_eq!(ids.len(), 3);
        assert!(!ids.is_empty());
        assert_eq!(ids.rank(7), Some(0));
        assert_eq!(ids.rank(12), Some(1));
        assert_eq!(ids.rank(30), Some(2));
        assert_eq!(ids.rank(99), None);
        for r in 0..3 {
            assert_eq!(ids.rank(ids.vertex(r)), Some(r));
        }
    }

    #[test]
    fn charged_rounds_are_polylog() {
        let policy = ChargePolicy::default();
        assert_eq!(ClusterIds::charged_rounds(1024, &policy), 10);
        assert_eq!(
            ClusterIds::primitive_kind(),
            PrimitiveKind::ClusterIdAssignment
        );
    }

    #[test]
    fn empty_cluster() {
        let ids = ClusterIds::assign(&Cluster::new(0, vec![]));
        assert!(ids.is_empty());
        assert_eq!(ids.rank(0), None);
    }

    #[test]
    fn dense_table_counts_and_maxes() {
        let mut t = DenseTable::new(4);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.max(), 0);
        t.add(1, 5);
        t.add(1, 2);
        t.add(3, 6);
        assert_eq!(t.get(0), 0);
        assert_eq!(t.get(1), 7);
        assert_eq!(t.max(), 7);
        let pairs: Vec<(usize, u64)> = t.iter().collect();
        assert_eq!(pairs, vec![(0, 0), (1, 7), (2, 0), (3, 6)]);
        assert!(DenseTable::new(0).is_empty());
        assert_eq!(DenseTable::new(0).max(), 0);
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn dense_table_rejects_out_of_range_ids() {
        DenseTable::new(2).add(2, 1);
    }

    #[test]
    fn pair_table_matches_a_reference_map() {
        use std::collections::HashMap;
        let p = 5u32;
        let mut table = PairTable::new(p);
        assert_eq!(table.num_ids(), p);
        let mut reference: HashMap<(u32, u32), u64> = HashMap::new();
        // A deterministic pseudo-random walk over pairs.
        let mut x = 7u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 33) as u32 % p;
            let b = (x >> 13) as u32 % p;
            let delta = x % 5;
            table.add(a, b, delta);
            *reference.entry((a.min(b), a.max(b))).or_insert(0) += delta;
        }
        for a in 0..p {
            for b in a..p {
                assert_eq!(
                    table.get(a, b),
                    reference.get(&(a, b)).copied().unwrap_or(0),
                    "pair ({a},{b})"
                );
                // Unordered: both orders hit the same counter.
                assert_eq!(table.get(a, b), table.get(b, a));
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pair_table_rejects_out_of_range_ids() {
        PairTable::new(3).get(1, 3);
    }
}
