//! Intra-cluster identifier assignment (Lemma 2.5).
//!
//! Several steps of the listing algorithm need every cluster node to know a
//! dense rank in `{0, …, |C| − 1}`: responsibilities for outside vertices and
//! the radix-based part assignment are both functions of the rank. Lemma 2.5
//! states this can be computed for all clusters in parallel in
//! `O(polylog n)` rounds; we compute the ranks directly (sorted by original
//! identifier, which is what a distributed prefix-sum over a BFS tree would
//! produce) and charge that cost.

use crate::cluster::Cluster;
use congest::{ChargePolicy, PrimitiveKind};
use std::collections::HashMap;

/// The dense identifier assignment of one cluster.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClusterIds {
    rank_of: HashMap<u32, usize>,
    by_rank: Vec<u32>,
}

impl ClusterIds {
    /// Assigns ranks `0..k` to the cluster's nodes in increasing order of
    /// their original identifiers.
    pub fn assign(cluster: &Cluster) -> Self {
        let by_rank = cluster.vertices.clone();
        let rank_of = by_rank.iter().enumerate().map(|(i, &v)| (v, i)).collect();
        ClusterIds { rank_of, by_rank }
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    /// Whether the assignment is empty.
    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    /// The rank of an original vertex, if it belongs to the cluster.
    pub fn rank(&self, v: u32) -> Option<usize> {
        self.rank_of.get(&v).copied()
    }

    /// The original vertex holding `rank`.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= len()`.
    pub fn vertex(&self, rank: usize) -> u32 {
        self.by_rank[rank]
    }

    /// Rounds charged for running the assignment distributively (Lemma 2.5).
    pub fn charged_rounds(n: usize, policy: &ChargePolicy) -> u64 {
        policy.id_assignment_rounds(n)
    }

    /// The primitive kind under which the cost is charged.
    pub fn primitive_kind() -> PrimitiveKind {
        PrimitiveKind::ClusterIdAssignment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_dense_and_consistent() {
        let c = Cluster::new(0, vec![30, 7, 12]);
        let ids = ClusterIds::assign(&c);
        assert_eq!(ids.len(), 3);
        assert!(!ids.is_empty());
        assert_eq!(ids.rank(7), Some(0));
        assert_eq!(ids.rank(12), Some(1));
        assert_eq!(ids.rank(30), Some(2));
        assert_eq!(ids.rank(99), None);
        for r in 0..3 {
            assert_eq!(ids.rank(ids.vertex(r)), Some(r));
        }
    }

    #[test]
    fn charged_rounds_are_polylog() {
        let policy = ChargePolicy::default();
        assert_eq!(ClusterIds::charged_rounds(1024, &policy), 10);
        assert_eq!(
            ClusterIds::primitive_kind(),
            PrimitiveKind::ClusterIdAssignment
        );
    }

    #[test]
    fn empty_cluster() {
        let ids = ClusterIds::assign(&Cluster::new(0, vec![]));
        assert!(ids.is_empty());
        assert_eq!(ids.rank(0), None);
    }
}
