//! Intra-cluster routing in almost-mixing time (Theorem 2.4).
//!
//! Theorem 2.4 (Ghaffari–Kuhn–Su, Ghaffari–Li, as used by Chang et al.)
//! guarantees that if every node of an `n^δ`-cluster needs to send and
//! receive at most `O(n^δ · 2^{O(√log n)})` messages, all of them can be
//! delivered inside the cluster in `~O(2^{O(√log n)})` rounds, using only the
//! cluster's own edges.
//!
//! The reproduction delivers the messages directly (so downstream correctness
//! is real) and charges rounds through a [`congest::ChargePolicy`]:
//! `ceil(max_load / bandwidth)` times the configured polylog factor, where the
//! bandwidth of a cluster node is its minimum internal degree. The router also
//! *verifies* the hypothesis of the theorem by reporting the observed maximum
//! load, so callers (and tests) can check they stayed within the budget the
//! paper's analysis assumes.
//!
//! Loads and deliveries are tracked in flat [`DenseTable`]/`Vec` structures
//! keyed by the dense cluster ranks of Lemma 2.5 — no hashing per message,
//! and delivery order is structural (source order within each destination).

use crate::cluster::Cluster;
use crate::ids::{ClusterIds, DenseTable};
use congest::{ChargePolicy, CostLedger, PrimitiveKind};
use graphcore::Graph;

/// Outcome of one routing invocation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RoutingOutcome {
    /// Maximum number of words any cluster node sent.
    pub max_send: u64,
    /// Maximum number of words any cluster node received.
    pub max_recv: u64,
    /// Rounds charged for the delivery.
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
}

/// A load-accounted router for one cluster.
#[derive(Clone, Debug)]
pub struct ClusterRouter {
    ids: ClusterIds,
    cluster_id: usize,
    bandwidth: u64,
    n: usize,
    policy: ChargePolicy,
}

impl ClusterRouter {
    /// Creates a router for `cluster`, whose internal edges are those of
    /// `em_graph`; `n` is the number of nodes of the whole input graph (used
    /// for the polylog factors of the charge policy).
    pub fn new(cluster: &Cluster, em_graph: &Graph, n: usize, policy: ChargePolicy) -> Self {
        ClusterRouter {
            bandwidth: cluster.bandwidth(em_graph).max(1),
            ids: ClusterIds::assign(cluster),
            cluster_id: cluster.id,
            n,
            policy,
        }
    }

    /// The per-round bandwidth (minimum internal degree) assumed for each
    /// cluster node.
    pub fn bandwidth(&self) -> u64 {
        self.bandwidth
    }

    /// The dense identifier assignment (Lemma 2.5) the router keys its load
    /// tables by.
    pub fn ids(&self) -> &ClusterIds {
        &self.ids
    }

    /// Routes `messages` (source, destination, payload) inside the cluster,
    /// grouping them by destination, and charges the corresponding rounds to
    /// `ledger`.
    ///
    /// Every payload is counted as `words_per_message` words. The returned
    /// deliveries are indexed by the **dense rank** of the destination (see
    /// [`ClusterRouter::ids`]); each destination's messages arrive as
    /// `(source, payload)` pairs in submission order.
    ///
    /// # Panics
    ///
    /// Panics if a source or destination is not a member of the cluster —
    /// Theorem 2.4 only applies to traffic between cluster nodes.
    pub fn route<T>(
        &self,
        messages: Vec<(u32, u32, T)>,
        words_per_message: u64,
        ledger: &mut CostLedger,
    ) -> (Vec<Vec<(u32, T)>>, RoutingOutcome) {
        let k = self.ids.len();
        let mut send_load = DenseTable::new(k);
        let mut recv_load = DenseTable::new(k);
        let mut delivered: Vec<Vec<(u32, T)>> = (0..k).map(|_| Vec::new()).collect();
        let count = messages.len() as u64;
        for (src, dst, payload) in messages {
            let src_rank = self.ids.rank(src).unwrap_or_else(|| {
                panic!("routing source {src} is not in cluster {}", self.cluster_id)
            });
            let dst_rank = self.ids.rank(dst).unwrap_or_else(|| {
                panic!(
                    "routing destination {dst} is not in cluster {}",
                    self.cluster_id
                )
            });
            send_load.add(src_rank, words_per_message);
            recv_load.add(dst_rank, words_per_message);
            delivered[dst_rank].push((src, payload));
        }
        let max_send = send_load.max();
        let max_recv = recv_load.max();
        let rounds = self
            .policy
            .routing_rounds(self.n, max_send.max(max_recv), self.bandwidth);
        ledger.charge(PrimitiveKind::IntraClusterRouting, rounds);
        (
            delivered,
            RoutingOutcome {
                max_send,
                max_recv,
                rounds,
                messages: count,
            },
        )
    }

    /// Rounds that a load of `max_load` words per node would cost under this
    /// router, without performing any delivery. Used by phases that only need
    /// the round charge (e.g. when the data is already in place locally).
    pub fn rounds_for_load(&self, max_load: u64) -> u64 {
        self.policy.routing_rounds(self.n, max_load, self.bandwidth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    fn setup() -> (Cluster, Graph) {
        let g = gen::complete_graph(10);
        (Cluster::new(0, (0..10).collect()), g)
    }

    #[test]
    fn routes_and_charges() {
        let (cluster, g) = setup();
        let router = ClusterRouter::new(&cluster, &g, 10, ChargePolicy::bare());
        assert_eq!(router.bandwidth(), 9);
        let mut ledger = CostLedger::new();
        let messages: Vec<(u32, u32, u64)> =
            (0..20).map(|i| (i % 10, (i + 1) % 10, i as u64)).collect();
        let (delivered, outcome) = router.route(messages, 1, &mut ledger);
        assert_eq!(outcome.messages, 20);
        assert_eq!(outcome.max_send, 2);
        assert_eq!(outcome.max_recv, 2);
        assert_eq!(outcome.rounds, 1);
        assert_eq!(ledger.for_kind(PrimitiveKind::IntraClusterRouting), 1);
        let total: usize = delivered.iter().map(Vec::len).sum();
        assert_eq!(total, 20);
        // Each destination received from the correct sources (on the
        // identity-id cluster 0..10, rank == vertex).
        for (dst_rank, items) in delivered.iter().enumerate() {
            for (src, _) in items {
                assert_eq!(((src + 1) % 10) as usize, dst_rank);
            }
        }
    }

    #[test]
    fn heavy_load_costs_more_rounds() {
        let (cluster, g) = setup();
        let router = ClusterRouter::new(&cluster, &g, 10, ChargePolicy::bare());
        let mut ledger = CostLedger::new();
        // Node 0 sends 90 messages: load 90, bandwidth 9 → 10 rounds.
        let messages: Vec<(u32, u32, ())> =
            (0..90).map(|i| (0u32, 1 + (i % 9) as u32, ())).collect();
        let (_, outcome) = router.route(messages, 1, &mut ledger);
        assert_eq!(outcome.rounds, 10);
        assert_eq!(router.rounds_for_load(90), 10);
    }

    #[test]
    fn empty_routing_is_cheap() {
        let (cluster, g) = setup();
        let router = ClusterRouter::new(&cluster, &g, 10, ChargePolicy::bare());
        let mut ledger = CostLedger::new();
        let (delivered, outcome) = router.route(Vec::<(u32, u32, u8)>::new(), 1, &mut ledger);
        assert!(delivered.iter().all(Vec::is_empty));
        assert_eq!(outcome.rounds, 1);
    }

    #[test]
    fn deliveries_are_rank_indexed_on_sparse_id_clusters() {
        // A cluster whose vertex ids are far from dense: rank indexing must
        // follow the sorted-id order of Lemma 2.5.
        let g = gen::complete_graph(40);
        let cluster = Cluster::new(3, vec![31, 4, 17]);
        let router = ClusterRouter::new(&cluster, &g, 40, ChargePolicy::bare());
        let mut ledger = CostLedger::new();
        let (delivered, _) = router.route(vec![(4u32, 31u32, 'x'), (17, 4, 'y')], 1, &mut ledger);
        assert_eq!(router.ids().rank(31), Some(2));
        assert_eq!(delivered[2], vec![(4, 'x')]);
        assert_eq!(delivered[0], vec![(17, 'y')]);
        assert!(delivered[1].is_empty());
    }

    #[test]
    #[should_panic(expected = "not in cluster")]
    fn outside_source_panics() {
        let (cluster, g) = setup();
        let router = ClusterRouter::new(&cluster, &g, 20, ChargePolicy::bare());
        let mut ledger = CostLedger::new();
        router.route(vec![(15u32, 0u32, ())], 1, &mut ledger);
    }

    #[test]
    fn polylog_policy_multiplies() {
        let (cluster, g) = setup();
        let router = ClusterRouter::new(&cluster, &g, 1024, ChargePolicy::default());
        // log2(1024) = 10 → factor 10.
        assert_eq!(router.rounds_for_load(9), 10);
    }
}
