//! Expander decomposition substrate for CONGEST clique listing.
//!
//! The clique-listing algorithms of Censor-Hillel, Le Gall and Leitersdorf
//! (PODC 2020) consume the δ-expander decomposition interface of Chang, Pettie
//! and Zhang (Definition 2.2 of the paper): the edge set is split into
//! `E = E_m ∪ E_s ∪ E_r` where
//!
//! * every connected component of `E_m` with more than one node is an
//!   `n^δ`-**cluster** — all its nodes have `E_m`-degree `Ω(n^δ)` and the
//!   component mixes in polylogarithmic time;
//! * `E_s` has arboricity at most `n^δ` and comes with an orientation of
//!   out-degree at most `n^δ`;
//! * `E_r` contains at most `|E|/6` leftover edges, to be handled by later
//!   iterations of the calling algorithm.
//!
//! This crate builds such a decomposition ([`decomposition::decompose`]),
//! validates its guarantees ([`decomposition::Decomposition::verify`]),
//! assigns per-cluster dense identifiers (Lemma 2.5, [`ids`]) and provides the
//! load-accounted intra-cluster router of Theorem 2.4 ([`routing`]).
//!
//! The construction itself is a sequential peeling + sweep-cut procedure whose
//! *round cost* is charged according to Theorem 2.3 (`~O(n^{1-δ})`); see
//! `DESIGN.md` §2 for the substitution argument.
//!
//! # Example
//!
//! ```
//! use expander::{decompose, DecompositionConfig};
//! use graphcore::gen;
//!
//! let graph = gen::erdos_renyi(200, 0.3, 7);
//! let decomposition = decompose(&graph, 0.5, &DecompositionConfig::default(), 1);
//! decomposition.verify(&graph).expect("decomposition guarantees hold");
//! assert!(decomposition.er.len() <= graph.num_edges() / 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod decomposition;
pub mod ids;
pub mod routing;

pub use cluster::Cluster;
pub use decomposition::{decompose, Decomposition, DecompositionConfig, Violation};
pub use ids::{ClusterIds, DenseTable, PairTable};
pub use routing::{ClusterRouter, RoutingOutcome};
