//! Canonical undirected edges and edge sets.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;

/// An undirected edge in canonical form (`u < v`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Edge {
    u: u32,
    v: u32,
}

impl Edge {
    /// Creates a canonical edge from two distinct endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` (self-loops are not representable).
    pub fn new(a: u32, b: u32) -> Self {
        assert!(a != b, "self-loop {a}-{b} is not a valid edge");
        Edge {
            u: a.min(b),
            v: a.max(b),
        }
    }

    /// The smaller endpoint.
    pub fn u(self) -> u32 {
        self.u
    }

    /// The larger endpoint.
    pub fn v(self) -> u32 {
        self.v
    }

    /// Both endpoints as a tuple `(min, max)`.
    pub fn endpoints(self) -> (u32, u32) {
        (self.u, self.v)
    }

    /// Whether `x` is one of the endpoints.
    pub fn touches(self, x: u32) -> bool {
        self.u == x || self.v == x
    }

    /// The endpoint other than `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint.
    pub fn other(self, x: u32) -> u32 {
        if self.u == x {
            self.v
        } else if self.v == x {
            self.u
        } else {
            panic!("{x} is not an endpoint of {self:?}")
        }
    }
}

impl fmt::Debug for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.u, self.v)
    }
}

impl From<(u32, u32)> for Edge {
    fn from((a, b): (u32, u32)) -> Self {
        Edge::new(a, b)
    }
}

/// A set of undirected edges with O(1) membership queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeSet {
    inner: HashSet<Edge>,
}

impl EdgeSet {
    /// Creates an empty edge set.
    pub fn new() -> Self {
        EdgeSet::default()
    }

    /// Creates an edge set with capacity for `cap` edges.
    pub fn with_capacity(cap: usize) -> Self {
        EdgeSet {
            inner: HashSet::with_capacity(cap),
        }
    }

    /// Inserts an edge; returns `true` if it was not present.
    pub fn insert(&mut self, edge: Edge) -> bool {
        self.inner.insert(edge)
    }

    /// Removes an edge; returns `true` if it was present.
    pub fn remove(&mut self, edge: Edge) -> bool {
        self.inner.remove(&edge)
    }

    /// Whether the edge is in the set.
    pub fn contains(&self, edge: Edge) -> bool {
        self.inner.contains(&edge)
    }

    /// Whether the undirected pair `(a, b)` is in the set.
    pub fn contains_pair(&self, a: u32, b: u32) -> bool {
        a != b && self.inner.contains(&Edge::new(a, b))
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Iterates over the edges in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = Edge> + '_ {
        self.inner.iter().copied()
    }

    /// Returns the union of `self` and `other`.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            inner: self.inner.union(&other.inner).copied().collect(),
        }
    }

    /// Returns the edges of `self` not present in `other`.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        EdgeSet {
            inner: self.inner.difference(&other.inner).copied().collect(),
        }
    }

    /// Whether `self` and `other` share no edge.
    pub fn is_disjoint(&self, other: &EdgeSet) -> bool {
        self.inner.is_disjoint(&other.inner)
    }

    /// Returns the edges as a sorted vector (deterministic order).
    pub fn to_sorted_vec(&self) -> Vec<Edge> {
        let mut v: Vec<Edge> = self.inner.iter().copied().collect();
        v.sort_unstable();
        v
    }
}

impl FromIterator<Edge> for EdgeSet {
    fn from_iter<I: IntoIterator<Item = Edge>>(iter: I) -> Self {
        EdgeSet {
            inner: iter.into_iter().collect(),
        }
    }
}

impl Extend<Edge> for EdgeSet {
    fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        self.inner.extend(iter);
    }
}

impl<'a> IntoIterator for &'a EdgeSet {
    type Item = Edge;
    type IntoIter = std::iter::Copied<std::collections::hash_set::Iter<'a, Edge>>;

    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        let e = Edge::new(7, 3);
        assert_eq!(e.endpoints(), (3, 7));
        assert_eq!(e, Edge::new(3, 7));
        assert_eq!(e.other(3), 7);
        assert_eq!(e.other(7), 3);
        assert!(e.touches(3) && e.touches(7) && !e.touches(5));
        assert_eq!(Edge::from((7, 3)), e);
        assert_eq!(format!("{e:?}"), "{3, 7}");
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_rejected() {
        Edge::new(4, 4);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn other_requires_endpoint() {
        Edge::new(1, 2).other(3);
    }

    #[test]
    fn edge_set_operations() {
        let mut a = EdgeSet::new();
        assert!(a.is_empty());
        assert!(a.insert(Edge::new(1, 2)));
        assert!(!a.insert(Edge::new(2, 1)));
        a.insert(Edge::new(2, 3));
        assert_eq!(a.len(), 2);
        assert!(a.contains_pair(2, 1));
        assert!(!a.contains_pair(1, 1));
        assert!(!a.contains_pair(1, 3));

        let b: EdgeSet = [Edge::new(2, 3), Edge::new(4, 5)].into_iter().collect();
        let uni = a.union(&b);
        assert_eq!(uni.len(), 3);
        let diff = a.difference(&b);
        assert_eq!(diff.len(), 1);
        assert!(diff.contains(Edge::new(1, 2)));
        assert!(!a.is_disjoint(&b));
        assert!(diff.is_disjoint(&b));

        assert!(a.remove(Edge::new(1, 2)));
        assert!(!a.remove(Edge::new(1, 2)));

        let sorted = uni.to_sorted_vec();
        assert_eq!(
            sorted,
            vec![Edge::new(1, 2), Edge::new(2, 3), Edge::new(4, 5)]
        );
    }
}
