//! Dense multipartite (Turán-like) graphs, with optional planted cliques.
//!
//! A complete or dense `(p−1)`-partite graph contains **no** `K_p` at all, yet
//! has arboricity `Θ(n)`. These are the natural hard-but-checkable workloads
//! for `K_p` listing experiments: the heavy/light, decomposition and
//! reshuffling machinery is exercised at full load while the output (and the
//! ground-truth enumeration needed to verify it) stays small. Planting a few
//! `K_p` instances on top gives the algorithms something to find.

use super::planted::PlantedClique;
use crate::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Samples a random `parts`-partite graph on `n` vertices: vertices are split
/// into `parts` classes of (nearly) equal size and every cross-class pair is
/// an edge independently with probability `density`.
///
/// # Panics
///
/// Panics if `parts == 0` or `density` is not in `[0, 1]`.
pub fn multipartite(n: usize, parts: usize, density: f64, seed: u64) -> Graph {
    assert!(parts > 0, "need at least one part");
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = SmallRng::seed_from_u64(seed);
    let class = |v: usize| v % parts;
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            if class(u) != class(v) && rng.gen::<f64>() < density {
                edges.push((u as u32, v as u32));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// The standard workload of the listing experiments: a dense `(p−1)`-partite
/// background (which is `K_p`-free) with `planted` vertex-disjoint `K_p`
/// instances added on top.
///
/// Returns the graph and the planted cliques.
///
/// # Panics
///
/// Panics if `p < 3` or the planted cliques do not fit (`planted * p > n`).
pub fn clique_listing_workload(
    n: usize,
    p: usize,
    density: f64,
    planted: usize,
    seed: u64,
) -> (Graph, Vec<PlantedClique>) {
    assert!(p >= 3, "clique size must be at least 3");
    assert!(planted * p <= n, "planted cliques do not fit");
    let background = multipartite(n, p - 1, density, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xABCD_EF01);
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    vertices.shuffle(&mut rng);
    let mut cliques = Vec::with_capacity(planted);
    let mut planted_edges = Vec::new();
    for c in 0..planted {
        let mut members: Vec<u32> = vertices[c * p..(c + 1) * p].to_vec();
        members.sort_unstable();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                planted_edges.push((u, v));
            }
        }
        cliques.push(PlantedClique { vertices: members });
    }
    let graph = background
        .with_edges_added(&planted_edges)
        .expect("planted vertices are in range");
    (graph, cliques)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques;

    #[test]
    fn multipartite_is_clique_free() {
        let g = multipartite(90, 3, 1.0, 1);
        assert_eq!(cliques::count_cliques(&g, 4), 0);
        assert!(cliques::count_cliques(&g, 3) > 0);
        // Balanced classes: every vertex has ~2n/3 neighbours at density 1.
        assert!(g.degree(0) == 60);
    }

    #[test]
    fn density_controls_edge_count() {
        let dense = multipartite(60, 3, 0.9, 2);
        let sparse = multipartite(60, 3, 0.2, 2);
        assert!(dense.num_edges() > 3 * sparse.num_edges());
    }

    #[test]
    fn workload_contains_exactly_the_planted_cliques_when_background_is_clique_free() {
        let (g, planted) = clique_listing_workload(80, 4, 0.6, 3, 7);
        assert_eq!(planted.len(), 3);
        let all = cliques::list_cliques(&g, 4);
        for c in &planted {
            assert!(all.contains(&c.vertices));
        }
        // The background is K4-free, but planted edges can combine with the
        // background to create a handful of extra K4s; all of them must
        // contain at least two planted vertices.
        assert!(all.len() >= 3);
    }

    #[test]
    fn deterministic() {
        assert_eq!(multipartite(40, 3, 0.5, 9), multipartite(40, 3, 0.5, 9));
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        multipartite(10, 0, 0.5, 0);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn too_many_planted_panics() {
        clique_listing_workload(10, 4, 0.5, 4, 0);
    }
}
