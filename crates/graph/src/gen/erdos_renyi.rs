//! Erdős–Rényi random graphs.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples `G(n, p)`: every unordered pair becomes an edge independently with
/// probability `p`.
///
/// Sampling is done by geometric skipping over the `n(n-1)/2` pairs, so the
/// cost is `O(n + m)` rather than `O(n^2)` for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not in `[0, 1]` or is NaN.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    if n < 2 || p == 0.0 {
        return Graph::new(n);
    }
    if p >= 1.0 {
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                edges.push((u, v));
            }
        }
        return Graph::from_edges(n, &edges).expect("generated edges are in range");
    }

    // Geometric skipping (Batagelj–Brandes): iterate over pair index space.
    let log_q = (1.0 - p).ln();
    let total_pairs = (n as u64) * (n as u64 - 1) / 2;
    let mut idx: i64 = -1;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        idx += skip;
        if idx as u64 >= total_pairs {
            break;
        }
        let (u, v) = pair_from_index(idx as u64, n as u64);
        edges.push((u as u32, v as u32));
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// Samples a uniform graph with exactly `m` edges (the `G(n, m)` model),
/// clamping `m` to the number of available pairs.
pub fn erdos_renyi_with_edges(n: usize, m: usize, seed: u64) -> Graph {
    let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    let m = m.min(total_pairs);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut chosen = std::collections::HashSet::with_capacity(m);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let idx = rng.gen_range(0..total_pairs as u64);
        if chosen.insert(idx) {
            let (u, v) = pair_from_index(idx, n as u64);
            edges.push((u as u32, v as u32));
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// Maps a linear index in `[0, n(n-1)/2)` to the corresponding unordered pair
/// `(u, v)` with `u < v`, in row-major order.
fn pair_from_index(idx: u64, n: u64) -> (u64, u64) {
    // Row u contributes (n - 1 - u) pairs. Find u by walking rows; this is
    // O(n) worst case but amortised O(1) per edge because consecutive indices
    // fall in nearby rows. For clarity we use direct computation via the
    // quadratic formula instead.
    let idxf = idx as f64;
    let nf = n as f64;
    // Solve u such that u*n - u*(u+1)/2 <= idx < (u+1)*n - (u+1)*(u+2)/2.
    let mut u =
        ((2.0 * nf - 1.0 - ((2.0 * nf - 1.0).powi(2) - 8.0 * idxf).sqrt()) / 2.0).floor() as u64;
    // Guard against floating point edge cases.
    loop {
        let row_start = u * n - u * (u + 1) / 2;
        if row_start > idx {
            u -= 1;
            continue;
        }
        let next_start = (u + 1) * n - (u + 1) * (u + 2) / 2;
        if idx >= next_start {
            u += 1;
            continue;
        }
        let v = u + 1 + (idx - row_start);
        return (u, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_is_a_bijection() {
        let n = 13u64;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = pair_from_index(idx, n);
            assert!(u < v && v < n, "bad pair ({u},{v}) for idx {idx}");
            assert!(seen.insert((u, v)), "pair ({u},{v}) repeated");
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
        assert_eq!(erdos_renyi(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn gnp_density_is_roughly_right() {
        let n = 400;
        let p = 0.1;
        let g = erdos_renyi(n, p, 7);
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < 0.15 * expected,
            "m = {m}, expected ≈ {expected}"
        );
    }

    #[test]
    fn gnp_is_deterministic_per_seed() {
        let a = erdos_renyi(50, 0.3, 99);
        let b = erdos_renyi(50, 0.3, 99);
        let c = erdos_renyi(50, 0.3, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn gnm_has_exact_edge_count() {
        let g = erdos_renyi_with_edges(30, 100, 5);
        assert_eq!(g.num_edges(), 100);
        let clamped = erdos_renyi_with_edges(5, 1000, 5);
        assert_eq!(clamped.num_edges(), 10);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_probability_panics() {
        erdos_renyi(5, 1.5, 0);
    }
}
