//! Barabási–Albert preferential attachment graphs.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples a Barabási–Albert preferential-attachment graph: starting from a
/// small clique on `m0 = m + 1` vertices, every new vertex attaches to `m`
/// distinct existing vertices chosen with probability proportional to their
/// degree.
///
/// These graphs have a skewed degree distribution and small arboricity, which
/// exercises the heavy/light classification of the listing algorithm.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m >= 1, "attachment parameter m must be at least 1");
    assert!(n > m, "need more vertices than the attachment parameter");
    let mut rng = SmallRng::seed_from_u64(seed);
    let m0 = m + 1;
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(m0 * (m0 - 1) / 2 + (n - m0) * m);
    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it realises degree-proportional sampling.
    let mut endpoints: Vec<u32> = Vec::new();
    for u in 0..m0 as u32 {
        for v in (u + 1)..m0 as u32 {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in m0..n {
        let v = v as u32;
        // BTreeSet keeps iteration order deterministic, which keeps the whole
        // generator deterministic for a fixed seed.
        let mut chosen = std::collections::BTreeSet::new();
        // Choose m distinct targets by repeated degree-proportional sampling.
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            chosen.insert(t);
            guard += 1;
        }
        // Extremely unlikely fallback: fill with arbitrary earlier vertices.
        let mut fill = 0u32;
        while chosen.len() < m {
            chosen.insert(fill);
            fill += 1;
        }
        for &t in &chosen {
            edges.push((v, t));
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_count_matches_model() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 5);
        let m0 = m + 1;
        let expected = m0 * (m0 - 1) / 2 + (n - m0) * m;
        assert_eq!(g.num_edges(), expected);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = barabasi_albert(500, 2, 7);
        // The maximum degree should be far above the attachment parameter.
        assert!(g.max_degree() > 10, "max degree {}", g.max_degree());
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 1), barabasi_albert(100, 2, 1));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_m_panics() {
        barabasi_albert(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn too_small_n_panics() {
        barabasi_albert(2, 2, 0);
    }
}
