//! Classic deterministic graph families, used as corner cases in tests and as
//! building blocks for workloads.

use crate::Graph;

/// The complete graph `K_n`.
pub fn complete_graph(n: usize) -> Graph {
    let mut edges = Vec::with_capacity(n * n.saturating_sub(1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// The complete bipartite graph `K_{a,b}` with sides `0..a` and `a..a+b`.
pub fn complete_bipartite(a: usize, b: usize) -> Graph {
    let mut edges = Vec::with_capacity(a * b);
    for u in 0..a as u32 {
        for v in 0..b as u32 {
            edges.push((u, a as u32 + v));
        }
    }
    Graph::from_edges(a + b, &edges).expect("generated edges are in range")
}

/// The cycle `C_n` (empty for `n < 3`).
pub fn cycle_graph(n: usize) -> Graph {
    if n < 3 {
        return Graph::new(n);
    }
    let mut edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    edges.push((n as u32 - 1, 0));
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// The path `P_n`.
pub fn path_graph(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (i - 1, i)).collect();
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

/// The star `S_n`: vertex 0 connected to `1..n`.
pub fn star_graph(n: usize) -> Graph {
    let edges: Vec<(u32, u32)> = (1..n as u32).map(|i| (0, i)).collect();
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques;

    #[test]
    fn complete_graph_counts() {
        let g = complete_graph(6);
        assert_eq!(g.num_edges(), 15);
        assert_eq!(cliques::count_cliques(&g, 3), 20);
        assert_eq!(cliques::count_cliques(&g, 4), 15);
        assert_eq!(cliques::count_cliques(&g, 6), 1);
        assert_eq!(cliques::count_cliques(&g, 7), 0);
    }

    #[test]
    fn bipartite_is_triangle_free() {
        let g = complete_bipartite(4, 5);
        assert_eq!(g.num_edges(), 20);
        assert_eq!(cliques::count_cliques(&g, 3), 0);
    }

    #[test]
    fn small_families() {
        assert_eq!(cycle_graph(2).num_edges(), 0);
        assert_eq!(cycle_graph(5).num_edges(), 5);
        assert_eq!(path_graph(5).num_edges(), 4);
        assert_eq!(star_graph(5).num_edges(), 4);
        assert_eq!(star_graph(5).degree(0), 4);
        assert_eq!(path_graph(0).num_vertices(), 0);
    }
}
