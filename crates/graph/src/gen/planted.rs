//! Random graphs with planted cliques.
//!
//! The listing experiments need inputs that are sparse overall but contain a
//! known set of `K_p` instances; planting cliques into an Erdős–Rényi
//! background provides exactly that while keeping the ground truth cheap to
//! enumerate.

use super::erdos_renyi;
use crate::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Description of one planted clique.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlantedClique {
    /// The vertices of the planted clique, sorted.
    pub vertices: Vec<u32>,
}

/// Plants `count` vertex-disjoint cliques of size `size` into an
/// Erdős–Rényi background `G(n, background_p)`.
///
/// Returns the graph together with the planted cliques (the graph may of
/// course contain additional cliques formed by background edges).
///
/// # Panics
///
/// Panics if `count * size > n` (the cliques would not fit disjointly) or if
/// `size < 2`.
pub fn planted_cliques(
    n: usize,
    background_p: f64,
    count: usize,
    size: usize,
    seed: u64,
) -> (Graph, Vec<PlantedClique>) {
    assert!(size >= 2, "a clique needs at least two vertices");
    assert!(
        count * size <= n,
        "cannot plant {count} disjoint cliques of size {size} into {n} vertices"
    );
    let background = erdos_renyi(n, background_p, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let mut vertices: Vec<u32> = (0..n as u32).collect();
    vertices.shuffle(&mut rng);

    let mut planted = Vec::with_capacity(count);
    let mut planted_edges = Vec::new();
    for c in 0..count {
        let mut members: Vec<u32> = vertices[c * size..(c + 1) * size].to_vec();
        members.sort_unstable();
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                planted_edges.push((u, v));
            }
        }
        planted.push(PlantedClique { vertices: members });
    }
    let graph = background
        .with_edges_added(&planted_edges)
        .expect("planted vertices are in range");
    (graph, planted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cliques;

    #[test]
    fn planted_cliques_are_present() {
        let (g, planted) = planted_cliques(60, 0.02, 3, 5, 11);
        assert_eq!(planted.len(), 3);
        for clique in &planted {
            assert_eq!(clique.vertices.len(), 5);
            for (i, &u) in clique.vertices.iter().enumerate() {
                for &v in &clique.vertices[i + 1..] {
                    assert!(g.has_edge(u, v), "planted edge {u}-{v} missing");
                }
            }
        }
        // Each planted K5 contains 5 distinct K4 instances, so the K4 count is
        // at least 3 * 5 = 15 (background may add more).
        assert!(cliques::count_cliques(&g, 4) >= 15);
    }

    #[test]
    fn planted_cliques_are_disjoint() {
        let (_, planted) = planted_cliques(40, 0.0, 4, 4, 2);
        let mut all: Vec<u32> = planted.iter().flat_map(|c| c.vertices.clone()).collect();
        let before = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), before);
    }

    #[test]
    #[should_panic(expected = "cannot plant")]
    fn too_many_cliques_panics() {
        planted_cliques(10, 0.1, 3, 5, 0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_clique_panics() {
        planted_cliques(10, 0.1, 1, 1, 0);
    }
}
