//! Synthetic workload generators.
//!
//! All generators are deterministic given a seed, so every experiment in the
//! benchmark harness is reproducible. The families mirror the workloads the
//! paper's setting motivates: sparse random graphs where cliques are rare
//! (Erdős–Rényi at various densities), graphs with planted `K_p` instances,
//! skewed-degree graphs (Barabási–Albert, RMAT) that stress the heavy/light
//! machinery, and dense/classic families used as corner cases in tests.

mod classic;
mod erdos_renyi;
mod multipartite;
mod planted;
mod preferential;
mod regular;
mod rmat;

pub use classic::{complete_bipartite, complete_graph, cycle_graph, path_graph, star_graph};
pub use erdos_renyi::{erdos_renyi, erdos_renyi_with_edges};
pub use multipartite::{clique_listing_workload, multipartite};
pub use planted::{planted_cliques, PlantedClique};
pub use preferential::barabasi_albert;
pub use regular::random_regular;
pub use rmat::rmat;

use crate::Graph;

/// A named workload: a graph together with the parameters that produced it,
/// so experiment output can be labelled unambiguously.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Human-readable description, e.g. `"er(n=1000, p=0.05, seed=1)"`.
    pub label: String,
    /// The generated graph.
    pub graph: Graph,
}

impl Workload {
    /// Wraps a graph with a label.
    pub fn new(label: impl Into<String>, graph: Graph) -> Self {
        Workload {
            label: label.into(),
            graph,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_labels() {
        let w = Workload::new("er", erdos_renyi(10, 0.5, 3));
        assert_eq!(w.label, "er");
        assert_eq!(w.graph.num_vertices(), 10);
    }
}
