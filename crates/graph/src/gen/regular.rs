//! Random regular graphs via the pairing (configuration) model.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Samples a random `d`-regular simple graph on `n` vertices using the
/// configuration model with retries.
///
/// `n * d` must be even and `d < n`. The returned graph is always simple; on
/// the rare failures of the pairing model (collisions or self-loops that
/// cannot be resolved) a new attempt is made with a perturbed seed, so for
/// feasible `(n, d)` the function always returns, possibly with a handful of
/// vertices missing one unit of degree if the final attempt still has a small
/// number of conflicting pairs (which we then drop). For the sizes used in the
/// benchmarks (`d ≤ √n`) the degree sequence is exact with overwhelming
/// probability.
///
/// # Panics
///
/// Panics if `n * d` is odd or `d >= n`.
pub fn random_regular(n: usize, d: usize, seed: u64) -> Graph {
    assert!(d < n, "degree {d} must be smaller than n = {n}");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    if d == 0 || n == 0 {
        return Graph::new(n);
    }
    for attempt in 0..32u64 {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_add(attempt.wrapping_mul(0x9E37)));
        // Stubs: d copies of each vertex.
        let mut stubs: Vec<u32> = (0..n as u32)
            .flat_map(|v| std::iter::repeat_n(v, d))
            .collect();
        stubs.shuffle(&mut rng);
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d / 2);
        let mut seen = std::collections::HashSet::with_capacity(n * d / 2);
        let mut ok = true;
        for pair in stubs.chunks(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || !seen.insert((u.min(v), u.max(v))) {
                ok = false;
                break;
            }
            edges.push((u, v));
        }
        if ok {
            return Graph::from_edges(n, &edges).expect("generated edges are in range");
        }
    }
    // Fallback: build greedily and drop conflicting pairs. Degrees may be off
    // by a small amount, which is acceptable for workload generation.
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let mut stubs: Vec<u32> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    stubs.shuffle(&mut rng);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for pair in stubs.chunks(2) {
        if pair.len() < 2 {
            break;
        }
        let (u, v) = (pair[0], pair[1]);
        if u != v && seen.insert((u.min(v), u.max(v))) {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrees_are_regular() {
        let g = random_regular(100, 4, 3);
        let exact = (0..100u32).filter(|&v| g.degree(v) == 4).count();
        assert!(exact >= 95, "only {exact} vertices have exact degree");
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn zero_degree() {
        let g = random_regular(10, 0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn deterministic() {
        assert_eq!(random_regular(50, 6, 9), random_regular(50, 6, 9));
    }

    #[test]
    #[should_panic(expected = "must be even")]
    fn odd_total_degree_panics() {
        random_regular(5, 3, 0);
    }

    #[test]
    #[should_panic(expected = "smaller than")]
    fn degree_too_large_panics() {
        random_regular(4, 4, 0);
    }
}
