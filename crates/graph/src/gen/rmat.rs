//! RMAT (recursive matrix / Kronecker-style) graphs.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples an RMAT graph with `2^scale` vertices and approximately
/// `edge_factor * 2^scale` undirected edges, using the standard quadrant
/// probabilities `(a, b, c, d)` normalised to sum to 1.
///
/// RMAT graphs exhibit community structure and a heavy-tailed degree
/// distribution, which stresses the expander decomposition (dense clusters
/// amid a sparse periphery).
///
/// # Panics
///
/// Panics if `scale == 0` or all quadrant weights are zero.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    assert!(scale > 0, "scale must be positive");
    let (a, b, c, d) = probs;
    let total = a + b + c + d;
    assert!(total > 0.0, "at least one quadrant weight must be positive");
    let (a, b, c, _d) = (a / total, b / total, c / total, d / total);
    let n = 1usize << scale;
    let target_edges = edge_factor * n;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(target_edges);
    for _ in 0..target_edges {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.gen();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            edges.push((u as u32, v as u32));
        }
    }
    Graph::from_edges(n, &edges).expect("generated edges are in range")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_plausible() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19, 0.05), 3);
        assert_eq!(g.num_vertices(), 256);
        // Duplicates and self-loops reduce the count below the target.
        assert!(g.num_edges() > 256 * 3);
        assert!(g.num_edges() <= 256 * 8);
    }

    #[test]
    fn skewed_probabilities_give_skewed_degrees() {
        let g = rmat(9, 8, (0.7, 0.1, 0.1, 0.1), 3);
        assert!(g.max_degree() > 4 * g.average_degree() as usize);
    }

    #[test]
    fn deterministic() {
        let p = (0.45, 0.25, 0.15, 0.15);
        assert_eq!(rmat(7, 4, p, 11), rmat(7, 4, p, 11));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_panics() {
        rmat(0, 1, (0.25, 0.25, 0.25, 0.25), 0);
    }

    #[test]
    #[should_panic(expected = "quadrant weight")]
    fn zero_weights_panic() {
        rmat(3, 1, (0.0, 0.0, 0.0, 0.0), 0);
    }
}
