//! Graph substrate for the distributed clique-listing reproduction.
//!
//! This crate is self-contained (no external graph library) and provides
//! everything the CONGEST algorithms need from the "sequential world":
//!
//! * [`Graph`]: compact undirected graphs in CSR form (flat offset + neighbour
//!   arrays, rows sorted by id) with linear-time edge-subgraph operations and
//!   merge-based neighbourhood intersections;
//! * [`gen`]: synthetic workload generators (Erdős–Rényi, planted cliques,
//!   random regular, Barabási–Albert, RMAT/Kronecker, classic families);
//! * [`churn`]: validated, canonicalised edge insert/delete batches and their
//!   incremental application — touched CSR rows are merged in place, untouched
//!   rows copied, and the result is guaranteed equal to a from-scratch build
//!   of the mutated edge list;
//! * [`orientation`]: degeneracy orderings, bounded out-degree orientations
//!   and arboricity bounds — the paper's algorithms are parameterised by an
//!   orientation with bounded out-degree;
//! * [`cliques`]: exact `K_p` enumeration — the sequential ground truth used
//!   to verify the distributed algorithms, plus its sharded parallel
//!   counterpart (feature `parallel`) whose merged output is byte-identical
//!   to the sequential order at any thread count;
//! * [`ordered_merge`]: the generic work-item orchestrator behind every
//!   deterministic parallel fan-out (root shards, cluster tasks): balanced
//!   contiguous planning, claim-window backpressure and ascending-index
//!   replay;
//! * [`spectral`]: conductance and lazy-random-walk mixing-time estimates used
//!   to validate the clusters produced by the expander decomposition;
//! * [`partition`]: random vertex partitions and the edge-count bound of
//!   Lemma 2.7.
//!
//! # Example
//!
//! ```
//! use graphcore::{gen, cliques};
//!
//! let graph = gen::erdos_renyi(100, 0.2, 42);
//! let triangles = cliques::list_cliques(&graph, 3);
//! assert_eq!(triangles.len(), cliques::count_cliques(&graph, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod cliques;
pub mod edge;
pub mod gen;
pub mod graph;
pub mod ordered_merge;
pub mod orientation;
pub mod partition;
pub mod spectral;
pub mod stats;

pub use churn::{AppliedBatch, BatchError, EdgeBatch};
pub use cliques::{KernelChoice, KernelStrategy};
pub use edge::{Edge, EdgeSet};
pub use graph::{intersect_sorted_into, Graph, GraphError};
pub use orientation::{Orientation, OrientedDag};

/// A clique, stored as a strictly increasing list of vertex identifiers.
///
/// Cliques are produced both by the sequential ground-truth enumerator and by
/// the distributed algorithms; keeping them in canonical (sorted) form makes
/// set comparison between the two trivial.
pub type Clique = Vec<u32>;

/// Canonicalises an arbitrary vertex list into a [`Clique`] (sorted, deduped).
pub fn canonical_clique(vertices: &[u32]) -> Clique {
    let mut c = vertices.to_vec();
    c.sort_unstable();
    c.dedup();
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_clique_sorts_and_dedups() {
        assert_eq!(canonical_clique(&[3, 1, 2, 1]), vec![1, 2, 3]);
        assert_eq!(canonical_clique(&[]), Vec::<u32>::new());
    }
}
