//! Conductance and mixing-time estimation.
//!
//! Definition 2.1 of the paper requires clusters whose mixing time is
//! polylogarithmic. The decomposition substrate validates its output with the
//! estimates implemented here: the conductance of candidate cuts and the
//! spectral gap of the lazy random walk, from which the mixing time follows
//! (up to constants) as `t_mix ≈ log(n) / gap`.

use crate::Graph;

/// Volume of a vertex set: sum of degrees (within `graph`).
pub fn volume(graph: &Graph, set: &[u32]) -> usize {
    set.iter().map(|&v| graph.degree(v)).sum()
}

/// Number of edges with exactly one endpoint in `set`.
pub fn cut_size(graph: &Graph, set: &[u32]) -> usize {
    let marker = membership(graph.num_vertices(), set);
    let mut cut = 0;
    for &v in set {
        for &w in graph.neighbors(v) {
            if !marker[w as usize] {
                cut += 1;
            }
        }
    }
    cut
}

/// Conductance of the cut `(set, V \ set)`: `cut / min(vol(set), vol(rest))`.
///
/// Returns `f64::INFINITY` when either side has zero volume (the cut is
/// degenerate and should not be used).
pub fn conductance(graph: &Graph, set: &[u32]) -> f64 {
    let vol_s = volume(graph, set);
    let vol_total = 2 * graph.num_edges();
    let vol_rest = vol_total.saturating_sub(vol_s);
    if vol_s == 0 || vol_rest == 0 {
        return f64::INFINITY;
    }
    cut_size(graph, set) as f64 / vol_s.min(vol_rest) as f64
}

/// Estimates the spectral gap `1 - λ₂` of the lazy random walk on the
/// subgraph induced by `vertices`, via power iteration with the stationary
/// component projected out.
///
/// Returns 0.0 if the induced subgraph is disconnected or has fewer than two
/// vertices with positive degree, since then the walk does not mix.
pub fn spectral_gap(graph: &Graph, vertices: &[u32]) -> f64 {
    match second_eigenpair(graph, vertices) {
        Some((lambda, _)) => (1.0 - lambda).clamp(0.0, 1.0),
        None => 0.0,
    }
}

/// Estimates the second eigenvalue and the corresponding eigenvector of the
/// lazy random walk on the subgraph induced by `vertices`.
///
/// The returned vector is aligned with `vertices` (entry `i` corresponds to
/// `vertices[i]`). Returns `None` when the induced subgraph is disconnected,
/// contains isolated vertices or has fewer than two vertices — in those cases
/// the walk does not mix and no meaningful second eigenpair exists.
///
/// The eigenvector is the input to the sweep-cut refinement used by the
/// expander decomposition: sorting vertices by their entry and scanning
/// prefixes finds a cut of conductance close to the best achievable
/// (Cheeger's inequality).
pub fn second_eigenpair(graph: &Graph, vertices: &[u32]) -> Option<(f64, Vec<f64>)> {
    let sub = graph.induced_keep_ids(vertices);
    let active: Vec<u32> = vertices
        .iter()
        .copied()
        .filter(|&v| sub.degree(v) > 0)
        .collect();
    if active.len() < 2 {
        return None;
    }
    // The walk must cover all of `vertices`: isolated vertices or
    // disconnection mean no mixing.
    if active.len() != vertices.len() || !is_connected(&sub, &active) {
        return None;
    }

    let k = active.len();
    // Remap the induced subgraph to dense indices 0..k once, so the power
    // iteration below walks flat arrays instead of paying a hash lookup per
    // neighbour per iteration. Row order and per-row neighbour order are
    // preserved, which keeps the floating-point summation order — and
    // therefore the returned eigenvector — bit-identical to the direct
    // iteration over the vertex-id graph.
    let mut position = vec![u32::MAX; sub.num_vertices()];
    for (i, &v) in active.iter().enumerate() {
        position[v as usize] = i as u32;
    }
    let mut row_offsets = Vec::with_capacity(k + 1);
    row_offsets.push(0usize);
    let mut row_targets: Vec<u32> = Vec::new();
    for &v in &active {
        for &w in sub.neighbors(v) {
            row_targets.push(position[w as usize]);
        }
        row_offsets.push(row_targets.len());
    }
    let degrees: Vec<f64> = active.iter().map(|&v| sub.degree(v) as f64).collect();
    let total_degree: f64 = degrees.iter().sum();
    // Stationary distribution of the lazy walk: π(v) ∝ deg(v).
    let pi: Vec<f64> = degrees.iter().map(|d| d / total_degree).collect();

    // Power iteration on P = 1/2 I + 1/2 D^{-1} A (row-stochastic), estimating
    // the second eigenvalue by projecting out the stationary left-eigenvector.
    // We work with the reversible walk, so we symmetrise using the π inner
    // product: project x ← x − (Σ π_v x_v) · 1.
    let mut x: Vec<f64> = (0..k)
        .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5)
        .collect();
    project_out_constant(&mut x, &pi);
    normalise(&mut x);
    let mut lambda = 0.0f64;
    let iterations = 200.max(4 * (k as f64).ln() as usize);
    let mut y = vec![0.0f64; k];
    for _ in 0..iterations {
        for i in 0..k {
            let mut acc = 0.5 * x[i];
            let d = degrees[i];
            for &j in &row_targets[row_offsets[i]..row_offsets[i + 1]] {
                acc += 0.5 * x[j as usize] / d;
            }
            y[i] = acc;
        }
        project_out_constant(&mut y, &pi);
        let norm = l2(&y);
        if norm < 1e-14 {
            // x was (numerically) in the span of the stationary vector:
            // the walk mixes essentially instantly.
            return Some((0.0, x));
        }
        lambda = norm / l2(&x).max(1e-300);
        for v in &mut y {
            *v /= norm;
        }
        // `y` is fully rewritten at the top of the next iteration, so the
        // buffers can simply trade places — no per-iteration allocation.
        std::mem::swap(&mut x, &mut y);
    }
    Some((lambda.clamp(0.0, 1.0), x))
}

/// Estimated mixing time of the lazy random walk on the subgraph induced by
/// `vertices`: `ln(n) / gap`, or `f64::INFINITY` if the gap is zero.
pub fn mixing_time_estimate(graph: &Graph, vertices: &[u32]) -> f64 {
    let gap = spectral_gap(graph, vertices);
    if gap <= 0.0 {
        return f64::INFINITY;
    }
    (vertices.len().max(2) as f64).ln() / gap
}

fn membership(n: usize, set: &[u32]) -> Vec<bool> {
    let mut marker = vec![false; n];
    for &v in set {
        marker[v as usize] = true;
    }
    marker
}

fn is_connected(graph: &Graph, vertices: &[u32]) -> bool {
    if vertices.is_empty() {
        return true;
    }
    let allowed = membership(graph.num_vertices(), vertices);
    let mut seen = vec![false; graph.num_vertices()];
    let mut stack = vec![vertices[0]];
    seen[vertices[0] as usize] = true;
    let mut count = 0;
    while let Some(v) = stack.pop() {
        count += 1;
        for &w in graph.neighbors(v) {
            if allowed[w as usize] && !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    count == vertices.len()
}

fn project_out_constant(x: &mut [f64], pi: &[f64]) {
    let mean: f64 = x.iter().zip(pi).map(|(a, p)| a * p).sum();
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalise(x: &mut [f64]) {
    let norm = l2(x);
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn volume_and_cut() {
        let g = gen::path_graph(4); // 0-1-2-3
        assert_eq!(volume(&g, &[1, 2]), 4);
        assert_eq!(cut_size(&g, &[1, 2]), 2);
        assert_eq!(cut_size(&g, &[0, 1, 2, 3]), 0);
        assert!((conductance(&g, &[1, 2]) - 2.0 / 2.0).abs() < 1e-12);
        assert!(conductance(&g, &[]).is_infinite());
    }

    #[test]
    fn complete_graph_mixes_fast() {
        let g = gen::complete_graph(20);
        let all: Vec<u32> = (0..20).collect();
        let gap = spectral_gap(&g, &all);
        assert!(gap > 0.3, "gap = {gap}");
        let t = mixing_time_estimate(&g, &all);
        assert!(t < 12.0, "mixing time {t}");
    }

    #[test]
    fn path_mixes_slowly() {
        let g = gen::path_graph(64);
        let all: Vec<u32> = (0..64).collect();
        let gap_path = spectral_gap(&g, &all);
        let gap_complete = spectral_gap(&gen::complete_graph(64), &all);
        assert!(
            gap_path < gap_complete / 10.0,
            "{gap_path} vs {gap_complete}"
        );
    }

    #[test]
    fn disconnected_sets_do_not_mix() {
        let g = gen::path_graph(6);
        // {0, 5} induces no edges.
        assert_eq!(spectral_gap(&g, &[0, 5]), 0.0);
        assert!(mixing_time_estimate(&g, &[0, 5]).is_infinite());
        // Singleton and empty sets.
        assert_eq!(spectral_gap(&g, &[2]), 0.0);
        assert_eq!(spectral_gap(&g, &[]), 0.0);
    }

    #[test]
    fn random_dense_graph_has_polylog_mixing() {
        let g = gen::erdos_renyi(128, 0.3, 5);
        let all: Vec<u32> = (0..128).collect();
        let t = mixing_time_estimate(&g, &all);
        let polylog = (128f64).ln().powi(2);
        assert!(t < 3.0 * polylog, "mixing time {t} not polylog ({polylog})");
    }
}
