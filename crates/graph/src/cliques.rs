//! Exact `K_p` enumeration: the sequential ground truth and its sharded
//! parallel counterpart.
//!
//! The enumerator follows the standard ordered-search scheme (kClist-style):
//! fix a degeneracy ordering, build the [`OrientedDag`] of later neighbours
//! once, and for every vertex `v` enumerate cliques inside its out-neighbour
//! set. Because that candidate set has size at most the degeneracy `k`, the
//! running time is `O(n · k^{p-1})` for a graph of degeneracy `k`.
//!
//! The hot loop is allocation-free: one candidate arena with a pre-sized
//! buffer per recursion depth is reused across the whole enumeration, and
//! candidate intersections are sorted merges over CSR rows — with a
//! word-packed adjacency-bitset fast path for high-degree vertices — instead
//! of per-element `O(log deg)` `has_edge` probes. Visiting a clique performs
//! zero heap allocations.
//!
//! The root set of the ordered search is embarrassingly parallel: each root
//! explores only its own later-neighbour DAG, so disjoint root ranges can be
//! enumerated independently. [`ShardPlan`] partitions the ordering into
//! contiguous, work-balanced shards and [`ShardedEnumerator`] runs the same
//! arena-based search over any single shard; with the `parallel` feature,
//! `for_each_clique_parallel_while` fans shards out over
//! [`std::thread::scope`] workers and replays the per-shard results in
//! ascending shard order, so the emission order is **byte-identical** to the
//! sequential enumeration regardless of thread count (see `DESIGN.md` §8).
//!
//! All of the search's build-once state — the degeneracy ordering, the
//! oriented DAG and the adjacency bitsets — lives in [`CliqueIndex`], an
//! owned, `Sync` artifact decoupled from any particular traversal. The
//! one-shot entry points build a private index per call; callers that answer
//! many queries against the same graph (the snapshot layer in the `query`
//! crate, the sharded engine path in `cliquelist`) build the index once and
//! share it across concurrent full, per-vertex and per-edge enumerations by
//! `&self` (see `DESIGN.md` §11).

use crate::orientation::{degeneracy_ordering, DegeneracyOrdering, OrientedDag};
use crate::{Clique, Graph};

#[path = "cliques_trie.rs"]
pub mod trie;

pub use trie::{KernelChoice, KernelStrategy, AUTO_TRIE_DEGENERACY, TRIE_NODE_WORD_BUDGET};

/// Ceiling on the adaptive bitset degree threshold (the value every graph
/// used before the threshold became adaptive).
///
/// Intersecting a candidate set `C` with the neighbourhood of `u` costs
/// `O(|C| + deg u)` as a sorted merge but only `O(|C|)` against a bitset, so
/// a bitset row is never slower to *probe* — the threshold exists purely to
/// bound the table's memory. [`bitset_threshold`] therefore starts from
/// [`MIN_BITSET_DEGREE_THRESHOLD`] and raises the bar only while the
/// qualifying rows overflow [`BITSET_WORD_BUDGET`], never past this ceiling.
const BITSET_DEGREE_THRESHOLD: usize = 64;

/// Floor of the adaptive bitset degree threshold: rows below this degree are
/// so short that the sorted merge is already a handful of comparisons and a
/// bitset row would waste `⌈n/64⌉` words on it.
const MIN_BITSET_DEGREE_THRESHOLD: usize = 8;

/// Picks the bitset degree threshold for `graph`: the smallest candidate in
/// `{8, 16, 32, 64}` whose qualifying rows fit [`BITSET_WORD_BUDGET`]
/// outright. Small and mid-size graphs get bitset rows for nearly every
/// vertex that matters (widening the `O(|C|)` probe fast path well below the
/// historical 64-degree bar); on graphs where even degree-64 rows overflow
/// the budget the ceiling is returned and [`NeighborBitsets::build`]'s
/// highest-degree-first truncation takes over, exactly as before. Pure in
/// the graph's degree sequence, so cold and incremental builds agree.
fn bitset_threshold(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    let stride = n.div_ceil(64);
    let mut threshold = MIN_BITSET_DEGREE_THRESHOLD;
    while threshold < BITSET_DEGREE_THRESHOLD {
        let qualifying = (0..n as u32)
            .filter(|&v| graph.degree(v) >= threshold)
            .count();
        if qualifying.saturating_mul(stride) <= BITSET_WORD_BUDGET {
            return threshold;
        }
        threshold *= 2;
    }
    BITSET_DEGREE_THRESHOLD
}

/// Total `u64` budget for the bitset table (16 MiB). Each row costs `⌈n/64⌉`
/// words, so on large graphs where most vertices clear the degree threshold
/// an unbounded table would be `O(n²/64)` — the budget caps the table at a
/// fixed size and hands the remaining vertices to the sorted-merge path,
/// which is correct either way (both paths produce the same candidate list).
const BITSET_WORD_BUDGET: usize = 1 << 21;

/// Word-packed adjacency rows for the high-degree vertices of a graph.
///
/// `row_of[v]` indexes into `words` (stride [`NeighborBitsets::stride`]) when
/// `deg(v) >= BITSET_DEGREE_THRESHOLD`, and is `u32::MAX` otherwise.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct NeighborBitsets {
    stride: usize,
    words: Vec<u64>,
    row_of: Vec<u32>,
}

impl NeighborBitsets {
    /// Builds bitsets for vertices of degree at least `threshold`, spending
    /// at most [`BITSET_WORD_BUDGET`] words. When the budget cannot cover
    /// every qualifying vertex, the highest-degree ones get the rows (they
    /// save the most merge work); the rest use the merge path.
    fn build(graph: &Graph, threshold: usize) -> Self {
        let n = graph.num_vertices();
        let stride = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut heavy: Vec<u32> = (0..n as u32)
            .filter(|&v| graph.degree(v) >= threshold.max(1))
            .collect();
        heavy.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        heavy.truncate(BITSET_WORD_BUDGET / stride.max(1));
        let mut words = vec![0u64; heavy.len() * stride];
        for (row, &v) in heavy.iter().enumerate() {
            row_of[v as usize] = row as u32;
            let base = row * stride;
            for &w in graph.neighbors(v) {
                words[base + (w as usize >> 6)] |= 1u64 << (w & 63);
            }
        }
        NeighborBitsets {
            stride,
            words,
            row_of,
        }
    }

    /// An empty table (every intersection falls back to the sorted merge).
    fn none(n: usize) -> Self {
        NeighborBitsets {
            stride: 0,
            words: Vec::new(),
            row_of: vec![u32::MAX; n],
        }
    }

    /// The bitset row of `v`, if `v` is above the degree threshold.
    fn row(&self, v: u32) -> Option<&[u64]> {
        let r = self.row_of[v as usize];
        if r == u32::MAX {
            None
        } else {
            let start = r as usize * self.stride;
            Some(&self.words[start..start + self.stride])
        }
    }

    /// Rebuilds the table for a mutated graph, reusing `old` rows verbatim.
    ///
    /// The heavy-vertex selection (degree threshold, budget truncation by
    /// `(Reverse(degree), v)`) is recomputed from scratch against the new
    /// degrees — it is the same code path as [`NeighborBitsets::build`], so
    /// the selection is identical to a cold build. Only the *row contents*
    /// are patched: a vertex whose adjacency is untouched by the batch and
    /// that already owned a row in `old` has its words copied verbatim; every
    /// other heavy vertex gets its row rebuilt from the CSR. Returns the
    /// table plus `(rows reused, rows rebuilt)`.
    fn patched(
        graph: &Graph,
        threshold: usize,
        old: &NeighborBitsets,
        touched: &[bool],
    ) -> (Self, usize, usize) {
        let n = graph.num_vertices();
        let stride = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut heavy: Vec<u32> = (0..n as u32)
            .filter(|&v| graph.degree(v) >= threshold.max(1))
            .collect();
        heavy.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        heavy.truncate(BITSET_WORD_BUDGET / stride.max(1));
        let mut words = vec![0u64; heavy.len() * stride];
        let (mut reused, mut rebuilt) = (0usize, 0usize);
        for (row, &v) in heavy.iter().enumerate() {
            row_of[v as usize] = row as u32;
            let base = row * stride;
            match old.row(v) {
                Some(old_row) if !touched[v as usize] && old.stride == stride => {
                    words[base..base + stride].copy_from_slice(old_row);
                    reused += 1;
                }
                _ => {
                    for &w in graph.neighbors(v) {
                        words[base + (w as usize >> 6)] |= 1u64 << (w & 63);
                    }
                    rebuilt += 1;
                }
            }
        }
        (
            NeighborBitsets {
                stride,
                words,
                row_of,
            },
            reused,
            rebuilt,
        )
    }
}

/// Writes `{w ∈ cand : w adjacent to u}` into `out` (cleared first),
/// preserving the sorted order of `cand`. Uses the bitset row of `u` when one
/// exists and a two-pointer merge with the CSR row otherwise; either way the
/// result is identical and nothing is allocated beyond `out`'s capacity.
fn intersect_candidates(
    graph: &Graph,
    bitsets: &NeighborBitsets,
    u: u32,
    cand: &[u32],
    out: &mut Vec<u32>,
) {
    if let Some(row) = bitsets.row(u) {
        out.clear();
        for &w in cand {
            if row[w as usize >> 6] >> (w & 63) & 1 == 1 {
                out.push(w);
            }
        }
    } else {
        crate::graph::intersect_sorted_into(cand, graph.neighbors(u), out);
    }
}

/// The build-once, query-many state of the ordered clique search: the
/// degeneracy ordering, its [`OrientedDag`] of later neighbours and the
/// high-degree adjacency bitsets, all owned and immutable.
///
/// An index is built from one graph and is only meaningful against that
/// graph: every query method takes the graph by reference so the index itself
/// stays free of lifetimes and can be stored next to the graph it describes
/// (the `query` crate's `GraphSnapshot` holds exactly that pair behind an
/// `Arc`). All state is read-only after construction, so one index serves any
/// number of concurrent enumerations — full listings, shards, per-vertex and
/// per-edge queries — by shared reference; each call allocates its own
/// candidate arena and scratch.
///
/// The index is `p`-independent: one build answers queries for every clique
/// size. Only [`ShardPlan`]s are per-`p`, and those are planned from the
/// index's DAG via [`ShardPlan::balanced`].
///
/// `PartialEq` compares the *entire* built state — ordering, DAG, bitset
/// table, out-degree bound — which is what lets the churn differential
/// battery assert that an incrementally patched index is structurally
/// identical to one built from scratch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliqueIndex {
    ordering: DegeneracyOrdering,
    dag: OrientedDag,
    bitsets: NeighborBitsets,
    max_out: usize,
}

/// What [`CliqueIndex::build_incremental`] managed to reuse: the adjacency
/// bitset rows copied verbatim from the previous index versus those rebuilt
/// from the mutated CSR. Surfaced through the `query` crate's `ChurnReport`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndexPatchStats {
    /// Heavy-vertex bitset rows copied from the previous index unchanged.
    pub bitset_rows_reused: usize,
    /// Heavy-vertex bitset rows rebuilt from the new adjacency.
    pub bitset_rows_rebuilt: usize,
}

impl CliqueIndex {
    /// Builds the index of `graph`: degeneracy ordering, oriented DAG and
    /// adjacency bitsets, in `O(n + m)` time plus the bounded bitset table.
    pub fn build(graph: &Graph) -> CliqueIndex {
        let ordering = degeneracy_ordering(graph);
        let dag = OrientedDag::from_ordering(graph, &ordering);
        let bitsets = NeighborBitsets::build(graph, bitset_threshold(graph));
        let max_out = dag.max_out_degree();
        CliqueIndex {
            ordering,
            dag,
            bitsets,
            max_out,
        }
    }

    /// Rebuilds the index for a mutated graph, reusing what the mutation
    /// provably did not change.
    ///
    /// `previous` must be the index of the pre-mutation graph and
    /// `touched[v]` must be `true` for every vertex whose adjacency row
    /// changed (both endpoints of every effectively inserted or deleted
    /// edge). The adjacency bitset rows of untouched heavy vertices are
    /// copied verbatim; the degeneracy ordering and oriented DAG are
    /// recomputed with the standard `O(n + m)` bucket pass, because the
    /// bucket algorithm's tie-breaking depends on its global push/pop history
    /// — a locally patched ordering would be a *valid* degeneracy ordering
    /// but not byte-identical to the from-scratch one, and byte-identity is
    /// the determinism contract (`DESIGN.md` §13).
    ///
    /// The returned index is guaranteed equal (`==`) to
    /// `CliqueIndex::build(graph)`.
    pub fn build_incremental(
        graph: &Graph,
        previous: &CliqueIndex,
        touched: &[bool],
    ) -> (CliqueIndex, IndexPatchStats) {
        debug_assert_eq!(touched.len(), graph.num_vertices());
        let ordering = degeneracy_ordering(graph);
        let dag = OrientedDag::from_ordering(graph, &ordering);
        let (bitsets, reused, rebuilt) =
            NeighborBitsets::patched(graph, bitset_threshold(graph), &previous.bitsets, touched);
        let max_out = dag.max_out_degree();
        (
            CliqueIndex {
                ordering,
                dag,
                bitsets,
                max_out,
            },
            IndexPatchStats {
                bitset_rows_reused: reused,
                bitset_rows_rebuilt: rebuilt,
            },
        )
    }

    /// The degeneracy ordering the search roots follow.
    pub fn ordering(&self) -> &DegeneracyOrdering {
        &self.ordering
    }

    /// The word-packed adjacency row of `v`, if `v` is above the bitset
    /// degree threshold (bit `w` set ⟺ `w` adjacent to `v`). Exposed so the
    /// property-test helpers can check bitset↔CSR agreement.
    pub fn bitset_row(&self, v: u32) -> Option<&[u64]> {
        self.bitsets.row(v)
    }

    /// The DAG of later neighbours under the degeneracy ordering.
    pub fn dag(&self) -> &OrientedDag {
        &self.dag
    }

    /// The degeneracy of the indexed graph (bounds every candidate set).
    pub fn degeneracy(&self) -> usize {
        self.ordering.degeneracy
    }

    /// A fresh per-call candidate arena: one pre-sized buffer per recursion
    /// depth. Capacities are hints (per-vertex/per-edge candidate sets may
    /// exceed the DAG out-degree bound and simply grow).
    fn arena(&self, p: usize) -> Vec<Vec<u32>> {
        (0..p.saturating_sub(1))
            .map(|_| Vec::with_capacity(self.max_out))
            .collect()
    }

    /// Resolves a [`KernelStrategy`] against this index's graph: explicit
    /// choices are honoured, `Auto` applies the degeneracy heuristic
    /// ([`AUTO_TRIE_DEGENERACY`]), and any trie choice whose largest
    /// candidate set would overflow [`TRIE_NODE_WORD_BUDGET`] falls back to
    /// the recursive kernel (both kernels emit identical bytes, so the
    /// fallback is purely a memory decision). Pure in the built index, so
    /// every enumeration over the same graph resolves the same way.
    pub fn resolve_kernel(&self, strategy: KernelStrategy) -> KernelChoice {
        match strategy.resolve(self.degeneracy()) {
            KernelChoice::Trie if trie::node_fits_budget(self.max_out) => KernelChoice::Trie,
            _ => KernelChoice::Recursive,
        }
    }

    /// [`for_each_clique_while`] against a prebuilt index: calls `visit` for
    /// every `p`-clique of `graph` in the deterministic sequential order
    /// until it declines; returns whether the enumeration completed. Runs
    /// the kernel [`KernelStrategy::Auto`] resolves to for this graph.
    ///
    /// `graph` must be the graph this index was built from.
    pub fn for_each_clique_while(
        &self,
        graph: &Graph,
        p: usize,
        visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        self.for_each_clique_while_with(graph, p, KernelStrategy::Auto, visit)
    }

    /// [`CliqueIndex::for_each_clique_while`] under an explicit
    /// [`KernelStrategy`]. The strategy affects wall-clock time only: both
    /// kernels emit the same cliques in the same order, byte for byte (the
    /// kernel differential battery enforces this), so callers may switch
    /// strategies freely without perturbing any downstream determinism
    /// contract.
    pub fn for_each_clique_while_with(
        &self,
        graph: &Graph,
        p: usize,
        strategy: KernelStrategy,
        mut visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if p < 3 {
            return small_p_while(graph, p, visit);
        }
        let mut stack: Vec<u32> = Vec::with_capacity(p);
        let mut scratch: Vec<u32> = Vec::with_capacity(p);
        match self.resolve_kernel(strategy) {
            KernelChoice::Trie => trie::TrieKernel::new().enumerate_roots(
                graph,
                &self.bitsets,
                &self.dag,
                p,
                &self.ordering.order,
                &mut stack,
                &mut scratch,
                &mut visit,
            ),
            KernelChoice::Recursive => {
                let mut arena = self.arena(p);
                enumerate_roots(
                    graph,
                    &self.bitsets,
                    &self.dag,
                    p,
                    &self.ordering.order,
                    &mut arena,
                    &mut stack,
                    &mut scratch,
                    &mut visit,
                )
            }
        }
    }

    /// Streams every `p`-clique of `graph` containing the vertex `v`
    /// (canonical sorted form, each exactly once, deterministic order) until
    /// `visit` declines; returns whether the query completed. An out-of-range
    /// vertex visits nothing and completes.
    ///
    /// `graph` must be the graph this index was built from.
    pub fn for_each_containing_vertex_while(
        &self,
        graph: &Graph,
        p: usize,
        v: u32,
        mut visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if p == 0 || (v as usize) >= graph.num_vertices() {
            return true;
        }
        if p == 1 {
            return visit(&[v]);
        }
        if p == 2 {
            for &w in graph.neighbors(v) {
                if !visit(&[v.min(w), v.max(w)]) {
                    return false;
                }
            }
            return true;
        }
        // Candidates: the whole (sorted) neighbourhood of v. Each clique
        // containing v is its other p-1 vertices chosen from N(v) in
        // increasing id order, so it is visited exactly once.
        let mut arena = self.arena(p);
        arena[0].extend_from_slice(graph.neighbors(v));
        let mut stack = vec![v];
        let mut scratch: Vec<u32> = Vec::with_capacity(p);
        extend_clique(
            graph,
            &self.bitsets,
            p,
            &mut arena,
            &mut stack,
            &mut scratch,
            &mut visit,
        )
    }

    /// Streams every `p`-clique of `graph` containing the edge `{a, b}`
    /// (canonical sorted form, ascending canonical order, each exactly once)
    /// until `visit` declines; returns whether the query completed. An absent
    /// edge visits nothing and completes. Unlike [`EdgeCliqueEnumerator`]
    /// this takes `&self` — scratch state is per call — so one index answers
    /// concurrent per-edge queries.
    ///
    /// `graph` must be the graph this index was built from.
    pub fn for_each_containing_edge_while(
        &self,
        graph: &Graph,
        p: usize,
        a: u32,
        b: u32,
        mut visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if p < 2 || !graph.has_edge(a, b) {
            return true;
        }
        if p == 2 {
            return visit(&[a.min(b), a.max(b)]);
        }
        let mut arena = self.arena(p);
        graph.common_neighbors_into(a, b, &mut arena[0]);
        let mut stack = vec![a.min(b), a.max(b)];
        let mut scratch: Vec<u32> = Vec::with_capacity(p);
        extend_clique(
            graph,
            &self.bitsets,
            p,
            &mut arena,
            &mut stack,
            &mut scratch,
            &mut visit,
        )
    }
}

/// The trivial `p ≤ 2` enumerations (empty clique, vertices, edges), shared
/// by the one-shot and the index-backed entry points.
fn small_p_while(graph: &Graph, p: usize, mut visit: impl FnMut(&[u32]) -> bool) -> bool {
    match p {
        0 => visit(&[]),
        1 => {
            for v in 0..graph.num_vertices() as u32 {
                if !visit(&[v]) {
                    return false;
                }
            }
            true
        }
        _ => {
            for (u, v) in graph.edges() {
                if !visit(&[u, v]) {
                    return false;
                }
            }
            true
        }
    }
}

/// Lists every clique on exactly `p` vertices, each exactly once, in
/// canonical (sorted) form.
///
/// `p = 0` yields the single empty clique, `p = 1` yields all vertices and
/// `p = 2` yields all edges, so the function is total in `p`.
pub fn list_cliques(graph: &Graph, p: usize) -> Vec<Clique> {
    let mut out = Vec::new();
    for_each_clique(graph, p, |c| out.push(c.to_vec()));
    out.sort_unstable();
    out
}

/// Counts the cliques on exactly `p` vertices without materialising them.
pub fn count_cliques(graph: &Graph, p: usize) -> usize {
    let mut count = 0usize;
    for_each_clique(graph, p, |_| count += 1);
    count
}

/// Calls `visit` once for every `p`-clique; the slice passed to the callback
/// is sorted in increasing vertex order.
pub fn for_each_clique(graph: &Graph, p: usize, mut visit: impl FnMut(&[u32])) {
    for_each_clique_while(graph, p, |c| {
        visit(c);
        true
    });
}

/// Like [`for_each_clique`], but the callback returns whether to continue:
/// returning `false` aborts the enumeration immediately. Returns `true` when
/// the enumeration ran to completion and `false` when it was aborted.
///
/// This is the streaming building block for consumers that only want a
/// bounded prefix of the listing (e.g. a saturating clique sink): the
/// ordered-search recursion unwinds as soon as the callback declines, so an
/// early stop costs nothing beyond the cliques already visited.
///
/// The enumeration allocates its working state (degeneracy ordering, oriented
/// DAG, per-depth candidate arena, adjacency bitsets) once up front and
/// nothing afterwards: no allocation per visited clique, no allocation per
/// recursion node.
pub fn for_each_clique_while(graph: &Graph, p: usize, visit: impl FnMut(&[u32]) -> bool) -> bool {
    for_each_clique_while_with(graph, p, KernelStrategy::Auto, visit)
}

/// [`for_each_clique_while`] under an explicit [`KernelStrategy`]. Output is
/// byte-identical across strategies; only wall-clock time differs.
pub fn for_each_clique_while_with(
    graph: &Graph,
    p: usize,
    strategy: KernelStrategy,
    visit: impl FnMut(&[u32]) -> bool,
) -> bool {
    if p < 3 {
        return small_p_while(graph, p, visit);
    }
    CliqueIndex::build(graph).for_each_clique_while_with(graph, p, strategy, visit)
}

/// Runs the ordered search from every root in `roots` (a slice of the
/// degeneracy ordering, in peel order). This is the loop shared by the
/// sequential enumeration (all roots) and the sharded enumeration (one
/// contiguous root range per shard): concatenating the visits of consecutive
/// root ranges reproduces the sequential visit order exactly.
#[allow(clippy::too_many_arguments)]
fn enumerate_roots(
    graph: &Graph,
    bitsets: &NeighborBitsets,
    dag: &OrientedDag,
    p: usize,
    roots: &[u32],
    arena: &mut [Vec<u32>],
    stack: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    for &v in roots {
        // Candidates: later neighbours of v, sorted by id.
        let candidates = dag.out_neighbors(v);
        if candidates.len() + 1 < p {
            continue;
        }
        arena[0].clear();
        arena[0].extend_from_slice(candidates);
        stack.push(v);
        let keep_going = extend_clique(graph, bitsets, p, arena, stack, scratch, visit);
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Recursively extends the clique on `stack` using the candidate set in
/// `arena[0]` (all of whose vertices are adjacent to every vertex already on
/// the stack); `arena[1..]` provides the pre-sized buffers for the deeper
/// candidate sets. Returns `false` as soon as the visitor declines, unwinding
/// the whole recursion. `scratch` receives the sorted copy passed to the
/// visitor (reused across visits — no per-clique allocation).
fn extend_clique(
    graph: &Graph,
    bitsets: &NeighborBitsets,
    p: usize,
    arena: &mut [Vec<u32>],
    stack: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    let (current, deeper) = arena.split_at_mut(1);
    let candidates: &[u32] = &current[0];
    let needed = p - stack.len();
    if candidates.len() < needed {
        return true;
    }
    let completing = stack.len() + 1 == p;
    for (i, &u) in candidates.iter().enumerate() {
        // Prune: not enough candidates remain after u.
        if candidates.len() - i < needed {
            break;
        }
        stack.push(u);
        let keep_going = if completing {
            scratch.clear();
            scratch.extend_from_slice(stack);
            scratch.sort_unstable();
            visit(scratch)
        } else {
            intersect_candidates(graph, bitsets, u, &candidates[i + 1..], &mut deeper[0]);
            extend_clique(graph, bitsets, p, deeper, stack, scratch, visit)
        };
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// A partition of a degeneracy ordering's roots into contiguous,
/// work-balanced shards — the unit of parallelism of the sharded clique
/// enumeration.
///
/// Each shard is a half-open range of *positions* in the peel order. Shards
/// are contiguous and cover every position exactly once, so enumerating the
/// shards in ascending index order visits the roots in exactly the sequential
/// order — this is what makes the parallel enumeration's merged output
/// byte-identical to [`for_each_clique_while`] (see `DESIGN.md` §8).
///
/// Balancing uses a per-root work estimate that is quadratic in the root's
/// later-degree `d` (the first candidate level has `d` vertices and each
/// costs up to another `O(d)` intersection), so a handful of dense cores do
/// not all land in one shard. The estimate only shapes the *boundaries*;
/// correctness never depends on it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    /// Half-open `(start, end)` position ranges, ascending and contiguous.
    ranges: Vec<(u32, u32)>,
}

/// Work estimate for one root: constant bookkeeping plus degree terms once
/// the root can contribute a `p`-clique at all.
///
/// For `p ≥ 4` the recursion below a root is at least two candidate levels
/// deep and the quadratic term dominates honestly. For `p = 3` the search is
/// one intersection pass per candidate, so the real cost per root is
/// `c₀ + c₁·d + d²/2` with per-root bookkeeping (arena copy, stack ops,
/// shard bookkeeping) comparable to the probe term at the degrees a
/// heavy-tailed (rmat-like) ordering actually produces. A pure `1 + d²`
/// estimate therefore overweights the few dense roots and packs the long
/// sparse tail — whose constant-and-linear cost it rounds to nothing — into
/// oversized shards; the p-aware constant and linear terms restore the
/// balance (asserted on the rmat workload in
/// `triangle_shard_plans_balance_the_measured_work_better`).
fn root_work(out_degree: usize, p: usize) -> u64 {
    let d = out_degree as u64;
    if out_degree + 1 < p {
        1
    } else if p == 3 {
        8 + 4 * d + d * d / 2
    } else {
        1 + d * d
    }
}

impl ShardPlan {
    /// Plans at most `target_shards` contiguous shards over the roots of
    /// `ordering`, greedily cutting whenever the accumulated work estimate
    /// reaches an equal share of the total. Every shard is non-empty; the
    /// plan may hold fewer shards than requested (e.g. on tiny graphs).
    pub fn balanced(
        dag: &OrientedDag,
        ordering: &DegeneracyOrdering,
        p: usize,
        target_shards: usize,
    ) -> Self {
        let weights: Vec<u64> = ordering
            .order
            .iter()
            .map(|&v| root_work(dag.out_degree(v), p))
            .collect();
        ShardPlan {
            ranges: crate::ordered_merge::balanced_ranges(&weights, target_shards),
        }
    }

    /// Number of planned shards (0 only for the empty graph).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// The position range (into the ordering's `order`) of one shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        let (start, end) = self.ranges[shard];
        start as usize..end as usize
    }

    /// Iterates over the shard ranges in ascending order.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        self.ranges.iter().map(|&(s, e)| s as usize..e as usize)
    }
}

/// The sharable state of a sharded `p`-clique enumeration: a [`CliqueIndex`]
/// (owned, or borrowed from a caller that amortises one index across many
/// enumerations) plus a [`ShardPlan`] — everything built exactly once, all of
/// it read-only during enumeration so one instance can serve any number of
/// worker threads by shared reference.
///
/// [`ShardedEnumerator::for_each_in_shard_while`] runs the same arena-based
/// ordered search as [`for_each_clique_while`], restricted to one shard's
/// roots; visiting shards `0, 1, 2, …` in order reproduces the sequential
/// visit order exactly.
pub struct ShardedEnumerator<'g> {
    graph: &'g Graph,
    p: usize,
    index: IndexHandle<'g>,
    plan: ShardPlan,
    kernel: KernelChoice,
}

/// How a [`ShardedEnumerator`] holds its [`CliqueIndex`]: built and owned by
/// [`ShardedEnumerator::new`], or borrowed from a caller that amortises one
/// index across many enumerations (the snapshot layer).
enum IndexHandle<'g> {
    Owned(CliqueIndex),
    Shared(&'g CliqueIndex),
}

impl<'g> ShardedEnumerator<'g> {
    /// Prepares a sharded enumeration of the `p`-cliques of `graph` with at
    /// most `target_shards` shards, building a private [`CliqueIndex`].
    ///
    /// # Panics
    ///
    /// Panics if `p < 3`; the `p ≤ 2` cases are trivial linear scans with
    /// nothing to shard (use [`for_each_clique_while`]).
    pub fn new(graph: &'g Graph, p: usize, target_shards: usize) -> Self {
        let index = CliqueIndex::build(graph);
        let plan = ShardPlan::balanced(&index.dag, &index.ordering, p, target_shards);
        Self::assemble(graph, p, IndexHandle::Owned(index), plan)
    }

    /// Like [`ShardedEnumerator::new`], but over a prebuilt shared index
    /// (which must have been built from `graph`) — the build-once path of the
    /// snapshot layer.
    ///
    /// # Panics
    ///
    /// Panics if `p < 3`.
    pub fn with_index(
        graph: &'g Graph,
        index: &'g CliqueIndex,
        p: usize,
        target_shards: usize,
    ) -> Self {
        let plan = ShardPlan::balanced(&index.dag, &index.ordering, p, target_shards);
        Self::assemble(graph, p, IndexHandle::Shared(index), plan)
    }

    /// Like [`ShardedEnumerator::with_index`], but with a caller-provided
    /// [`ShardPlan`] (which must have been planned over `index` for this `p`)
    /// — for callers that precompute one plan per clique size.
    ///
    /// # Panics
    ///
    /// Panics if `p < 3`.
    pub fn from_plan(graph: &'g Graph, index: &'g CliqueIndex, p: usize, plan: ShardPlan) -> Self {
        Self::assemble(graph, p, IndexHandle::Shared(index), plan)
    }

    fn assemble(graph: &'g Graph, p: usize, index: IndexHandle<'g>, plan: ShardPlan) -> Self {
        assert!(p >= 3, "sharded enumeration requires p >= 3 (got {p})");
        let kernel = match &index {
            IndexHandle::Owned(index) => index.resolve_kernel(KernelStrategy::Auto),
            IndexHandle::Shared(index) => index.resolve_kernel(KernelStrategy::Auto),
        };
        ShardedEnumerator {
            graph,
            p,
            index,
            plan,
            kernel,
        }
    }

    /// Re-resolves the enumeration kernel under an explicit strategy
    /// (constructors default to [`KernelStrategy::Auto`]). Per-shard output
    /// is byte-identical across kernels, so the choice never affects the
    /// merged emission order.
    pub fn with_kernel(mut self, strategy: KernelStrategy) -> Self {
        self.kernel = self.index().resolve_kernel(strategy);
        self
    }

    /// The kernel every shard of this enumeration runs.
    pub fn kernel(&self) -> KernelChoice {
        self.kernel
    }

    /// The index backing this enumeration (owned or shared).
    fn index(&self) -> &CliqueIndex {
        match &self.index {
            IndexHandle::Owned(index) => index,
            IndexHandle::Shared(index) => index,
        }
    }

    /// The clique size being enumerated.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of shards in the underlying plan.
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The shard plan (for inspection and tests).
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// Enumerates every `p`-clique rooted in `shard`, in the sequential
    /// visit order, until `visit` declines; returns whether the shard ran to
    /// completion. Allocates one candidate arena per call (amortised over the
    /// whole shard) so concurrent calls on different shards never share
    /// mutable state.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= self.num_shards()`.
    pub fn for_each_in_shard_while(
        &self,
        shard: usize,
        mut visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        let index = self.index();
        let mut stack: Vec<u32> = Vec::with_capacity(self.p);
        let mut scratch: Vec<u32> = Vec::with_capacity(self.p);
        let roots = &index.ordering.order[self.plan.range(shard)];
        match self.kernel {
            KernelChoice::Trie => trie::TrieKernel::new().enumerate_roots(
                self.graph,
                &index.bitsets,
                &index.dag,
                self.p,
                roots,
                &mut stack,
                &mut scratch,
                &mut visit,
            ),
            KernelChoice::Recursive => {
                let mut arena = index.arena(self.p);
                enumerate_roots(
                    self.graph,
                    &index.bitsets,
                    &index.dag,
                    self.p,
                    roots,
                    &mut arena,
                    &mut stack,
                    &mut scratch,
                    &mut visit,
                )
            }
        }
    }

    /// Like [`ShardedEnumerator::for_each_in_shard_while`] with a visitor
    /// that never declines.
    pub fn for_each_in_shard(&self, shard: usize, mut visit: impl FnMut(&[u32])) {
        self.for_each_in_shard_while(shard, |c| {
            visit(c);
            true
        });
    }
}

/// Shards planned per worker thread by the parallel drivers: oversubscribing
/// lets fast workers steal the tail instead of idling behind one slow shard,
/// while the per-shard overhead (one arena + one buffer) stays negligible.
#[cfg(feature = "parallel")]
pub const SHARDS_PER_THREAD: usize = 8;

/// The ordered shard merge used by every parallel driver (this module's
/// `for_each_clique_parallel*` and the engine's sink path in the
/// `cliquelist` crate). Re-exported from [`crate::ordered_merge`], where the
/// orchestration lives once for all fan-outs (root shards here, cluster
/// tasks in the CONGEST pipeline); see that module for the determinism and
/// backpressure contract.
#[cfg(feature = "parallel")]
pub use crate::ordered_merge::ordered_merge as merge_shards;

/// Parallel counterpart of [`for_each_clique`]: enumerates every `p`-clique
/// on up to `threads` scoped worker threads, calling `visit` **on the calling
/// thread** in exactly the sequential emission order.
///
/// The thread count influences wall-clock time only, never results: workers
/// fill one buffer per contiguous shard and the caller replays the buffers
/// in ascending shard order (see `DESIGN.md` §8 for the determinism
/// argument).
#[cfg(feature = "parallel")]
pub fn for_each_clique_parallel(
    graph: &Graph,
    p: usize,
    threads: usize,
    mut visit: impl FnMut(&[u32]),
) {
    for_each_clique_parallel_while(graph, p, threads, |c| {
        visit(c);
        true
    });
}

/// Parallel counterpart of [`for_each_clique_while`]: like
/// [`for_each_clique_parallel`], but the callback returns whether to
/// continue. Returns `true` when the enumeration ran to completion.
///
/// A declined visit stops the replay immediately and signals the workers to
/// abandon their remaining shards; cliques already buffered by other workers
/// are discarded, so an early stop costs at most the shards in flight.
/// Degenerate inputs (`threads ≤ 1`, `p < 3`, or a plan with a single shard)
/// fall back to the sequential enumeration.
#[cfg(feature = "parallel")]
pub fn for_each_clique_parallel_while(
    graph: &Graph,
    p: usize,
    threads: usize,
    mut visit: impl FnMut(&[u32]) -> bool,
) -> bool {
    if threads <= 1 || p < 3 {
        return for_each_clique_while(graph, p, visit);
    }
    let enumerator = ShardedEnumerator::new(graph, p, threads.saturating_mul(SHARDS_PER_THREAD));
    let shards = enumerator.num_shards();
    if shards <= 1 {
        return for_each_clique_while(graph, p, visit);
    }
    merge_shards(
        shards,
        threads,
        |shard| {
            // Flat buffer of `p`-wide rows: no per-clique allocation.
            let mut flat: Vec<u32> = Vec::new();
            enumerator.for_each_in_shard(shard, |c| flat.extend_from_slice(c));
            flat
        },
        |flat| flat.chunks_exact(p).all(&mut visit),
    )
}

/// Parallel counterpart of [`count_cliques`]: counts without materialising
/// or merging, since a count needs no emission order — each worker sums the
/// cliques of the shards it claims.
#[cfg(feature = "parallel")]
pub fn count_cliques_parallel(graph: &Graph, p: usize, threads: usize) -> usize {
    use std::sync::atomic::{AtomicUsize, Ordering};

    if threads <= 1 || p < 3 {
        return count_cliques(graph, p);
    }
    let enumerator = ShardedEnumerator::new(graph, p, threads.saturating_mul(SHARDS_PER_THREAD));
    let shards = enumerator.num_shards();
    if shards <= 1 {
        return count_cliques(graph, p);
    }
    let next = AtomicUsize::new(0);
    let total = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(shards) {
            let (enumerator, next, total) = (&enumerator, &next, &total);
            scope.spawn(move || loop {
                let shard = next.fetch_add(1, Ordering::Relaxed);
                if shard >= shards {
                    break;
                }
                let mut count = 0usize;
                enumerator.for_each_in_shard(shard, |_| count += 1);
                total.fetch_add(count, Ordering::Relaxed);
            });
        }
    });
    total.into_inner()
}

/// Reusable state for repeated [`cliques_containing_edge`]-style queries
/// against one graph: the adjacency bitsets, the candidate arena, the vertex
/// stack and the sort scratch are built once and shared across every queried
/// edge. This is the hot path of the in-cluster listing, which asks for the
/// cliques of each goal edge of a cluster in turn.
pub struct EdgeCliqueEnumerator<'g> {
    graph: &'g Graph,
    p: usize,
    bitsets: NeighborBitsets,
    arena: Vec<Vec<u32>>,
    stack: Vec<u32>,
    scratch: Vec<u32>,
    strategy: KernelStrategy,
    /// Trie-kernel state; its node caches the materialised neighbourhood of
    /// [`EdgeCliqueEnumerator::cached_root`] across queries.
    kernel: trie::TrieKernel,
    /// Endpoint whose induced neighbourhood the kernel node currently holds.
    cached_root: Option<u32>,
    /// Lower endpoint of the previous query — `Auto`'s amortisation signal:
    /// a materialisation is paid for only once a second consecutive query
    /// shares the endpoint, so isolated queries never pay the `O(d²)` build.
    last_root: Option<u32>,
}

impl<'g> EdgeCliqueEnumerator<'g> {
    /// Prepares an enumerator for `p`-cliques of `graph` under
    /// [`KernelStrategy::Auto`]. Builds the high-degree adjacency bitsets
    /// once; worth it from a handful of edge queries onward.
    pub fn new(graph: &'g Graph, p: usize) -> Self {
        Self::with_strategy(graph, p, KernelStrategy::Auto)
    }

    /// Like [`EdgeCliqueEnumerator::new`] with an explicit
    /// [`KernelStrategy`]. The strategy governs only whether queries sharing
    /// a lower endpoint reuse one induced-subgraph materialisation of that
    /// endpoint's neighbourhood (the prefix `{a} ⊂ {a, b}` of every such
    /// query): `Trie` materialises on first use, `Auto` from the second
    /// consecutive shared-endpoint query, `Recursive` never. Output is
    /// byte-identical across strategies.
    pub fn with_strategy(graph: &'g Graph, p: usize, strategy: KernelStrategy) -> Self {
        EdgeCliqueEnumerator {
            graph,
            p,
            bitsets: NeighborBitsets::build(graph, bitset_threshold(graph)),
            arena: (0..p.saturating_sub(1)).map(|_| Vec::new()).collect(),
            stack: Vec::with_capacity(p),
            scratch: Vec::with_capacity(p),
            strategy,
            kernel: trie::TrieKernel::new(),
            cached_root: None,
            last_root: None,
        }
    }

    /// Writes every `p`-clique containing the edge `{a, b}` into `out`
    /// (cleared first), sorted, each exactly once — the same output as
    /// [`cliques_containing_edge`], without the per-call setup.
    pub fn cliques_containing_edge_into(&mut self, a: u32, b: u32, out: &mut Vec<Clique>) {
        out.clear();
        self.for_each_containing_edge_while(a, b, |c| {
            out.push(c.to_vec());
            true
        });
        out.sort_unstable();
        out.dedup();
    }

    /// Streams every `p`-clique containing the edge `{a, b}` (canonical
    /// sorted form, ascending canonical order, each exactly once) until
    /// `visit` declines; returns whether the query ran to completion. An
    /// absent edge visits nothing and completes.
    ///
    /// This is the streaming building block behind the saturation-aware
    /// in-cluster listing: declining unwinds the search immediately, and the
    /// enumerator's scratch state (candidate arena, vertex stack, sort
    /// scratch) is **reset at the start of every query**, so a query aborted
    /// mid-recursion leaves the enumerator ready for the next goal edge. The
    /// reset is deliberate: an aborted search skips the unwinding that would
    /// otherwise pop the seed vertices, so relying on balanced pushes/pops
    /// would poison the next query's stack (regression-tested in
    /// `edge_enumerator_resumes_cleanly_after_an_aborted_query`).
    pub fn for_each_containing_edge_while(
        &mut self,
        a: u32,
        b: u32,
        mut visit: impl FnMut(&[u32]) -> bool,
    ) -> bool {
        if self.p < 2 || !self.graph.has_edge(a, b) {
            return true;
        }
        if self.p == 2 {
            return visit(&[a.min(b), a.max(b)]);
        }
        let root = a.min(b);
        let other = a.max(b);
        let reuse = match self.strategy {
            KernelStrategy::Recursive => false,
            KernelStrategy::Trie => true,
            // Amortisation rule: only materialise once a second consecutive
            // query shares the endpoint (or the node is already cached).
            KernelStrategy::Auto => self.cached_root == Some(root) || self.last_root == Some(root),
        } && trie::node_fits_budget(self.graph.degree(root));
        self.last_root = Some(root);
        let EdgeCliqueEnumerator {
            graph,
            p,
            bitsets,
            arena,
            stack,
            scratch,
            kernel,
            cached_root,
            ..
        } = self;
        // Reset every piece of per-query scratch state up front — a previous
        // query aborted by its visitor leaves its seed vertices on the stack
        // and the last partial clique in the sort scratch. The cached trie
        // node is *not* scratch: it is immutable during a query, so an abort
        // cannot poison it.
        stack.clear();
        scratch.clear();
        stack.push(root);
        stack.push(other);
        if reuse {
            if *cached_root != Some(root) {
                kernel
                    .node_mut()
                    .materialize(graph, bitsets, graph.neighbors(root));
                *cached_root = Some(root);
            }
            // `other` is a neighbour of `root` by the edge check above, so it
            // has a local id; its row inside N(root) is exactly the common
            // neighbourhood of the edge — the initial candidate set.
            let pivot = kernel
                .node()
                .local_index(other)
                .expect("edge endpoint must appear in its neighbour's materialised node");
            return kernel.descend_from_row(*p, pivot, stack, scratch, &mut visit);
        }
        graph.common_neighbors_into(a, b, &mut arena[0]);
        extend_clique(graph, bitsets, *p, arena, stack, scratch, &mut visit)
    }
}

/// Lists every `p`-clique that contains the given edge `{a, b}`.
///
/// Returns an empty list if the edge is absent. One-shot convenience over
/// [`EdgeCliqueEnumerator`]; callers querying many edges of the same graph
/// should hold an enumerator instead and amortise its setup.
pub fn cliques_containing_edge(graph: &Graph, p: usize, a: u32, b: u32) -> Vec<Clique> {
    if p < 2 || !graph.has_edge(a, b) {
        return Vec::new();
    }
    if p == 2 {
        return vec![vec![a.min(b), a.max(b)]];
    }
    // One-shot path: skip the bitset table (its build cost would dominate a
    // single query) and rely on the merges.
    let bitsets = NeighborBitsets::none(graph.num_vertices());
    let mut arena: Vec<Vec<u32>> = (0..p - 1).map(|_| Vec::new()).collect();
    graph.common_neighbors_into(a, b, &mut arena[0]);
    let capacity = arena[0].len();
    for level in arena.iter_mut().skip(1) {
        level.reserve(capacity);
    }
    let mut out = Vec::new();
    let mut stack = vec![a.min(b), a.max(b)];
    let mut scratch = Vec::with_capacity(p);
    extend_clique(
        graph,
        &bitsets,
        p,
        &mut arena,
        &mut stack,
        &mut scratch,
        &mut |c: &[u32]| {
            out.push(c.to_vec());
            true
        },
    );
    out.sort_unstable();
    out.dedup();
    out
}

/// Verifies that `candidate` is a clique of `graph` (all pairs adjacent,
/// vertices distinct).
pub fn is_clique(graph: &Graph, candidate: &[u32]) -> bool {
    for (i, &u) in candidate.iter().enumerate() {
        for &v in &candidate[i + 1..] {
            if u == v || !graph.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_has_binomial_many_cliques() {
        let g = gen::complete_graph(8);
        for p in 0..=9 {
            assert_eq!(count_cliques(&g, p), binomial(8, p), "p = {p}");
        }
    }

    #[test]
    fn small_p_special_cases() {
        let g = gen::path_graph(4);
        assert_eq!(list_cliques(&g, 0), vec![Vec::<u32>::new()]);
        assert_eq!(list_cliques(&g, 1).len(), 4);
        assert_eq!(list_cliques(&g, 2).len(), 3);
        assert_eq!(list_cliques(&g, 3).len(), 0);
    }

    #[test]
    fn listed_cliques_are_cliques_and_unique() {
        let g = gen::erdos_renyi(60, 0.25, 9);
        let k4s = list_cliques(&g, 4);
        for c in &k4s {
            assert_eq!(c.len(), 4);
            assert!(is_clique(&g, c));
            assert!(c.windows(2).all(|w| w[0] < w[1]), "not sorted: {c:?}");
        }
        let mut dedup = k4s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), k4s.len());
    }

    #[test]
    fn bipartite_graphs_have_no_triangles() {
        let g = gen::complete_bipartite(10, 10);
        assert_eq!(count_cliques(&g, 3), 0);
        assert_eq!(count_cliques(&g, 4), 0);
    }

    #[test]
    fn cliques_containing_edge_matches_filtered_listing() {
        let g = gen::erdos_renyi(40, 0.3, 4);
        let all = list_cliques(&g, 4);
        if let Some((a, b)) = g.edges().next() {
            let containing = cliques_containing_edge(&g, 4, a, b);
            let expected: Vec<Clique> = all
                .iter()
                .filter(|c| c.contains(&a) && c.contains(&b))
                .cloned()
                .collect();
            assert_eq!(containing, expected);
        }
        assert!(cliques_containing_edge(&g, 4, 0, 0).is_empty());
    }

    #[test]
    fn edge_enumerator_matches_the_one_shot_function() {
        let g = gen::erdos_renyi(50, 0.3, 8);
        for p in [3usize, 4, 5] {
            let mut enumerator = EdgeCliqueEnumerator::new(&g, p);
            let mut out = Vec::new();
            for (a, b) in g.edges() {
                enumerator.cliques_containing_edge_into(a, b, &mut out);
                assert_eq!(out, cliques_containing_edge(&g, p, a, b), "p={p} {a}-{b}");
            }
            // Absent edges yield nothing.
            enumerator.cliques_containing_edge_into(0, 0, &mut out);
            assert!(out.is_empty());
        }
        let mut pairs = EdgeCliqueEnumerator::new(&g, 2);
        let mut out = Vec::new();
        let first = g.edges().next();
        if let Some((a, b)) = first {
            pairs.cliques_containing_edge_into(b, a, &mut out);
            assert_eq!(out, vec![vec![a, b]]);
        }
    }

    #[test]
    fn cliques_containing_edge_handles_p_2() {
        let g = gen::path_graph(3);
        assert_eq!(cliques_containing_edge(&g, 2, 1, 0), vec![vec![0, 1]]);
        assert!(cliques_containing_edge(&g, 2, 0, 2).is_empty());
    }

    #[test]
    fn is_clique_detects_non_cliques() {
        let g = gen::path_graph(4);
        assert!(is_clique(&g, &[0, 1]));
        assert!(!is_clique(&g, &[0, 2]));
        assert!(!is_clique(&g, &[0, 0]));
        assert!(is_clique(&g, &[]));
        assert!(is_clique(&g, &[3]));
    }

    #[test]
    fn planted_cliques_are_found() {
        let (g, planted) = gen::planted_cliques(80, 0.01, 2, 6, 17);
        let k6s = list_cliques(&g, 6);
        for c in &planted {
            assert!(k6s.contains(&c.vertices), "planted clique missing");
        }
    }

    #[test]
    fn while_variant_stops_immediately_when_declined() {
        let g = gen::complete_graph(30);
        for p in [1usize, 2, 4] {
            let mut visited = Vec::new();
            let completed = for_each_clique_while(&g, p, |c| {
                visited.push(c.to_vec());
                visited.len() < 3
            });
            assert!(!completed, "p = {p}: enumeration must report the abort");
            assert_eq!(visited.len(), 3, "p = {p}: exactly 3 visits before stop");
        }
        // A callback that never declines sees everything and reports
        // completion.
        let mut count = 0usize;
        assert!(for_each_clique_while(&g, 3, |_| {
            count += 1;
            true
        }));
        assert_eq!(count, count_cliques(&g, 3));
    }

    #[test]
    fn triangle_count_matches_naive_on_random_graph() {
        let g = gen::erdos_renyi(50, 0.2, 21);
        let mut naive = 0;
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..50u32 {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        naive += 1;
                    }
                }
            }
        }
        assert_eq!(count_cliques(&g, 3), naive);
    }

    #[test]
    fn bitset_and_merge_paths_agree() {
        // A graph straddling the bitset degree threshold: a dense core (above
        // it) plus a sparse fringe (below it) so both intersection paths run.
        let mut edges = Vec::new();
        for u in 0..80u32 {
            for v in (u + 1)..80u32 {
                if (u + v) % 7 != 0 {
                    edges.push((u, v));
                }
            }
        }
        for f in 80..120u32 {
            edges.push((f, f % 7));
            edges.push((f, f % 11 + 20));
            edges.push((f, f % 5 + 40));
        }
        let g = Graph::from_edges(120, &edges).unwrap();
        assert!(g.max_degree() >= BITSET_DEGREE_THRESHOLD);
        assert!((0..120u32).any(|v| g.degree(v) < BITSET_DEGREE_THRESHOLD));
        for p in [3usize, 4, 5] {
            let listed = list_cliques(&g, p);
            // Reference: merge-only enumeration via the containing-edge API
            // (which never builds bitsets), unioned over all edges.
            let mut reference: Vec<Clique> = Vec::new();
            for (a, b) in g.edges() {
                reference.extend(cliques_containing_edge(&g, p, a, b));
            }
            reference.sort_unstable();
            reference.dedup();
            // Every clique contains at least one edge for p >= 2, but is
            // found once per contained edge — the dedup above fixes that.
            assert_eq!(listed, reference, "p = {p}");
        }
    }

    #[test]
    fn shard_plan_is_a_contiguous_partition_of_the_roots() {
        for (n, prob, seed) in [(0usize, 0.0, 0u64), (1, 0.0, 0), (50, 0.2, 3), (90, 0.4, 7)] {
            let g = gen::erdos_renyi(n, prob, seed);
            let ordering = degeneracy_ordering(&g);
            let dag = OrientedDag::from_ordering(&g, &ordering);
            for target in [1usize, 2, 3, 7, 64, 1000] {
                let plan = ShardPlan::balanced(&dag, &ordering, 4, target);
                if n == 0 {
                    assert_eq!(plan.num_shards(), 0);
                    continue;
                }
                assert!(plan.num_shards() >= 1);
                assert!(
                    plan.num_shards() <= target.max(1).min(n),
                    "n={n} target={target}"
                );
                let mut covered = 0usize;
                for (i, range) in plan.ranges().enumerate() {
                    assert_eq!(range.start, covered, "shard {i} not contiguous");
                    assert!(range.end > range.start, "shard {i} empty");
                    covered = range.end;
                }
                assert_eq!(covered, n, "shards must cover every root");
            }
        }
    }

    #[test]
    fn shard_concatenation_reproduces_the_sequential_order() {
        let g = gen::erdos_renyi(70, 0.3, 11);
        for p in [3usize, 4, 5] {
            let mut sequential = Vec::new();
            for_each_clique(&g, p, |c| sequential.push(c.to_vec()));
            for target in [1usize, 2, 5, 16] {
                let enumerator = ShardedEnumerator::new(&g, p, target);
                let mut merged = Vec::new();
                for shard in 0..enumerator.num_shards() {
                    enumerator.for_each_in_shard(shard, |c| merged.push(c.to_vec()));
                }
                assert_eq!(merged, sequential, "p={p} target={target}");
            }
        }
    }

    #[test]
    fn shard_enumeration_stops_when_declined() {
        let g = gen::complete_graph(20);
        let enumerator = ShardedEnumerator::new(&g, 3, 4);
        let mut seen = 0usize;
        let completed = enumerator.for_each_in_shard_while(0, |_| {
            seen += 1;
            seen < 2
        });
        assert!(!completed);
        assert_eq!(seen, 2);
    }

    #[test]
    fn containing_edge_stream_is_sorted_and_matches_the_buffered_query() {
        let g = gen::erdos_renyi(45, 0.35, 6);
        for p in [3usize, 4, 5] {
            let mut enumerator = EdgeCliqueEnumerator::new(&g, p);
            let mut buffered = Vec::new();
            for (a, b) in g.edges() {
                let mut streamed: Vec<Clique> = Vec::new();
                assert!(enumerator.for_each_containing_edge_while(a, b, |c| {
                    streamed.push(c.to_vec());
                    true
                }));
                enumerator.cliques_containing_edge_into(a, b, &mut buffered);
                // The stream arrives in ascending canonical order, so it must
                // equal the sorted+deduped buffered output element for
                // element.
                assert_eq!(streamed, buffered, "p={p} edge {a}-{b}");
                assert!(streamed.windows(2).all(|w| w[0] < w[1]), "p={p} not sorted");
            }
        }
    }

    #[test]
    fn edge_enumerator_resumes_cleanly_after_an_aborted_query() {
        let g = gen::erdos_renyi(50, 0.4, 9);
        for p in [3usize, 4] {
            let mut enumerator = EdgeCliqueEnumerator::new(&g, p);
            let edges: Vec<(u32, u32)> = g.edges().collect();
            // An edge with at least two containing cliques, so aborting after
            // the first visit leaves the recursion genuinely mid-flight.
            let (a, b) = edges
                .iter()
                .copied()
                .find(|&(a, b)| cliques_containing_edge(&g, p, a, b).len() >= 2)
                .expect("dense test graph has a multi-clique edge");
            let mut visits = 0usize;
            let completed = enumerator.for_each_containing_edge_while(a, b, |_| {
                visits += 1;
                false
            });
            assert!(!completed, "p={p}: abort must be reported");
            assert_eq!(visits, 1, "p={p}: exactly one visit before the abort");
            // Every later query must be unaffected by the aborted one: the
            // scratch state (stack, arena, sort scratch) is reset per query.
            let mut out = Vec::new();
            for &(c, d) in &edges {
                enumerator.cliques_containing_edge_into(c, d, &mut out);
                assert_eq!(
                    out,
                    cliques_containing_edge(&g, p, c, d),
                    "p={p}: query {c}-{d} after an aborted query diverged"
                );
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_enumeration_is_byte_identical_to_sequential() {
        let g = gen::erdos_renyi(80, 0.25, 5);
        for p in [3usize, 4, 5] {
            let mut sequential = Vec::new();
            for_each_clique(&g, p, |c| sequential.push(c.to_vec()));
            for threads in [1usize, 2, 3, 8] {
                let mut parallel = Vec::new();
                for_each_clique_parallel(&g, p, threads, |c| parallel.push(c.to_vec()));
                assert_eq!(parallel, sequential, "p={p} threads={threads}");
                assert_eq!(
                    count_cliques_parallel(&g, p, threads),
                    sequential.len(),
                    "p={p} threads={threads}"
                );
            }
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_while_stops_early_with_the_sequential_prefix() {
        let g = gen::complete_graph(18);
        let mut sequential = Vec::new();
        for_each_clique(&g, 4, |c| sequential.push(c.to_vec()));
        for limit in [1usize, 5, 40] {
            let mut prefix = Vec::new();
            let completed = for_each_clique_parallel_while(&g, 4, 4, |c| {
                prefix.push(c.to_vec());
                prefix.len() < limit
            });
            assert!(!completed, "limit={limit}");
            assert_eq!(prefix.len(), limit);
            assert_eq!(prefix, sequential[..limit], "limit={limit}");
        }
        // A never-declining visitor completes and sees everything.
        let mut all = Vec::new();
        assert!(for_each_clique_parallel_while(&g, 4, 4, |c| {
            all.push(c.to_vec());
            true
        }));
        assert_eq!(all, sequential);
    }

    #[test]
    fn clique_index_is_shared_across_query_kinds() {
        let g = gen::erdos_renyi(55, 0.3, 13);
        let index = CliqueIndex::build(&g);
        for p in [3usize, 4, 5] {
            // Full enumeration matches the one-shot path, order included.
            let mut via_index = Vec::new();
            assert!(index.for_each_clique_while(&g, p, |c| {
                via_index.push(c.to_vec());
                true
            }));
            let mut one_shot = Vec::new();
            for_each_clique(&g, p, |c| one_shot.push(c.to_vec()));
            assert_eq!(via_index, one_shot, "p={p}");
            // Per-vertex queries match the filtered full listing.
            let all = list_cliques(&g, p);
            for v in [0u32, 7, 54] {
                let mut through_v = Vec::new();
                index.for_each_containing_vertex_while(&g, p, v, |c| {
                    through_v.push(c.to_vec());
                    true
                });
                through_v.sort_unstable();
                let expected: Vec<Clique> =
                    all.iter().filter(|c| c.contains(&v)).cloned().collect();
                assert_eq!(through_v, expected, "p={p} v={v}");
            }
            // Per-edge queries match the one-shot function.
            for (a, b) in g.edges().take(25) {
                let mut through_e = Vec::new();
                index.for_each_containing_edge_while(&g, p, a, b, |c| {
                    through_e.push(c.to_vec());
                    true
                });
                assert_eq!(
                    through_e,
                    cliques_containing_edge(&g, p, a, b),
                    "p={p} {a}-{b}"
                );
            }
        }
        // Out-of-range vertices and absent edges visit nothing and complete.
        assert!(index.for_each_containing_vertex_while(&g, 3, 999, |_| false));
        assert!(index.for_each_containing_edge_while(&g, 3, 0, 0, |_| false));
        assert!(index.degeneracy() >= 3);
    }

    #[test]
    fn shared_index_enumerators_reproduce_the_sequential_order() {
        let g = gen::erdos_renyi(60, 0.3, 19);
        let index = CliqueIndex::build(&g);
        for p in [3usize, 4] {
            let mut sequential = Vec::new();
            for_each_clique(&g, p, |c| sequential.push(c.to_vec()));
            for target in [2usize, 7] {
                let shared = ShardedEnumerator::with_index(&g, &index, p, target);
                let mut merged = Vec::new();
                for shard in 0..shared.num_shards() {
                    shared.for_each_in_shard(shard, |c| merged.push(c.to_vec()));
                }
                assert_eq!(merged, sequential, "with_index p={p} target={target}");
                let planned = ShardedEnumerator::from_plan(&g, &index, p, shared.plan().clone());
                let mut replanned = Vec::new();
                for shard in 0..planned.num_shards() {
                    planned.for_each_in_shard(shard, |c| replanned.push(c.to_vec()));
                }
                assert_eq!(replanned, sequential, "from_plan p={p} target={target}");
            }
        }
    }

    #[test]
    fn index_small_p_and_early_stop_behave_like_the_one_shot_path() {
        let g = gen::path_graph(5);
        let index = CliqueIndex::build(&g);
        for p in [0usize, 1, 2] {
            let mut via_index = Vec::new();
            index.for_each_clique_while(&g, p, |c| {
                via_index.push(c.to_vec());
                true
            });
            via_index.sort_unstable();
            assert_eq!(via_index, list_cliques(&g, p), "p={p}");
        }
        let mut through_v = Vec::new();
        index.for_each_containing_vertex_while(&g, 2, 1, |c| {
            through_v.push(c.to_vec());
            true
        });
        assert_eq!(through_v, vec![vec![0, 1], vec![1, 2]]);
        assert!(index.for_each_containing_vertex_while(&g, 0, 1, |_| false));
        let mut single = Vec::new();
        index.for_each_containing_vertex_while(&g, 1, 3, |c| {
            single.push(c.to_vec());
            true
        });
        assert_eq!(single, vec![vec![3]]);
        // Early stops propagate through every index-backed query kind.
        let k = gen::complete_graph(10);
        let ki = CliqueIndex::build(&k);
        let mut seen = 0usize;
        assert!(!ki.for_each_clique_while(&k, 3, |_| {
            seen += 1;
            seen < 4
        }));
        assert_eq!(seen, 4);
        let mut ve = 0usize;
        assert!(!ki.for_each_containing_vertex_while(&k, 3, 0, |_| {
            ve += 1;
            false
        }));
        let mut ee = 0usize;
        assert!(!ki.for_each_containing_edge_while(&k, 3, 0, 1, |_| {
            ee += 1;
            false
        }));
        assert_eq!((ve, ee), (1, 1));
    }

    #[test]
    fn emission_order_is_reproducible() {
        let g = gen::erdos_renyi(40, 0.35, 2);
        let mut first = Vec::new();
        for_each_clique(&g, 4, |c| first.push(c.to_vec()));
        let mut second = Vec::new();
        for_each_clique(&g, 4, |c| second.push(c.to_vec()));
        assert_eq!(first, second);
    }

    /// Applies a batch and returns the mutated graph plus the touched mask
    /// the incremental index build expects.
    fn mutate(g: &Graph, inserts: &[(u32, u32)], deletes: &[(u32, u32)]) -> (Graph, Vec<bool>) {
        let batch = crate::churn::EdgeBatch::new(inserts, deletes).unwrap();
        let (next, applied) = g.apply_edge_batch(&batch).unwrap();
        let mut touched = vec![false; g.num_vertices()];
        for &(u, v) in applied.inserted.iter().chain(&applied.deleted) {
            touched[u as usize] = true;
            touched[v as usize] = true;
        }
        (next, touched)
    }

    #[test]
    fn incremental_index_equals_scratch_build() {
        for seed in 0..4u64 {
            let g = gen::erdos_renyi(60, 0.25, seed);
            let index = CliqueIndex::build(&g);
            let edges: Vec<(u32, u32)> = g.edges().collect();
            let deletes: Vec<(u32, u32)> = edges.iter().copied().step_by(7).take(10).collect();
            let inserts: Vec<(u32, u32)> = gen::erdos_renyi(60, 0.05, seed + 50)
                .edges()
                .filter(|&(u, v)| !g.has_edge(u, v))
                .take(10)
                .collect();
            let (next, touched) = mutate(&g, &inserts, &deletes);
            let (patched, stats) = CliqueIndex::build_incremental(&next, &index, &touched);
            assert_eq!(patched, CliqueIndex::build(&next), "seed {seed}");
            assert_eq!(
                stats.bitset_rows_reused + stats.bitset_rows_rebuilt,
                patched
                    .bitsets
                    .row_of
                    .iter()
                    .filter(|&&r| r != u32::MAX)
                    .count(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn incremental_index_patches_rows_straddling_the_bitset_threshold() {
        // A star centre sits far above the threshold; pull its degree below
        // it via deletions and push a light vertex above it via insertions —
        // both sides of the membership change must match a scratch build.
        // On a graph this small the adaptive threshold always bottoms out at
        // the floor, so the floor is the membership bar.
        let threshold = MIN_BITSET_DEGREE_THRESHOLD;
        let n = threshold * 3;
        let star = gen::star_graph(n);
        assert_eq!(bitset_threshold(&star), threshold);
        let index = CliqueIndex::build(&star);
        assert!(index.bitset_row(0).is_some());
        // Delete enough spokes to drop the centre below the threshold, and
        // ring a previously-light vertex with enough new edges to cross it.
        let deletes: Vec<(u32, u32)> = (1..=(n - threshold + 1) as u32).map(|v| (0, v)).collect();
        let hub = (n - 1) as u32;
        let inserts: Vec<(u32, u32)> = (1..=threshold as u32).map(|v| (v, hub)).collect();
        let (next, touched) = mutate(&star, &inserts, &deletes);
        let (patched, stats) = CliqueIndex::build_incremental(&next, &index, &touched);
        let scratch = CliqueIndex::build(&next);
        assert_eq!(patched, scratch);
        assert!(patched.bitset_row(0).is_none());
        assert!(patched.bitset_row(hub).is_some());
        // Every surviving row here was touched, so nothing could be reused.
        assert_eq!(stats.bitset_rows_reused, 0);
        assert!(stats.bitset_rows_rebuilt >= 1);
    }

    #[test]
    fn explicit_kernel_strategies_agree_everywhere() {
        // Trie and recursive kernels must emit identical bytes through every
        // entry point: full listings, early-stopped prefixes, shards and
        // edge-query streams. (The cross-crate differential battery widens
        // this to engine reports; this test pins the graphcore layer.)
        let workloads = [
            gen::erdos_renyi(60, 0.25, 7),
            gen::multipartite(48, 6, 1.0, 3),
            gen::rmat(7, 6, (0.57, 0.19, 0.19, 0.05), 11),
        ];
        for (w, g) in workloads.iter().enumerate() {
            let index = CliqueIndex::build(g);
            for p in [3usize, 4] {
                let mut recursive = Vec::new();
                assert!(
                    index.for_each_clique_while_with(g, p, KernelStrategy::Recursive, |c| {
                        recursive.push(c.to_vec());
                        true
                    })
                );
                let mut via_trie = Vec::new();
                assert!(
                    index.for_each_clique_while_with(g, p, KernelStrategy::Trie, |c| {
                        via_trie.push(c.to_vec());
                        true
                    })
                );
                assert_eq!(via_trie, recursive, "workload {w} p={p}");
                // Early-stop prefixes agree (and both report the abort).
                let limit = (recursive.len() / 2).max(1);
                for strategy in [KernelStrategy::Recursive, KernelStrategy::Trie] {
                    let mut prefix = Vec::new();
                    let completed = index.for_each_clique_while_with(g, p, strategy, |c| {
                        prefix.push(c.to_vec());
                        prefix.len() < limit
                    });
                    if recursive.len() > limit {
                        assert!(!completed, "workload {w} p={p} {strategy}");
                        assert_eq!(prefix, recursive[..limit], "workload {w} p={p} {strategy}");
                    }
                }
                // Shard-by-shard output agrees kernel for kernel.
                for strategy in [KernelStrategy::Recursive, KernelStrategy::Trie] {
                    let sharded =
                        ShardedEnumerator::with_index(g, &index, p, 6).with_kernel(strategy);
                    let mut merged = Vec::new();
                    for shard in 0..sharded.num_shards() {
                        sharded.for_each_in_shard(shard, |c| merged.push(c.to_vec()));
                    }
                    assert_eq!(merged, recursive, "workload {w} p={p} {strategy}");
                }
                // Edge-query streams agree across strategies, including after
                // aborted queries and across shared-endpoint runs (the edges
                // iterator groups edges by lower endpoint, which is exactly
                // the prefix-reuse pattern).
                let mut reference =
                    EdgeCliqueEnumerator::with_strategy(g, p, KernelStrategy::Recursive);
                for strategy in [KernelStrategy::Trie, KernelStrategy::Auto] {
                    let mut reused = EdgeCliqueEnumerator::with_strategy(g, p, strategy);
                    for (a, b) in g.edges() {
                        let mut expected = Vec::new();
                        reference.for_each_containing_edge_while(a, b, |c| {
                            expected.push(c.to_vec());
                            true
                        });
                        let mut streamed = Vec::new();
                        assert!(reused.for_each_containing_edge_while(a, b, |c| {
                            streamed.push(c.to_vec());
                            true
                        }));
                        assert_eq!(streamed, expected, "workload {w} p={p} {strategy} {a}-{b}");
                        // Aborting mid-stream must not poison the cache.
                        if expected.len() > 1 {
                            let mut first = Vec::new();
                            assert!(!reused.for_each_containing_edge_while(a, b, |c| {
                                first.push(c.to_vec());
                                false
                            }));
                            assert_eq!(first[..], expected[..1]);
                            let mut again = Vec::new();
                            reused.for_each_containing_edge_while(a, b, |c| {
                                again.push(c.to_vec());
                                true
                            });
                            assert_eq!(again, expected, "workload {w} p={p} retry {a}-{b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn auto_kernel_resolution_is_a_pure_degeneracy_rule() {
        // Sparse: degeneracy under the bar resolves to the recursive kernel.
        let sparse = gen::erdos_renyi(200, 0.02, 1);
        let sparse_index = CliqueIndex::build(&sparse);
        assert!(sparse_index.degeneracy() < AUTO_TRIE_DEGENERACY);
        assert_eq!(
            sparse_index.resolve_kernel(KernelStrategy::Auto),
            KernelChoice::Recursive
        );
        // Dense: a 6-partite Turán-style graph clears the bar.
        let dense = gen::multipartite(60, 6, 1.0, 2);
        let dense_index = CliqueIndex::build(&dense);
        assert!(dense_index.degeneracy() >= AUTO_TRIE_DEGENERACY);
        assert_eq!(
            dense_index.resolve_kernel(KernelStrategy::Auto),
            KernelChoice::Trie
        );
        // Explicit strategies are honoured on both graphs, and resolution is
        // stable across repeated calls (pure function of the built index).
        for index in [&sparse_index, &dense_index] {
            assert_eq!(
                index.resolve_kernel(KernelStrategy::Recursive),
                KernelChoice::Recursive
            );
            assert_eq!(
                index.resolve_kernel(KernelStrategy::Trie),
                KernelChoice::Trie
            );
            assert_eq!(
                index.resolve_kernel(KernelStrategy::Auto),
                index.resolve_kernel(KernelStrategy::Auto)
            );
        }
        // The sharded enumerator picks up the same resolution.
        let sharded = ShardedEnumerator::with_index(&dense, &dense_index, 3, 4);
        assert_eq!(sharded.kernel(), KernelChoice::Trie);
        assert_eq!(
            sharded.with_kernel(KernelStrategy::Recursive).kernel(),
            KernelChoice::Recursive
        );
    }

    #[test]
    fn triangle_shard_plans_balance_the_measured_work_better() {
        // Satellite fix: the old pure-quadratic root estimate rounds the long
        // sparse tail of a heavy-tailed (rmat) ordering to nothing at p = 3,
        // packing it into oversized shards. Compare plans built from the old
        // and new weights over the same roots and assert the new plan spreads
        // both the roots and the measured enumeration work more evenly.
        let g = gen::rmat(10, 8, (0.57, 0.19, 0.19, 0.05), 42);
        let index = CliqueIndex::build(&g);
        let (dag, ordering) = (index.dag(), index.ordering());
        let old_weights: Vec<u64> = ordering
            .order
            .iter()
            .map(|&v| {
                let d = dag.out_degree(v) as u64;
                if (d + 1) < 3 {
                    1
                } else {
                    1 + d * d
                }
            })
            .collect();
        let target = 16usize;
        let old_plan = ShardPlan {
            ranges: crate::ordered_merge::balanced_ranges(&old_weights, target),
        };
        let new_plan = ShardPlan::balanced(dag, ordering, 3, target);
        assert_eq!(old_plan.num_shards(), target);
        assert_eq!(new_plan.num_shards(), target);
        // Measured work per shard: per-root bookkeeping + candidate-copy
        // cost, plus the triangles the shard actually emits.
        let measure = |plan: &ShardPlan| -> Vec<f64> {
            let sharded = ShardedEnumerator::from_plan(&g, &index, 3, plan.clone());
            (0..sharded.num_shards())
                .map(|shard| {
                    let mut visits = 0u64;
                    sharded.for_each_in_shard(shard, |_| visits += 1);
                    let bookkeeping: u64 = ordering.order[plan.range(shard)]
                        .iter()
                        .map(|&v| 8 + dag.out_degree(v) as u64)
                        .sum();
                    (visits + bookkeeping) as f64
                })
                .collect()
        };
        let variance = |xs: &[f64]| -> f64 {
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64
        };
        let (old_work, new_work) = (measure(&old_plan), measure(&new_plan));
        // Same total work either way — only the boundaries move.
        let total: f64 = old_work.iter().sum();
        assert!((total - new_work.iter().sum::<f64>()).abs() < 1e-6);
        assert!(
            variance(&new_work) < variance(&old_work),
            "new plan must spread measured work more evenly: old {:?} new {:?}",
            variance(&old_work),
            variance(&new_work)
        );
        let sizes =
            |plan: &ShardPlan| -> Vec<f64> { plan.ranges().map(|r| r.len() as f64).collect() };
        assert!(
            variance(&sizes(&new_plan)) < variance(&sizes(&old_plan)),
            "new plan must also spread the roots more evenly"
        );
    }

    #[test]
    fn incremental_index_reuses_untouched_heavy_rows() {
        // Two disjoint dense blobs; churn only the second one. The first
        // blob's heavy rows must be reused verbatim.
        let block = BITSET_DEGREE_THRESHOLD + 8;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for base in [0u32, block as u32] {
            for i in 0..block as u32 {
                for j in (i + 1)..block as u32 {
                    edges.push((base + i, base + j));
                }
            }
        }
        let g = Graph::from_edges(2 * block, &edges).unwrap();
        let index = CliqueIndex::build(&g);
        let b = block as u32;
        let (next, touched) = mutate(&g, &[], &[(b, b + 1), (b + 2, b + 3)]);
        let (patched, stats) = CliqueIndex::build_incremental(&next, &index, &touched);
        assert_eq!(patched, CliqueIndex::build(&next));
        assert!(stats.bitset_rows_reused >= block - 4, "{stats:?}");
        assert!(stats.bitset_rows_rebuilt >= 2, "{stats:?}");
    }
}
