//! Exact sequential `K_p` enumeration, used as ground truth.
//!
//! The enumerator follows the standard ordered-search scheme (kClist-style):
//! fix a degeneracy ordering, build the [`OrientedDag`] of later neighbours
//! once, and for every vertex `v` enumerate cliques inside its out-neighbour
//! set. Because that candidate set has size at most the degeneracy `k`, the
//! running time is `O(n · k^{p-1})` for a graph of degeneracy `k`.
//!
//! The hot loop is allocation-free: one candidate arena with a pre-sized
//! buffer per recursion depth is reused across the whole enumeration, and
//! candidate intersections are sorted merges over CSR rows — with a
//! word-packed adjacency-bitset fast path for high-degree vertices — instead
//! of per-element `O(log deg)` `has_edge` probes. Visiting a clique performs
//! zero heap allocations.

use crate::orientation::{degeneracy_ordering, OrientedDag};
use crate::{Clique, Graph};

/// Degree at or above which a vertex gets a word-packed adjacency bitset.
///
/// Intersecting a candidate set `C` with the neighbourhood of `u` costs
/// `O(|C| + deg u)` as a sorted merge but only `O(|C|)` against a bitset;
/// the bitset pays off once `deg u` clearly exceeds the candidate sets (which
/// are bounded by the degeneracy). Rows below the threshold stay merge-only,
/// so sparse graphs build no bitsets at all.
const BITSET_DEGREE_THRESHOLD: usize = 64;

/// Total `u64` budget for the bitset table (16 MiB). Each row costs `⌈n/64⌉`
/// words, so on large graphs where most vertices clear the degree threshold
/// an unbounded table would be `O(n²/64)` — the budget caps the table at a
/// fixed size and hands the remaining vertices to the sorted-merge path,
/// which is correct either way (both paths produce the same candidate list).
const BITSET_WORD_BUDGET: usize = 1 << 21;

/// Word-packed adjacency rows for the high-degree vertices of a graph.
///
/// `row_of[v]` indexes into `words` (stride [`NeighborBitsets::stride`]) when
/// `deg(v) >= BITSET_DEGREE_THRESHOLD`, and is `u32::MAX` otherwise.
struct NeighborBitsets {
    stride: usize,
    words: Vec<u64>,
    row_of: Vec<u32>,
}

impl NeighborBitsets {
    /// Builds bitsets for vertices of degree at least `threshold`, spending
    /// at most [`BITSET_WORD_BUDGET`] words. When the budget cannot cover
    /// every qualifying vertex, the highest-degree ones get the rows (they
    /// save the most merge work); the rest use the merge path.
    fn build(graph: &Graph, threshold: usize) -> Self {
        let n = graph.num_vertices();
        let stride = n.div_ceil(64);
        let mut row_of = vec![u32::MAX; n];
        let mut heavy: Vec<u32> = (0..n as u32)
            .filter(|&v| graph.degree(v) >= threshold.max(1))
            .collect();
        heavy.sort_unstable_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v));
        heavy.truncate(BITSET_WORD_BUDGET / stride.max(1));
        let mut words = vec![0u64; heavy.len() * stride];
        for (row, &v) in heavy.iter().enumerate() {
            row_of[v as usize] = row as u32;
            let base = row * stride;
            for &w in graph.neighbors(v) {
                words[base + (w as usize >> 6)] |= 1u64 << (w & 63);
            }
        }
        NeighborBitsets {
            stride,
            words,
            row_of,
        }
    }

    /// An empty table (every intersection falls back to the sorted merge).
    fn none(n: usize) -> Self {
        NeighborBitsets {
            stride: 0,
            words: Vec::new(),
            row_of: vec![u32::MAX; n],
        }
    }

    /// The bitset row of `v`, if `v` is above the degree threshold.
    fn row(&self, v: u32) -> Option<&[u64]> {
        let r = self.row_of[v as usize];
        if r == u32::MAX {
            None
        } else {
            let start = r as usize * self.stride;
            Some(&self.words[start..start + self.stride])
        }
    }
}

/// Writes `{w ∈ cand : w adjacent to u}` into `out` (cleared first),
/// preserving the sorted order of `cand`. Uses the bitset row of `u` when one
/// exists and a two-pointer merge with the CSR row otherwise; either way the
/// result is identical and nothing is allocated beyond `out`'s capacity.
fn intersect_candidates(
    graph: &Graph,
    bitsets: &NeighborBitsets,
    u: u32,
    cand: &[u32],
    out: &mut Vec<u32>,
) {
    if let Some(row) = bitsets.row(u) {
        out.clear();
        for &w in cand {
            if row[w as usize >> 6] >> (w & 63) & 1 == 1 {
                out.push(w);
            }
        }
    } else {
        crate::graph::intersect_sorted_into(cand, graph.neighbors(u), out);
    }
}

/// Lists every clique on exactly `p` vertices, each exactly once, in
/// canonical (sorted) form.
///
/// `p = 0` yields the single empty clique, `p = 1` yields all vertices and
/// `p = 2` yields all edges, so the function is total in `p`.
pub fn list_cliques(graph: &Graph, p: usize) -> Vec<Clique> {
    let mut out = Vec::new();
    for_each_clique(graph, p, |c| out.push(c.to_vec()));
    out.sort_unstable();
    out
}

/// Counts the cliques on exactly `p` vertices without materialising them.
pub fn count_cliques(graph: &Graph, p: usize) -> usize {
    let mut count = 0usize;
    for_each_clique(graph, p, |_| count += 1);
    count
}

/// Calls `visit` once for every `p`-clique; the slice passed to the callback
/// is sorted in increasing vertex order.
pub fn for_each_clique(graph: &Graph, p: usize, mut visit: impl FnMut(&[u32])) {
    for_each_clique_while(graph, p, |c| {
        visit(c);
        true
    });
}

/// Like [`for_each_clique`], but the callback returns whether to continue:
/// returning `false` aborts the enumeration immediately. Returns `true` when
/// the enumeration ran to completion and `false` when it was aborted.
///
/// This is the streaming building block for consumers that only want a
/// bounded prefix of the listing (e.g. a saturating clique sink): the
/// ordered-search recursion unwinds as soon as the callback declines, so an
/// early stop costs nothing beyond the cliques already visited.
///
/// The enumeration allocates its working state (degeneracy ordering, oriented
/// DAG, per-depth candidate arena, adjacency bitsets) once up front and
/// nothing afterwards: no allocation per visited clique, no allocation per
/// recursion node.
pub fn for_each_clique_while(
    graph: &Graph,
    p: usize,
    mut visit: impl FnMut(&[u32]) -> bool,
) -> bool {
    let n = graph.num_vertices();
    if p == 0 {
        return visit(&[]);
    }
    if p == 1 {
        for v in 0..n as u32 {
            if !visit(&[v]) {
                return false;
            }
        }
        return true;
    }
    if p == 2 {
        for (u, v) in graph.edges() {
            if !visit(&[u, v]) {
                return false;
            }
        }
        return true;
    }

    let ordering = degeneracy_ordering(graph);
    let dag = OrientedDag::from_ordering(graph, &ordering);
    let bitsets = NeighborBitsets::build(graph, BITSET_DEGREE_THRESHOLD);
    // Candidate arena: one pre-sized buffer per recursion depth, reused for
    // the whole enumeration. Depth d holds candidate sets after d choices
    // beyond the root; every set is a subset of a DAG row, so max_out_degree
    // bounds the needed capacity once and for all.
    let max_out = dag.max_out_degree();
    let mut arena: Vec<Vec<u32>> = (0..p - 1).map(|_| Vec::with_capacity(max_out)).collect();
    let mut stack: Vec<u32> = Vec::with_capacity(p);
    // Scratch buffer for the sorted copy handed to the visitor, reused across
    // visits so the enumeration allocates nothing per clique.
    let mut scratch: Vec<u32> = Vec::with_capacity(p);
    for &v in &ordering.order {
        // Candidates: later neighbours of v, sorted by id.
        let candidates = dag.out_neighbors(v);
        if candidates.len() + 1 < p {
            continue;
        }
        arena[0].clear();
        arena[0].extend_from_slice(candidates);
        stack.push(v);
        let keep_going = extend_clique(
            graph,
            &bitsets,
            p,
            &mut arena,
            &mut stack,
            &mut scratch,
            &mut visit,
        );
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Recursively extends the clique on `stack` using the candidate set in
/// `arena[0]` (all of whose vertices are adjacent to every vertex already on
/// the stack); `arena[1..]` provides the pre-sized buffers for the deeper
/// candidate sets. Returns `false` as soon as the visitor declines, unwinding
/// the whole recursion. `scratch` receives the sorted copy passed to the
/// visitor (reused across visits — no per-clique allocation).
fn extend_clique(
    graph: &Graph,
    bitsets: &NeighborBitsets,
    p: usize,
    arena: &mut [Vec<u32>],
    stack: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    let (current, deeper) = arena.split_at_mut(1);
    let candidates: &[u32] = &current[0];
    let needed = p - stack.len();
    if candidates.len() < needed {
        return true;
    }
    let completing = stack.len() + 1 == p;
    for (i, &u) in candidates.iter().enumerate() {
        // Prune: not enough candidates remain after u.
        if candidates.len() - i < needed {
            break;
        }
        stack.push(u);
        let keep_going = if completing {
            scratch.clear();
            scratch.extend_from_slice(stack);
            scratch.sort_unstable();
            visit(scratch)
        } else {
            intersect_candidates(graph, bitsets, u, &candidates[i + 1..], &mut deeper[0]);
            extend_clique(graph, bitsets, p, deeper, stack, scratch, visit)
        };
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Reusable state for repeated [`cliques_containing_edge`]-style queries
/// against one graph: the adjacency bitsets, the candidate arena, the vertex
/// stack and the sort scratch are built once and shared across every queried
/// edge. This is the hot path of the in-cluster listing, which asks for the
/// cliques of each goal edge of a cluster in turn.
pub struct EdgeCliqueEnumerator<'g> {
    graph: &'g Graph,
    p: usize,
    bitsets: NeighborBitsets,
    arena: Vec<Vec<u32>>,
    stack: Vec<u32>,
    scratch: Vec<u32>,
}

impl<'g> EdgeCliqueEnumerator<'g> {
    /// Prepares an enumerator for `p`-cliques of `graph`. Builds the
    /// high-degree adjacency bitsets once; worth it from a handful of edge
    /// queries onward.
    pub fn new(graph: &'g Graph, p: usize) -> Self {
        EdgeCliqueEnumerator {
            graph,
            p,
            bitsets: NeighborBitsets::build(graph, BITSET_DEGREE_THRESHOLD),
            arena: (0..p.saturating_sub(1)).map(|_| Vec::new()).collect(),
            stack: Vec::with_capacity(p),
            scratch: Vec::with_capacity(p),
        }
    }

    /// Writes every `p`-clique containing the edge `{a, b}` into `out`
    /// (cleared first), sorted, each exactly once — the same output as
    /// [`cliques_containing_edge`], without the per-call setup.
    pub fn cliques_containing_edge_into(&mut self, a: u32, b: u32, out: &mut Vec<Clique>) {
        out.clear();
        if self.p < 2 || !self.graph.has_edge(a, b) {
            return;
        }
        if self.p == 2 {
            out.push(vec![a.min(b), a.max(b)]);
            return;
        }
        let EdgeCliqueEnumerator {
            graph,
            p,
            bitsets,
            arena,
            stack,
            scratch,
        } = self;
        graph.common_neighbors_into(a, b, &mut arena[0]);
        stack.clear();
        stack.push(a.min(b));
        stack.push(a.max(b));
        extend_clique(
            graph,
            bitsets,
            *p,
            arena,
            stack,
            scratch,
            &mut |c: &[u32]| {
                out.push(c.to_vec());
                true
            },
        );
        out.sort_unstable();
        out.dedup();
    }
}

/// Lists every `p`-clique that contains the given edge `{a, b}`.
///
/// Returns an empty list if the edge is absent. One-shot convenience over
/// [`EdgeCliqueEnumerator`]; callers querying many edges of the same graph
/// should hold an enumerator instead and amortise its setup.
pub fn cliques_containing_edge(graph: &Graph, p: usize, a: u32, b: u32) -> Vec<Clique> {
    if p < 2 || !graph.has_edge(a, b) {
        return Vec::new();
    }
    if p == 2 {
        return vec![vec![a.min(b), a.max(b)]];
    }
    // One-shot path: skip the bitset table (its build cost would dominate a
    // single query) and rely on the merges.
    let bitsets = NeighborBitsets::none(graph.num_vertices());
    let mut arena: Vec<Vec<u32>> = (0..p - 1).map(|_| Vec::new()).collect();
    graph.common_neighbors_into(a, b, &mut arena[0]);
    let capacity = arena[0].len();
    for level in arena.iter_mut().skip(1) {
        level.reserve(capacity);
    }
    let mut out = Vec::new();
    let mut stack = vec![a.min(b), a.max(b)];
    let mut scratch = Vec::with_capacity(p);
    extend_clique(
        graph,
        &bitsets,
        p,
        &mut arena,
        &mut stack,
        &mut scratch,
        &mut |c: &[u32]| {
            out.push(c.to_vec());
            true
        },
    );
    out.sort_unstable();
    out.dedup();
    out
}

/// Verifies that `candidate` is a clique of `graph` (all pairs adjacent,
/// vertices distinct).
pub fn is_clique(graph: &Graph, candidate: &[u32]) -> bool {
    for (i, &u) in candidate.iter().enumerate() {
        for &v in &candidate[i + 1..] {
            if u == v || !graph.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_has_binomial_many_cliques() {
        let g = gen::complete_graph(8);
        for p in 0..=9 {
            assert_eq!(count_cliques(&g, p), binomial(8, p), "p = {p}");
        }
    }

    #[test]
    fn small_p_special_cases() {
        let g = gen::path_graph(4);
        assert_eq!(list_cliques(&g, 0), vec![Vec::<u32>::new()]);
        assert_eq!(list_cliques(&g, 1).len(), 4);
        assert_eq!(list_cliques(&g, 2).len(), 3);
        assert_eq!(list_cliques(&g, 3).len(), 0);
    }

    #[test]
    fn listed_cliques_are_cliques_and_unique() {
        let g = gen::erdos_renyi(60, 0.25, 9);
        let k4s = list_cliques(&g, 4);
        for c in &k4s {
            assert_eq!(c.len(), 4);
            assert!(is_clique(&g, c));
            assert!(c.windows(2).all(|w| w[0] < w[1]), "not sorted: {c:?}");
        }
        let mut dedup = k4s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), k4s.len());
    }

    #[test]
    fn bipartite_graphs_have_no_triangles() {
        let g = gen::complete_bipartite(10, 10);
        assert_eq!(count_cliques(&g, 3), 0);
        assert_eq!(count_cliques(&g, 4), 0);
    }

    #[test]
    fn cliques_containing_edge_matches_filtered_listing() {
        let g = gen::erdos_renyi(40, 0.3, 4);
        let all = list_cliques(&g, 4);
        if let Some((a, b)) = g.edges().next() {
            let containing = cliques_containing_edge(&g, 4, a, b);
            let expected: Vec<Clique> = all
                .iter()
                .filter(|c| c.contains(&a) && c.contains(&b))
                .cloned()
                .collect();
            assert_eq!(containing, expected);
        }
        assert!(cliques_containing_edge(&g, 4, 0, 0).is_empty());
    }

    #[test]
    fn edge_enumerator_matches_the_one_shot_function() {
        let g = gen::erdos_renyi(50, 0.3, 8);
        for p in [3usize, 4, 5] {
            let mut enumerator = EdgeCliqueEnumerator::new(&g, p);
            let mut out = Vec::new();
            for (a, b) in g.edges() {
                enumerator.cliques_containing_edge_into(a, b, &mut out);
                assert_eq!(out, cliques_containing_edge(&g, p, a, b), "p={p} {a}-{b}");
            }
            // Absent edges yield nothing.
            enumerator.cliques_containing_edge_into(0, 0, &mut out);
            assert!(out.is_empty());
        }
        let mut pairs = EdgeCliqueEnumerator::new(&g, 2);
        let mut out = Vec::new();
        let first = g.edges().next();
        if let Some((a, b)) = first {
            pairs.cliques_containing_edge_into(b, a, &mut out);
            assert_eq!(out, vec![vec![a, b]]);
        }
    }

    #[test]
    fn cliques_containing_edge_handles_p_2() {
        let g = gen::path_graph(3);
        assert_eq!(cliques_containing_edge(&g, 2, 1, 0), vec![vec![0, 1]]);
        assert!(cliques_containing_edge(&g, 2, 0, 2).is_empty());
    }

    #[test]
    fn is_clique_detects_non_cliques() {
        let g = gen::path_graph(4);
        assert!(is_clique(&g, &[0, 1]));
        assert!(!is_clique(&g, &[0, 2]));
        assert!(!is_clique(&g, &[0, 0]));
        assert!(is_clique(&g, &[]));
        assert!(is_clique(&g, &[3]));
    }

    #[test]
    fn planted_cliques_are_found() {
        let (g, planted) = gen::planted_cliques(80, 0.01, 2, 6, 17);
        let k6s = list_cliques(&g, 6);
        for c in &planted {
            assert!(k6s.contains(&c.vertices), "planted clique missing");
        }
    }

    #[test]
    fn while_variant_stops_immediately_when_declined() {
        let g = gen::complete_graph(30);
        for p in [1usize, 2, 4] {
            let mut visited = Vec::new();
            let completed = for_each_clique_while(&g, p, |c| {
                visited.push(c.to_vec());
                visited.len() < 3
            });
            assert!(!completed, "p = {p}: enumeration must report the abort");
            assert_eq!(visited.len(), 3, "p = {p}: exactly 3 visits before stop");
        }
        // A callback that never declines sees everything and reports
        // completion.
        let mut count = 0usize;
        assert!(for_each_clique_while(&g, 3, |_| {
            count += 1;
            true
        }));
        assert_eq!(count, count_cliques(&g, 3));
    }

    #[test]
    fn triangle_count_matches_naive_on_random_graph() {
        let g = gen::erdos_renyi(50, 0.2, 21);
        let mut naive = 0;
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..50u32 {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        naive += 1;
                    }
                }
            }
        }
        assert_eq!(count_cliques(&g, 3), naive);
    }

    #[test]
    fn bitset_and_merge_paths_agree() {
        // A graph straddling the bitset degree threshold: a dense core (above
        // it) plus a sparse fringe (below it) so both intersection paths run.
        let mut edges = Vec::new();
        for u in 0..80u32 {
            for v in (u + 1)..80u32 {
                if (u + v) % 7 != 0 {
                    edges.push((u, v));
                }
            }
        }
        for f in 80..120u32 {
            edges.push((f, f % 7));
            edges.push((f, f % 11 + 20));
            edges.push((f, f % 5 + 40));
        }
        let g = Graph::from_edges(120, &edges).unwrap();
        assert!(g.max_degree() >= BITSET_DEGREE_THRESHOLD);
        assert!((0..120u32).any(|v| g.degree(v) < BITSET_DEGREE_THRESHOLD));
        for p in [3usize, 4, 5] {
            let listed = list_cliques(&g, p);
            // Reference: merge-only enumeration via the containing-edge API
            // (which never builds bitsets), unioned over all edges.
            let mut reference: Vec<Clique> = Vec::new();
            for (a, b) in g.edges() {
                reference.extend(cliques_containing_edge(&g, p, a, b));
            }
            reference.sort_unstable();
            reference.dedup();
            // Every clique contains at least one edge for p >= 2, but is
            // found once per contained edge — the dedup above fixes that.
            assert_eq!(listed, reference, "p = {p}");
        }
    }

    #[test]
    fn emission_order_is_reproducible() {
        let g = gen::erdos_renyi(40, 0.35, 2);
        let mut first = Vec::new();
        for_each_clique(&g, 4, |c| first.push(c.to_vec()));
        let mut second = Vec::new();
        for_each_clique(&g, 4, |c| second.push(c.to_vec()));
        assert_eq!(first, second);
    }
}
