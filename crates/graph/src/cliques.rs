//! Exact sequential `K_p` enumeration, used as ground truth.
//!
//! The enumerator follows the standard ordered-search scheme: fix a degeneracy
//! ordering, and for every vertex `v` enumerate cliques inside the set of
//! neighbours of `v` that come later in the ordering. Because that candidate
//! set has size at most the degeneracy, the running time is
//! `O(n · k^{p-1})` for a graph of degeneracy `k`, which is fast for the
//! sparse workloads used in the experiments.

use crate::orientation::degeneracy_ordering;
use crate::{Clique, Graph};

/// Lists every clique on exactly `p` vertices, each exactly once, in
/// canonical (sorted) form.
///
/// `p = 0` yields the single empty clique, `p = 1` yields all vertices and
/// `p = 2` yields all edges, so the function is total in `p`.
pub fn list_cliques(graph: &Graph, p: usize) -> Vec<Clique> {
    let mut out = Vec::new();
    for_each_clique(graph, p, |c| out.push(c.to_vec()));
    out.sort_unstable();
    out
}

/// Counts the cliques on exactly `p` vertices without materialising them.
pub fn count_cliques(graph: &Graph, p: usize) -> usize {
    let mut count = 0usize;
    for_each_clique(graph, p, |_| count += 1);
    count
}

/// Calls `visit` once for every `p`-clique; the slice passed to the callback
/// is sorted in increasing vertex order.
pub fn for_each_clique(graph: &Graph, p: usize, mut visit: impl FnMut(&[u32])) {
    for_each_clique_while(graph, p, |c| {
        visit(c);
        true
    });
}

/// Like [`for_each_clique`], but the callback returns whether to continue:
/// returning `false` aborts the enumeration immediately. Returns `true` when
/// the enumeration ran to completion and `false` when it was aborted.
///
/// This is the streaming building block for consumers that only want a
/// bounded prefix of the listing (e.g. a saturating clique sink): the
/// ordered-search recursion unwinds as soon as the callback declines, so an
/// early stop costs nothing beyond the cliques already visited.
pub fn for_each_clique_while(
    graph: &Graph,
    p: usize,
    mut visit: impl FnMut(&[u32]) -> bool,
) -> bool {
    let n = graph.num_vertices();
    if p == 0 {
        return visit(&[]);
    }
    if p == 1 {
        for v in 0..n as u32 {
            if !visit(&[v]) {
                return false;
            }
        }
        return true;
    }
    if p == 2 {
        for (u, v) in graph.edges() {
            if !visit(&[u, v]) {
                return false;
            }
        }
        return true;
    }

    let ordering = degeneracy_ordering(graph);
    let position = &ordering.position;
    let mut stack: Vec<u32> = Vec::with_capacity(p);
    // Scratch buffer for the sorted copy handed to the visitor, reused across
    // visits so the enumeration allocates nothing per clique.
    let mut scratch: Vec<u32> = Vec::with_capacity(p);
    for &v in &ordering.order {
        // Candidates: later neighbours of v.
        let candidates: Vec<u32> = graph
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&w| position[w as usize] > position[v as usize])
            .collect();
        if candidates.len() + 1 < p {
            continue;
        }
        stack.push(v);
        let keep_going = extend_clique(graph, p, &candidates, &mut stack, &mut scratch, &mut visit);
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Recursively extends the clique on `stack` using vertices from `candidates`
/// (all of which are adjacent to every vertex already on the stack). Returns
/// `false` as soon as the visitor declines, unwinding the whole recursion.
/// `scratch` receives the sorted copy passed to the visitor (reused across
/// visits — no per-clique allocation).
fn extend_clique(
    graph: &Graph,
    p: usize,
    candidates: &[u32],
    stack: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    if stack.len() == p {
        scratch.clear();
        scratch.extend_from_slice(stack);
        scratch.sort_unstable();
        return visit(scratch);
    }
    let needed = p - stack.len();
    if candidates.len() < needed {
        return true;
    }
    for (i, &u) in candidates.iter().enumerate() {
        // Prune: not enough candidates remain after u.
        if candidates.len() - i < needed {
            break;
        }
        let next: Vec<u32> = candidates[i + 1..]
            .iter()
            .copied()
            .filter(|&w| graph.has_edge(u, w))
            .collect();
        stack.push(u);
        let keep_going = extend_clique(graph, p, &next, stack, scratch, visit);
        stack.pop();
        if !keep_going {
            return false;
        }
    }
    true
}

/// Lists every `p`-clique that contains the given edge `{a, b}`.
///
/// Returns an empty list if the edge is absent.
pub fn cliques_containing_edge(graph: &Graph, p: usize, a: u32, b: u32) -> Vec<Clique> {
    if p < 2 || !graph.has_edge(a, b) {
        return Vec::new();
    }
    let common = graph.common_neighbors(a, b);
    let mut out = Vec::new();
    let mut stack = vec![a.min(b), a.max(b)];
    let mut scratch = Vec::with_capacity(p);
    extend_clique(
        graph,
        p,
        &common,
        &mut stack,
        &mut scratch,
        &mut |c: &[u32]| {
            out.push(c.to_vec());
            true
        },
    );
    out.sort_unstable();
    out.dedup();
    out
}

/// Verifies that `candidate` is a clique of `graph` (all pairs adjacent,
/// vertices distinct).
pub fn is_clique(graph: &Graph, candidate: &[u32]) -> bool {
    for (i, &u) in candidate.iter().enumerate() {
        for &v in &candidate[i + 1..] {
            if u == v || !graph.has_edge(u, v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    fn binomial(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn complete_graph_has_binomial_many_cliques() {
        let g = gen::complete_graph(8);
        for p in 0..=9 {
            assert_eq!(count_cliques(&g, p), binomial(8, p), "p = {p}");
        }
    }

    #[test]
    fn small_p_special_cases() {
        let g = gen::path_graph(4);
        assert_eq!(list_cliques(&g, 0), vec![Vec::<u32>::new()]);
        assert_eq!(list_cliques(&g, 1).len(), 4);
        assert_eq!(list_cliques(&g, 2).len(), 3);
        assert_eq!(list_cliques(&g, 3).len(), 0);
    }

    #[test]
    fn listed_cliques_are_cliques_and_unique() {
        let g = gen::erdos_renyi(60, 0.25, 9);
        let k4s = list_cliques(&g, 4);
        for c in &k4s {
            assert_eq!(c.len(), 4);
            assert!(is_clique(&g, c));
            assert!(c.windows(2).all(|w| w[0] < w[1]), "not sorted: {c:?}");
        }
        let mut dedup = k4s.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), k4s.len());
    }

    #[test]
    fn bipartite_graphs_have_no_triangles() {
        let g = gen::complete_bipartite(10, 10);
        assert_eq!(count_cliques(&g, 3), 0);
        assert_eq!(count_cliques(&g, 4), 0);
    }

    #[test]
    fn cliques_containing_edge_matches_filtered_listing() {
        let g = gen::erdos_renyi(40, 0.3, 4);
        let all = list_cliques(&g, 4);
        if let Some((a, b)) = g.edges().next() {
            let containing = cliques_containing_edge(&g, 4, a, b);
            let expected: Vec<Clique> = all
                .iter()
                .filter(|c| c.contains(&a) && c.contains(&b))
                .cloned()
                .collect();
            assert_eq!(containing, expected);
        }
        assert!(cliques_containing_edge(&g, 4, 0, 0).is_empty());
    }

    #[test]
    fn is_clique_detects_non_cliques() {
        let g = gen::path_graph(4);
        assert!(is_clique(&g, &[0, 1]));
        assert!(!is_clique(&g, &[0, 2]));
        assert!(!is_clique(&g, &[0, 0]));
        assert!(is_clique(&g, &[]));
        assert!(is_clique(&g, &[3]));
    }

    #[test]
    fn planted_cliques_are_found() {
        let (g, planted) = gen::planted_cliques(80, 0.01, 2, 6, 17);
        let k6s = list_cliques(&g, 6);
        for c in &planted {
            assert!(k6s.contains(&c.vertices), "planted clique missing");
        }
    }

    #[test]
    fn while_variant_stops_immediately_when_declined() {
        let g = gen::complete_graph(30);
        for p in [1usize, 2, 4] {
            let mut visited = Vec::new();
            let completed = for_each_clique_while(&g, p, |c| {
                visited.push(c.to_vec());
                visited.len() < 3
            });
            assert!(!completed, "p = {p}: enumeration must report the abort");
            assert_eq!(visited.len(), 3, "p = {p}: exactly 3 visits before stop");
        }
        // A callback that never declines sees everything and reports
        // completion.
        let mut count = 0usize;
        assert!(for_each_clique_while(&g, 3, |_| {
            count += 1;
            true
        }));
        assert_eq!(count, count_cliques(&g, 3));
    }

    #[test]
    fn triangle_count_matches_naive_on_random_graph() {
        let g = gen::erdos_renyi(50, 0.2, 21);
        let mut naive = 0;
        for u in 0..50u32 {
            for v in (u + 1)..50u32 {
                if !g.has_edge(u, v) {
                    continue;
                }
                for w in (v + 1)..50u32 {
                    if g.has_edge(u, w) && g.has_edge(v, w) {
                        naive += 1;
                    }
                }
            }
        }
        assert_eq!(count_cliques(&g, 3), naive);
    }
}
