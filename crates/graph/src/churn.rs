//! Edge churn: validated, canonicalised insert/delete batches and their
//! incremental application to a CSR [`Graph`].
//!
//! An [`EdgeBatch`] is the unit of graph mutation in the dynamic-snapshot
//! layer (the `query` crate's `GraphSnapshot::apply_batch`): a pair of edge
//! sets to insert and to delete, canonicalised at construction (`u < v`,
//! sorted, duplicate-free) with the contradictions rejected as typed
//! [`BatchError`]s instead of silently resolved.
//!
//! [`Graph::apply_edge_batch`] applies a batch by merging each *touched*
//! vertex's sorted CSR row with its sorted per-vertex delta and copying every
//! untouched row verbatim. Because CSR form is a canonical function of the
//! edge set — rows sorted by id, duplicates impossible — the merged result is
//! **exactly equal** to [`Graph::from_edges`] over the mutated edge list,
//! without re-sorting or re-deduplicating any row. That equivalence is the
//! incremental-equals-recompute contract the churn differential battery in
//! `tests/churn_differential.rs` enforces.

use crate::graph::{Graph, GraphError};
use std::fmt;

/// Why an [`EdgeBatch`] could not be constructed or applied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchError {
    /// An endpoint pair with `u == v`; simple graphs have no self-loops.
    SelfLoop {
        /// The vertex with the loop.
        vertex: u32,
    },
    /// The same edge appears in both the insert and the delete set — the
    /// batch's intent is contradictory, so it is rejected rather than
    /// resolved by an arbitrary precedence rule.
    InsertDeleteConflict {
        /// Smaller endpoint of the conflicting edge.
        u: u32,
        /// Larger endpoint of the conflicting edge.
        v: u32,
    },
    /// An endpoint does not exist in the graph the batch is applied to.
    /// Raised at application time — a batch is graph-independent until then.
    VertexOutOfRange {
        /// The offending vertex identifier.
        vertex: u32,
        /// The number of vertices of the target graph.
        n: usize,
    },
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BatchError::SelfLoop { vertex } => {
                write!(f, "batch contains a self-loop at vertex {vertex}")
            }
            BatchError::InsertDeleteConflict { u, v } => {
                write!(f, "edge {{{u},{v}}} is both inserted and deleted")
            }
            BatchError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "batch vertex {vertex} out of range for graph with {n} vertices"
                )
            }
        }
    }
}

impl std::error::Error for BatchError {}

/// A validated, canonicalised set of edge insertions and deletions.
///
/// Both edge lists are stored with `u < v`, sorted lexicographically and
/// duplicate-free, so two batches describing the same mutation compare equal
/// regardless of how their edges were spelled. Inserting an edge that already
/// exists, or deleting one that does not, is *not* an error: the effective
/// churn is resolved against the target graph at application time (see
/// [`Graph::apply_edge_batch`]), which is what makes a no-op batch
/// well-defined.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeBatch {
    inserts: Vec<(u32, u32)>,
    deletes: Vec<(u32, u32)>,
}

/// Canonicalises one raw edge list: orient every pair as `(min, max)`, sort
/// lexicographically, drop duplicates. Self-loops are the only per-edge
/// rejection.
fn canonicalize(edges: &[(u32, u32)]) -> Result<Vec<(u32, u32)>, BatchError> {
    let mut out = Vec::with_capacity(edges.len());
    for &(u, v) in edges {
        if u == v {
            return Err(BatchError::SelfLoop { vertex: u });
        }
        out.push((u.min(v), u.max(v)));
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

impl EdgeBatch {
    /// Builds a batch from raw insert and delete lists. Either list may spell
    /// edges in any orientation and contain duplicates; the stored form is
    /// canonical (`u < v`, sorted, deduplicated).
    ///
    /// # Errors
    ///
    /// [`BatchError::SelfLoop`] when an edge has `u == v`, and
    /// [`BatchError::InsertDeleteConflict`] when the canonicalised sets
    /// intersect.
    pub fn new(inserts: &[(u32, u32)], deletes: &[(u32, u32)]) -> Result<EdgeBatch, BatchError> {
        let inserts = canonicalize(inserts)?;
        let deletes = canonicalize(deletes)?;
        // Both lists are sorted: one linear merge finds any conflict.
        let (mut i, mut j) = (0, 0);
        while i < inserts.len() && j < deletes.len() {
            match inserts[i].cmp(&deletes[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    let (u, v) = inserts[i];
                    return Err(BatchError::InsertDeleteConflict { u, v });
                }
            }
        }
        Ok(EdgeBatch { inserts, deletes })
    }

    /// The empty batch (applies as a no-op to any graph).
    pub fn empty() -> EdgeBatch {
        EdgeBatch::default()
    }

    /// The canonicalised edges to insert, sorted with `u < v`.
    pub fn inserts(&self) -> &[(u32, u32)] {
        &self.inserts
    }

    /// The canonicalised edges to delete, sorted with `u < v`.
    pub fn deletes(&self) -> &[(u32, u32)] {
        &self.deletes
    }

    /// Whether the batch requests no change at all.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Total number of requested edge changes (before resolving against a
    /// graph).
    pub fn len(&self) -> usize {
        self.inserts.len() + self.deletes.len()
    }
}

/// The *effective* churn of one batch application: the requested changes
/// that actually altered the graph. Inserts already present and deletes
/// already absent are dropped here, which is what makes "apply an
/// ineffective batch" a structural no-op with an unchanged content identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AppliedBatch {
    /// Edges newly added (`u < v`, sorted): requested inserts that were
    /// absent.
    pub inserted: Vec<(u32, u32)>,
    /// Edges removed (`u < v`, sorted): requested deletes that were present.
    pub deleted: Vec<(u32, u32)>,
}

impl AppliedBatch {
    /// Whether the application changed nothing.
    pub fn is_noop(&self) -> bool {
        self.inserted.is_empty() && self.deleted.is_empty()
    }

    /// Number of effective edge changes.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.deleted.len()
    }

    /// Alias of [`AppliedBatch::is_noop`] for the `len`/`is_empty` pair
    /// clippy expects.
    pub fn is_empty(&self) -> bool {
        self.is_noop()
    }
}

impl Graph {
    /// Applies an [`EdgeBatch`], returning the mutated graph and the
    /// effective churn ([`AppliedBatch`]).
    ///
    /// The vertex set is unchanged; inserts that already exist and deletes
    /// that miss are silently ineffective (reported as such via the returned
    /// [`AppliedBatch`], never as errors). The construction is incremental:
    /// every row of a vertex not incident to an effective change is copied
    /// verbatim, and each touched row is a single sorted merge of the old row
    /// with its delta — no global sort, no per-row deduplication. The result
    /// is guaranteed equal to `Graph::from_edges` over the mutated edge list
    /// because CSR form is canonical in the edge set.
    ///
    /// # Errors
    ///
    /// [`BatchError::VertexOutOfRange`] when any batch endpoint is `>= n`.
    /// The graph is not partially modified on error (the method takes
    /// `&self`).
    pub fn apply_edge_batch(&self, batch: &EdgeBatch) -> Result<(Graph, AppliedBatch), BatchError> {
        let n = self.num_vertices();
        for &(u, v) in batch.inserts().iter().chain(batch.deletes()) {
            for vertex in [u, v] {
                if vertex as usize >= n {
                    return Err(BatchError::VertexOutOfRange { vertex, n });
                }
            }
        }
        let applied = AppliedBatch {
            inserted: batch
                .inserts()
                .iter()
                .copied()
                .filter(|&(u, v)| !self.has_edge(u, v))
                .collect(),
            deleted: batch
                .deletes()
                .iter()
                .copied()
                .filter(|&(u, v)| self.has_edge(u, v))
                .collect(),
        };
        if applied.is_noop() {
            return Ok((self.clone(), applied));
        }
        // Per-vertex deltas for the touched vertices only.
        let mut add: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut del: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut touched: Vec<u32> = Vec::with_capacity(2 * applied.len());
        for &(u, v) in &applied.inserted {
            add[u as usize].push(v);
            add[v as usize].push(u);
            touched.extend([u, v]);
        }
        for &(u, v) in &applied.deleted {
            del[u as usize].push(v);
            del[v as usize].push(u);
            touched.extend([u, v]);
        }
        for &v in &touched {
            add[v as usize].sort_unstable();
            del[v as usize].sort_unstable();
        }
        touched.sort_unstable();
        touched.dedup();

        let new_len =
            self.neighbor_array_len() + 2 * applied.inserted.len() - 2 * applied.deleted.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut nbrs = Vec::with_capacity(new_len);
        let mut next_touched = touched.iter().copied().peekable();
        for v in 0..n as u32 {
            let row = self.neighbors(v);
            if next_touched.peek() == Some(&v) {
                next_touched.next();
                merge_row(row, &add[v as usize], &del[v as usize], &mut nbrs);
            } else {
                nbrs.extend_from_slice(row);
            }
            offsets.push(nbrs.len() as u32);
        }
        let num_edges = self.num_edges() + applied.inserted.len() - applied.deleted.len();
        debug_assert_eq!(nbrs.len(), new_len);
        Ok((Graph::from_csr_parts(offsets, nbrs, num_edges), applied))
    }

    /// Length of the concatenated neighbour array (`2m`).
    fn neighbor_array_len(&self) -> usize {
        2 * self.num_edges()
    }
}

/// Merges one sorted CSR row with its sorted delta: emits `(row ∖ del) ∪ add`
/// in ascending order. `add` is disjoint from `row` and `del ⊆ row` (both
/// guaranteed by the effective-churn filtering), so the output needs no
/// deduplication.
fn merge_row(row: &[u32], add: &[u32], del: &[u32], out: &mut Vec<u32>) {
    let (mut ai, mut di) = (0usize, 0usize);
    for &w in row {
        while ai < add.len() && add[ai] < w {
            out.push(add[ai]);
            ai += 1;
        }
        if di < del.len() && del[di] == w {
            di += 1;
            continue;
        }
        out.push(w);
    }
    out.extend_from_slice(&add[ai..]);
    debug_assert_eq!(di, del.len(), "a delete missed the row");
}

impl From<GraphError> for BatchError {
    fn from(err: GraphError) -> BatchError {
        match err {
            GraphError::VertexOutOfRange { vertex, n } => {
                BatchError::VertexOutOfRange { vertex, n }
            }
            GraphError::SelfLoop { vertex } => BatchError::SelfLoop { vertex },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn batches_canonicalise_orientation_and_duplicates() {
        let batch = EdgeBatch::new(&[(3, 1), (1, 3), (0, 2)], &[(5, 4)]).unwrap();
        assert_eq!(batch.inserts(), &[(0, 2), (1, 3)]);
        assert_eq!(batch.deletes(), &[(4, 5)]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_empty());
        assert!(EdgeBatch::empty().is_empty());
        // Equal mutations compare equal whatever the spelling.
        assert_eq!(
            batch,
            EdgeBatch::new(&[(0, 2), (3, 1), (3, 1)], &[(4, 5)]).unwrap()
        );
    }

    #[test]
    fn batch_construction_rejects_contradictions() {
        assert_eq!(
            EdgeBatch::new(&[(1, 1)], &[]),
            Err(BatchError::SelfLoop { vertex: 1 })
        );
        assert_eq!(
            EdgeBatch::new(&[], &[(2, 2)]),
            Err(BatchError::SelfLoop { vertex: 2 })
        );
        let err = EdgeBatch::new(&[(0, 1), (2, 3)], &[(3, 2)]).unwrap_err();
        assert_eq!(err, BatchError::InsertDeleteConflict { u: 2, v: 3 });
        assert!(format!("{err}").contains("both inserted and deleted"));
    }

    #[test]
    fn application_validates_vertex_range() {
        let g = gen::path_graph(4);
        let batch = EdgeBatch::new(&[(0, 9)], &[]).unwrap();
        assert_eq!(
            g.apply_edge_batch(&batch).unwrap_err(),
            BatchError::VertexOutOfRange { vertex: 9, n: 4 }
        );
        let batch = EdgeBatch::new(&[], &[(7, 1)]).unwrap();
        assert!(matches!(
            g.apply_edge_batch(&batch),
            Err(BatchError::VertexOutOfRange { vertex: 7, n: 4 })
        ));
    }

    #[test]
    fn incremental_application_equals_from_scratch() {
        // Random graphs × random batches: the merged CSR must equal the
        // from-scratch build of the mutated edge list, field for field.
        for seed in 0..6u64 {
            let g = gen::erdos_renyi(40, 0.2, seed);
            let edges: Vec<(u32, u32)> = g.edges().collect();
            // Deterministic batch: delete every 3rd edge, insert the
            // complement pairs of a shifted generator.
            let deletes: Vec<(u32, u32)> = edges.iter().copied().step_by(3).collect();
            let other = gen::erdos_renyi(40, 0.1, seed + 100);
            let inserts: Vec<(u32, u32)> = other
                .edges()
                .filter(|&(u, v)| !g.has_edge(u, v))
                .take(25)
                .collect();
            let batch = EdgeBatch::new(&inserts, &deletes).unwrap();
            let (incremental, applied) = g.apply_edge_batch(&batch).unwrap();
            assert_eq!(applied.inserted, inserts, "seed {seed}");
            assert_eq!(applied.deleted, deletes, "seed {seed}");
            let mut mutated: Vec<(u32, u32)> = edges
                .iter()
                .copied()
                .filter(|e| !deletes.contains(e))
                .chain(inserts.iter().copied())
                .collect();
            mutated.sort_unstable();
            let scratch = Graph::from_edges(40, &mutated).unwrap();
            assert_eq!(incremental, scratch, "seed {seed}");
            assert_eq!(
                incremental.num_edges(),
                edges.len() - deletes.len() + inserts.len(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn ineffective_changes_resolve_to_a_noop() {
        // Path graph edges: 0-1, 1-2, 2-3, 3-4. Insert an existing edge,
        // delete a missing one: nothing effective.
        let g = gen::path_graph(5);
        let batch = EdgeBatch::new(&[(1, 0)], &[(0, 4)]).unwrap();
        let (same, applied) = g.apply_edge_batch(&batch).unwrap();
        assert!(applied.is_noop());
        assert!(applied.is_empty());
        assert_eq!(applied.len(), 0);
        assert_eq!(same, g);
        // The empty batch is likewise a no-op.
        let (same, applied) = g.apply_edge_batch(&EdgeBatch::empty()).unwrap();
        assert!(applied.is_noop());
        assert_eq!(same, g);
        // A mixed batch only reports its effective half.
        let batch = EdgeBatch::new(&[(0, 1), (0, 2)], &[(3, 4), (0, 3)]).unwrap();
        let (changed, applied) = g.apply_edge_batch(&batch).unwrap();
        assert_eq!(applied.inserted, vec![(0, 2)]);
        assert_eq!(applied.deleted, vec![(3, 4)]);
        assert!(changed.has_edge(0, 2));
        assert!(!changed.has_edge(3, 4));
        assert_eq!(changed.num_edges(), g.num_edges());
    }

    #[test]
    fn graph_errors_convert_to_batch_errors() {
        assert_eq!(
            BatchError::from(GraphError::SelfLoop { vertex: 3 }),
            BatchError::SelfLoop { vertex: 3 }
        );
        assert_eq!(
            BatchError::from(GraphError::VertexOutOfRange { vertex: 8, n: 2 }),
            BatchError::VertexOutOfRange { vertex: 8, n: 2 }
        );
        let err = BatchError::VertexOutOfRange { vertex: 8, n: 2 };
        assert!(format!("{err}").contains("out of range"));
    }
}
