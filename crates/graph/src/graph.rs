//! Compact undirected graphs with sorted adjacency lists.

use crate::edge::{Edge, EdgeSet};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Errors produced when constructing or manipulating a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex identifier.
        vertex: u32,
        /// The number of vertices of the graph.
        n: usize,
    },
    /// A self-loop was supplied where a simple edge is required.
    SelfLoop {
        /// The vertex with the loop.
        vertex: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An undirected simple graph on vertices `0..n`.
///
/// Adjacency lists are kept sorted so that adjacency queries cost
/// `O(log deg)` and neighbourhood intersections cost `O(deg_u + deg_v)`.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    adj: Vec<Vec<u32>>,
    num_edges: usize,
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            adj: vec![Vec::new(); n],
            num_edges: 0,
        }
    }

    /// Builds a graph from an edge list, ignoring duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if `u == v` for some edge.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
            sets[u as usize].insert(v);
            sets[v as usize].insert(u);
        }
        let mut num_edges = 0;
        let adj: Vec<Vec<u32>> = sets
            .into_iter()
            .map(|s| {
                num_edges += s.len();
                s.into_iter().collect()
            })
            .collect();
        Ok(Graph {
            adj,
            num_edges: num_edges / 2,
        })
    }

    /// Builds a graph from an [`EdgeSet`] over `n` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edge_set(n: usize, edges: &EdgeSet) -> Result<Self, GraphError> {
        let list: Vec<(u32, u32)> = edges.iter().map(Edge::endpoints).collect();
        Graph::from_edges(n, &list)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        self.adj[v as usize].len()
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.adj.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Average degree (`2m / n`; 0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            0.0
        } else {
            2.0 * self.num_edges as f64 / self.adj.len() as f64
        }
    }

    /// The sorted neighbour list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.adj[v as usize]
    }

    /// Whether `u` and `v` are adjacent.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        if u == v || u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        let (small, large) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.adj[small as usize].binary_search(&large).is_ok()
    }

    /// Adds an edge, returning `true` if it was not already present.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<bool, GraphError> {
        let n = self.adj.len();
        if u as usize >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        let pos_u = self.adj[u as usize].binary_search(&v).unwrap_err();
        self.adj[u as usize].insert(pos_u, v);
        let pos_v = self.adj[v as usize].binary_search(&u).unwrap_err();
        self.adj[v as usize].insert(pos_v, u);
        self.num_edges += 1;
        Ok(true)
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`, in
    /// lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.adj.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&&v| (u as u32) < v)
                .map(move |&v| (u as u32, v))
        })
    }

    /// Collects the edge set of the graph.
    pub fn edge_set(&self) -> EdgeSet {
        self.edges().map(|(u, v)| Edge::new(u, v)).collect()
    }

    /// Returns the subgraph on the same vertex set containing only the given
    /// edges (edges not present in `self` are ignored).
    pub fn edge_subgraph(&self, edges: &EdgeSet) -> Graph {
        let filtered: Vec<(u32, u32)> = edges
            .iter()
            .filter(|e| self.has_edge(e.u(), e.v()))
            .map(Edge::endpoints)
            .collect();
        Graph::from_edges(self.num_vertices(), &filtered)
            .expect("edges of an existing graph are always in range")
    }

    /// Returns the subgraph on the same vertex set with the given edges
    /// removed.
    pub fn without_edges(&self, edges: &EdgeSet) -> Graph {
        let remaining: Vec<(u32, u32)> = self
            .edges()
            .filter(|&(u, v)| !edges.contains_pair(u, v))
            .collect();
        Graph::from_edges(self.num_vertices(), &remaining)
            .expect("remaining edges are always in range")
    }

    /// Returns the subgraph induced by `vertices` **keeping the original
    /// vertex identifiers** (vertices outside the set become isolated).
    pub fn induced_keep_ids(&self, vertices: &[u32]) -> Graph {
        let set: BTreeSet<u32> = vertices.iter().copied().collect();
        let edges: Vec<(u32, u32)> = self
            .edges()
            .filter(|&(u, v)| set.contains(&u) && set.contains(&v))
            .collect();
        Graph::from_edges(self.num_vertices(), &edges).expect("existing edges are in range")
    }

    /// Sorted intersection of the neighbourhoods of `u` and `v`.
    pub fn common_neighbors(&self, u: u32, v: u32) -> Vec<u32> {
        let a = self.neighbors(u);
        let b = self.neighbors(v);
        let mut out = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Connected components as lists of vertices; singleton components are
    /// included.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start as u32];
            seen[start] = true;
            let mut component = Vec::new();
            while let Some(v) = stack.pop() {
                component.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Vertices with at least one incident edge.
    pub fn non_isolated_vertices(&self) -> Vec<u32> {
        (0..self.num_vertices() as u32)
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1-2 triangle, 3 hanging off 2, 4 isolated.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_properties() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.6).abs() < 1e-12);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        );
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
        let err = GraphError::SelfLoop { vertex: 1 };
        assert!(format!("{err}").contains("self-loop"));
    }

    #[test]
    fn add_edge_keeps_sorted_invariant() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(3, 1).unwrap());
        assert!(g.add_edge(1, 0).unwrap());
        assert!(!g.add_edge(0, 1).unwrap());
        assert!(g.add_edge(1, 2).unwrap());
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.add_edge(0, 0).is_err());
        assert!(g.add_edge(0, 9).is_err());
    }

    #[test]
    fn common_neighbors_intersects() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors(0, 3), vec![2]);
        assert_eq!(g.common_neighbors(3, 4), Vec::<u32>::new());
    }

    #[test]
    fn edge_subgraph_and_removal() {
        let g = triangle_plus_pendant();
        let mut keep = EdgeSet::new();
        keep.insert(Edge::new(0, 1));
        keep.insert(Edge::new(2, 3));
        keep.insert(Edge::new(3, 4)); // not an edge of g, ignored
        let sub = g.edge_subgraph(&keep);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(0, 2));

        let rest = g.without_edges(&keep);
        assert_eq!(rest.num_edges(), 2);
        assert!(rest.has_edge(0, 2));
        assert!(rest.has_edge(1, 2));
        assert!(!rest.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let g = triangle_plus_pendant();
        let sub = g.induced_keep_ids(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 5);
        assert_eq!(sub.num_edges(), 3);
        assert!(!sub.has_edge(2, 3));
    }

    #[test]
    fn components() {
        let g = triangle_plus_pendant();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
        assert_eq!(comps[1], vec![4]);
        assert_eq!(g.non_isolated_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn edge_set_roundtrip() {
        let g = triangle_plus_pendant();
        let set = g.edge_set();
        assert_eq!(set.len(), 4);
        let g2 = Graph::from_edge_set(5, &set).unwrap();
        assert_eq!(g, g2);
    }
}
