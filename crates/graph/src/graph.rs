//! Compact undirected graphs in CSR (compressed sparse row) form.
//!
//! The adjacency structure is two flat arrays — `offsets` (one entry per
//! vertex plus a sentinel) and `nbrs` (all neighbour lists concatenated, each
//! sorted by vertex id) — so a neighbourhood is one contiguous, cache-friendly
//! slice. Point queries (`has_edge`) binary-search the shorter endpoint's row
//! in `O(log deg)`, but the hot paths deliberately avoid per-element point
//! queries: neighbourhood intersections are sorted merges over the CSR rows
//! (`common_neighbors_into`, [`intersect_sorted_into`]) in
//! `O(deg_u + deg_v)`, and the clique enumerator in [`crate::cliques`] works
//! on a pre-built oriented DAG with reusable buffers instead of probing
//! `has_edge` in its innermost loop.
//!
//! Subgraph builders (`edge_subgraph`, `without_edges`, `induced_keep_ids`)
//! are single-pass linear filters over the CSR arrays: rows stay sorted by
//! construction, so no per-vertex set rebuild is needed.

use crate::edge::{Edge, EdgeSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced when constructing or manipulating a [`Graph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is not a vertex of the graph.
    VertexOutOfRange {
        /// The offending vertex identifier.
        vertex: u32,
        /// The number of vertices of the graph.
        n: usize,
    },
    /// A self-loop was supplied where a simple edge is required.
    SelfLoop {
        /// The vertex with the loop.
        vertex: u32,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::VertexOutOfRange { vertex, n } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {n} vertices"
                )
            }
            GraphError::SelfLoop { vertex } => write!(f, "self-loop at vertex {vertex}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Size ratio from which [`intersect_sorted_into`] switches from the linear
/// two-pointer merge to galloping through the longer side. Galloping costs
/// `O(|short| · log |long|)`, so it wins once `|long| / |short|` clearly
/// exceeds `log |long|`; 32 keeps the linear merge for comparable rows
/// (where it is branch-predictable and cache-friendly) and reserves the
/// gallop for genuinely skewed pairs — a low-degree candidate set against a
/// hub's CSR row.
const GALLOP_RATIO: usize = 32;

/// Writes the sorted intersection of two sorted `u32` slices into `out`
/// (cleared first). Comparable sizes take the classic `O(|a| + |b|)`
/// two-pointer merge; skewed sizes (ratio ≥ [`GALLOP_RATIO`]) gallop: each
/// element of the shorter slice is located in the remaining suffix of the
/// longer one by doubling probes plus a bounded binary search, for
/// `O(|short| · log |long|)` total. Both paths produce identical output and
/// allocate nothing beyond `out`'s existing capacity.
pub fn intersect_sorted_into(a: &[u32], b: &[u32], out: &mut Vec<u32>) {
    out.clear();
    if a.len() >= b.len().saturating_mul(GALLOP_RATIO) {
        return gallop_intersect(b, a, out);
    }
    if b.len() >= a.len().saturating_mul(GALLOP_RATIO) {
        return gallop_intersect(a, b, out);
    }
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Intersects by galloping through `long` for each element of `short`
/// (`out` already cleared by the caller). The search window only ever moves
/// forward: `lo` is the first position of `long` not yet ruled out, so the
/// whole pass touches each element of `short` once and `O(log |long|)`
/// positions of `long` per element.
fn gallop_intersect(short: &[u32], long: &[u32], out: &mut Vec<u32>) {
    let mut lo = 0usize;
    for &x in short {
        // Probe forward with doubling steps until long[hi] >= x (or the end);
        // every position below lo is then known to hold a value < x.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo.saturating_add(step).min(long.len());
            step <<= 1;
        }
        // The stopping probe itself may equal x, so the search window is
        // [lo, hi] clamped to the slice.
        let upper = if hi < long.len() { hi + 1 } else { long.len() };
        match long[lo..upper].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= long.len() {
            break;
        }
    }
}

/// An undirected simple graph on vertices `0..n`, stored in CSR form.
///
/// The neighbours of `v` live in `nbrs[offsets[v]..offsets[v+1]]`, sorted by
/// vertex id. See the module docs for the cost model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// CSR row offsets; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour lists.
    nbrs: Vec<u32>,
    num_edges: usize,
}

impl Default for Graph {
    fn default() -> Self {
        Graph::new(0)
    }
}

impl Graph {
    /// Creates an empty graph with `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            nbrs: Vec::new(),
            num_edges: 0,
        }
    }

    /// Assembles a graph from prebuilt CSR arrays. The caller (the batch
    /// application in [`crate::churn`]) guarantees the invariants: sorted,
    /// duplicate-free rows, symmetric adjacency, `offsets.len() == n + 1` and
    /// `num_edges == nbrs.len() / 2`.
    pub(crate) fn from_csr_parts(offsets: Vec<u32>, nbrs: Vec<u32>, num_edges: usize) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0) as usize, nbrs.len());
        debug_assert_eq!(num_edges * 2, nbrs.len());
        Graph {
            offsets,
            nbrs,
            num_edges,
        }
    }

    /// Builds a graph from an edge list, ignoring duplicates.
    ///
    /// Single-pass linear construction: count degrees, scatter both directed
    /// copies into the CSR array, then sort and deduplicate each row in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n` and
    /// [`GraphError::SelfLoop`] if `u == v` for some edge.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { vertex: u });
            }
        }
        // Degree count (duplicates included; they are squeezed out below).
        let mut offsets = vec![0u32; n + 1];
        for &(u, v) in edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Scatter.
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut nbrs = vec![0u32; offsets[n] as usize];
        for &(u, v) in edges {
            nbrs[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            nbrs[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Sort each row and compact duplicates in place.
        let mut write = 0usize;
        let mut compacted = vec![0u32; n + 1];
        for v in 0..n {
            let (start, end) = (offsets[v] as usize, offsets[v + 1] as usize);
            nbrs[start..end].sort_unstable();
            compacted[v] = write as u32;
            let mut prev = u32::MAX;
            for read in start..end {
                let w = nbrs[read];
                if w != prev {
                    nbrs[write] = w;
                    write += 1;
                    prev = w;
                }
            }
        }
        compacted[n] = write as u32;
        nbrs.truncate(write);
        Ok(Graph {
            offsets: compacted,
            nbrs,
            num_edges: write / 2,
        })
    }

    /// Builds a graph from an [`EdgeSet`] over `n` vertices.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::VertexOutOfRange`] if an endpoint is `>= n`.
    pub fn from_edge_set(n: usize, edges: &EdgeSet) -> Result<Self, GraphError> {
        let list: Vec<(u32, u32)> = edges.iter().map(Edge::endpoints).collect();
        Graph::from_edges(n, &list)
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Degree of vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum degree (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Average degree (`2m / n`; 0 for the empty graph).
    pub fn average_degree(&self) -> f64 {
        let n = self.num_vertices();
        if n == 0 {
            0.0
        } else {
            2.0 * self.num_edges as f64 / n as f64
        }
    }

    /// The sorted neighbour list of `v` — one contiguous CSR slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: u32) -> &[u32] {
        &self.nbrs[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Whether `u` and `v` are adjacent (`O(log min(deg_u, deg_v))`).
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let n = self.num_vertices();
        if u == v || u as usize >= n || v as usize >= n {
            return false;
        }
        let (small, large) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(small).binary_search(&large).is_ok()
    }

    /// Adds an edge, returning `true` if it was not already present.
    ///
    /// This splices into the flat CSR arrays (`O(n + m)` worst case), so it is
    /// meant for construction-time touch-ups (planting cliques into a
    /// generated background), not for bulk building — use
    /// [`Graph::from_edges`] for that.
    ///
    /// # Errors
    ///
    /// Returns an error if an endpoint is out of range or `u == v`.
    pub fn add_edge(&mut self, u: u32, v: u32) -> Result<bool, GraphError> {
        let n = self.num_vertices();
        if u as usize >= n {
            return Err(GraphError::VertexOutOfRange { vertex: u, n });
        }
        if v as usize >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v, n });
        }
        if u == v {
            return Err(GraphError::SelfLoop { vertex: u });
        }
        if self.has_edge(u, v) {
            return Ok(false);
        }
        self.insert_directed(u, v);
        self.insert_directed(v, u);
        self.num_edges += 1;
        Ok(true)
    }

    /// Returns a copy of the graph with `extra` edges added; duplicates and
    /// already-present edges are ignored. One linear rebuild — the bulk
    /// counterpart of repeated [`Graph::add_edge`] calls, which each pay an
    /// `O(n + m)` CSR splice.
    ///
    /// # Errors
    ///
    /// Returns an error if an extra edge has an endpoint out of range or is a
    /// self-loop.
    pub fn with_edges_added(&self, extra: &[(u32, u32)]) -> Result<Graph, GraphError> {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(self.num_edges() + extra.len());
        edges.extend(self.edges());
        edges.extend_from_slice(extra);
        Graph::from_edges(self.num_vertices(), &edges)
    }

    /// Splices `v` into the sorted row of `u` and shifts the later offsets.
    fn insert_directed(&mut self, u: u32, v: u32) {
        let start = self.offsets[u as usize] as usize;
        let end = self.offsets[u as usize + 1] as usize;
        let pos = start + self.nbrs[start..end].partition_point(|&w| w < v);
        self.nbrs.insert(pos, v);
        for offset in &mut self.offsets[u as usize + 1..] {
            *offset += 1;
        }
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`, in
    /// lexicographic order.
    ///
    /// Each row is sorted, so the iterator binary-searches the first
    /// neighbour above `u` once per row and then walks the upper half
    /// directly — no per-element comparison.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (0..self.num_vertices() as u32).flat_map(move |u| {
            let row = self.neighbors(u);
            let upper = row.partition_point(|&v| v < u);
            row[upper..].iter().map(move |&v| (u, v))
        })
    }

    /// Collects the edge set of the graph.
    pub fn edge_set(&self) -> EdgeSet {
        self.edges().map(|(u, v)| Edge::new(u, v)).collect()
    }

    /// Linear CSR filter: keeps exactly the neighbour entries for which
    /// `keep(u, v)` holds. `keep` must be symmetric, or the result is not a
    /// valid undirected graph.
    fn filter_neighbors(&self, mut keep: impl FnMut(u32, u32) -> bool) -> Graph {
        let n = self.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut nbrs = Vec::with_capacity(self.nbrs.len());
        for u in 0..n as u32 {
            for &v in self.neighbors(u) {
                if keep(u, v) {
                    nbrs.push(v);
                }
            }
            offsets.push(nbrs.len() as u32);
        }
        let num_edges = nbrs.len() / 2;
        Graph {
            offsets,
            nbrs,
            num_edges,
        }
    }

    /// Returns the subgraph on the same vertex set containing only the given
    /// edges (edges not present in `self` are ignored). Single linear pass
    /// over the CSR arrays.
    pub fn edge_subgraph(&self, edges: &EdgeSet) -> Graph {
        self.filter_neighbors(|u, v| edges.contains_pair(u, v))
    }

    /// Returns the subgraph on the same vertex set with the given edges
    /// removed. Single linear pass over the CSR arrays.
    pub fn without_edges(&self, edges: &EdgeSet) -> Graph {
        self.filter_neighbors(|u, v| !edges.contains_pair(u, v))
    }

    /// Returns the subgraph induced by `vertices` **keeping the original
    /// vertex identifiers** (vertices outside the set become isolated).
    /// Single linear pass over the CSR arrays after building a membership
    /// mask.
    pub fn induced_keep_ids(&self, vertices: &[u32]) -> Graph {
        let mut mask = vec![false; self.num_vertices()];
        for &v in vertices {
            if (v as usize) < mask.len() {
                mask[v as usize] = true;
            }
        }
        self.filter_neighbors(|u, v| mask[u as usize] && mask[v as usize])
    }

    /// Sorted intersection of the neighbourhoods of `u` and `v`.
    ///
    /// Allocates the result; hot paths should prefer
    /// [`Graph::common_neighbors_into`] with a reused scratch buffer.
    pub fn common_neighbors(&self, u: u32, v: u32) -> Vec<u32> {
        let mut out = Vec::new();
        self.common_neighbors_into(u, v, &mut out);
        out
    }

    /// Writes the sorted intersection of the neighbourhoods of `u` and `v`
    /// into `out` (cleared first). `O(deg_u + deg_v)`, no allocation beyond
    /// `out`'s capacity — the scratch-buffer variant for hot callers.
    pub fn common_neighbors_into(&self, u: u32, v: u32, out: &mut Vec<u32>) {
        intersect_sorted_into(self.neighbors(u), self.neighbors(v), out);
    }

    /// Connected components as lists of vertices; singleton components are
    /// included.
    pub fn connected_components(&self) -> Vec<Vec<u32>> {
        let n = self.num_vertices();
        let mut seen = vec![false; n];
        let mut components = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut stack = vec![start as u32];
            seen[start] = true;
            let mut component = Vec::new();
            while let Some(v) = stack.pop() {
                component.push(v);
                for &w in self.neighbors(v) {
                    if !seen[w as usize] {
                        seen[w as usize] = true;
                        stack.push(w);
                    }
                }
            }
            component.sort_unstable();
            components.push(component);
        }
        components
    }

    /// Vertices with at least one incident edge.
    pub fn non_isolated_vertices(&self) -> Vec<u32> {
        (0..self.num_vertices() as u32)
            .filter(|&v| self.degree(v) > 0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        // 0-1-2 triangle, 3 hanging off 2, 4 isolated.
        Graph::from_edges(5, &[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_properties() {
        let g = triangle_plus_pendant();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(4), 0);
        assert_eq!(g.max_degree(), 3);
        assert!((g.average_degree() - 1.6).abs() < 1e-12);
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(2, 0));
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.edges().count(), 4);
    }

    #[test]
    fn duplicate_edges_are_ignored() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn construction_errors() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 5)]),
            Err(GraphError::VertexOutOfRange { vertex: 5, n: 2 })
        );
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop { vertex: 1 })
        );
        let err = GraphError::SelfLoop { vertex: 1 };
        assert!(format!("{err}").contains("self-loop"));
    }

    #[test]
    fn add_edge_keeps_sorted_invariant() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(3, 1).unwrap());
        assert!(g.add_edge(1, 0).unwrap());
        assert!(!g.add_edge(0, 1).unwrap());
        assert!(g.add_edge(1, 2).unwrap());
        assert_eq!(g.neighbors(1), &[0, 2, 3]);
        assert_eq!(g.num_edges(), 3);
        assert!(g.add_edge(0, 0).is_err());
        assert!(g.add_edge(0, 9).is_err());
    }

    #[test]
    fn add_edge_matches_from_edges() {
        // The splice-based add_edge and the linear bulk build agree exactly.
        let edges = [(0u32, 5u32), (2, 3), (1, 4), (0, 1), (4, 5), (2, 5)];
        let bulk = Graph::from_edges(6, &edges).unwrap();
        let mut incremental = Graph::new(6);
        for &(u, v) in &edges {
            incremental.add_edge(u, v).unwrap();
        }
        assert_eq!(bulk, incremental);
    }

    #[test]
    fn common_neighbors_intersects() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors(0, 3), vec![2]);
        assert_eq!(g.common_neighbors(3, 4), Vec::<u32>::new());
    }

    #[test]
    fn common_neighbors_into_reuses_the_buffer() {
        let g = triangle_plus_pendant();
        let mut buf = vec![99, 99, 99];
        g.common_neighbors_into(0, 1, &mut buf);
        assert_eq!(buf, vec![2]);
        g.common_neighbors_into(3, 4, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn intersect_sorted_into_matches_naive() {
        let a = [1u32, 3, 4, 7, 9];
        let b = [0u32, 3, 7, 8, 9, 12];
        let mut out = Vec::new();
        intersect_sorted_into(&a, &b, &mut out);
        assert_eq!(out, vec![3, 7, 9]);
        intersect_sorted_into(&a, &[], &mut out);
        assert!(out.is_empty());
    }

    /// Reference linear merge, independent of the production dispatch.
    fn naive_intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn galloping_and_linear_merges_agree_on_skewed_inputs() {
        // Sizes far beyond GALLOP_RATIO in both argument orders, with hits
        // at the front, middle, back, and absent values interleaved.
        let long: Vec<u32> = (0..4096u32).map(|i| i * 3).collect();
        for short in [
            vec![0u32],
            vec![12_285u32],          // last element of `long`
            vec![1u32, 2, 4, 5],      // all misses
            vec![0u32, 3, 6, 12_285], // all hits
            vec![0u32, 1, 3000, 3001, 9000, 12_284, 12_285, 20_000],
            (0..120u32).map(|i| i * 101).collect(),
        ] {
            let expected = naive_intersect(&short, &long);
            let mut out = Vec::new();
            intersect_sorted_into(&short, &long, &mut out);
            assert_eq!(out, expected, "short-first {short:?}");
            intersect_sorted_into(&long, &short, &mut out);
            assert_eq!(out, expected, "long-first {short:?}");
        }
        // Just under the ratio stays on the linear path; results agree there
        // too (same function, both paths must be indistinguishable).
        let short: Vec<u32> = (0..200u32).map(|i| i * 7).collect();
        let mut out = Vec::new();
        intersect_sorted_into(&short, &long, &mut out);
        assert_eq!(out, naive_intersect(&short, &long));
    }

    #[test]
    fn edge_subgraph_and_removal() {
        let g = triangle_plus_pendant();
        let mut keep = EdgeSet::new();
        keep.insert(Edge::new(0, 1));
        keep.insert(Edge::new(2, 3));
        keep.insert(Edge::new(3, 4)); // not an edge of g, ignored
        let sub = g.edge_subgraph(&keep);
        assert_eq!(sub.num_edges(), 2);
        assert!(sub.has_edge(0, 1));
        assert!(!sub.has_edge(0, 2));

        let rest = g.without_edges(&keep);
        assert_eq!(rest.num_edges(), 2);
        assert!(rest.has_edge(0, 2));
        assert!(rest.has_edge(1, 2));
        assert!(!rest.has_edge(0, 1));
    }

    #[test]
    fn induced_subgraph_keeps_ids() {
        let g = triangle_plus_pendant();
        let sub = g.induced_keep_ids(&[0, 1, 2]);
        assert_eq!(sub.num_vertices(), 5);
        assert_eq!(sub.num_edges(), 3);
        assert!(!sub.has_edge(2, 3));
    }

    #[test]
    fn components() {
        let g = triangle_plus_pendant();
        let comps = g.connected_components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2, 3]);
        assert_eq!(comps[1], vec![4]);
        assert_eq!(g.non_isolated_vertices(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn edge_set_roundtrip() {
        let g = triangle_plus_pendant();
        let set = g.edge_set();
        assert_eq!(set.len(), 4);
        let g2 = Graph::from_edge_set(5, &set).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn upper_half_edge_iterator_is_exact() {
        // The binary-search row split must reproduce the filtered iteration
        // exactly, including lexicographic order.
        let g = crate::gen::erdos_renyi(60, 0.2, 5);
        let fast: Vec<(u32, u32)> = g.edges().collect();
        let mut reference = Vec::new();
        for u in 0..60u32 {
            for &v in g.neighbors(u) {
                if u < v {
                    reference.push((u, v));
                }
            }
        }
        assert_eq!(fast, reference);
        assert_eq!(fast.len(), g.num_edges());
        assert!(fast.windows(2).all(|w| w[0] < w[1]), "not lexicographic");
    }

    #[test]
    fn default_is_the_empty_graph() {
        let g = Graph::default();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.edges().count(), 0);
    }
}
