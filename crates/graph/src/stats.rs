//! Descriptive graph statistics: degree distributions, clustering
//! coefficients and core decompositions.
//!
//! These are not used by the listing algorithms themselves but by the
//! examples and the experiment harness to characterise workloads (the paper's
//! complexity bounds are parameterised by quantities — arboricity, maximum
//! degree, edge count — that these helpers expose at a glance).

use crate::orientation::degeneracy_ordering;
use crate::Graph;

/// Summary statistics of a graph's degree sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DegreeStats {
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes the degree statistics of a graph (all zeros for the empty graph).
pub fn degree_stats(graph: &Graph) -> DegreeStats {
    let n = graph.num_vertices();
    if n == 0 {
        return DegreeStats::default();
    }
    let mut degrees: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        median: degrees[n / 2],
    }
}

/// The degree histogram: entry `d` is the number of vertices of degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut histogram = vec![0usize; graph.max_degree() + 1];
    for v in 0..graph.num_vertices() as u32 {
        histogram[graph.degree(v)] += 1;
    }
    histogram
}

/// Number of triangles containing each vertex.
pub fn triangles_per_vertex(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    let mut counts = vec![0usize; n];
    for u in 0..n as u32 {
        let neighbors = graph.neighbors(u);
        for (i, &v) in neighbors.iter().enumerate() {
            if v < u {
                continue;
            }
            for &w in &neighbors[i + 1..] {
                if graph.has_edge(v, w) {
                    counts[u as usize] += 1;
                    counts[v as usize] += 1;
                    counts[w as usize] += 1;
                }
            }
        }
    }
    counts
}

/// The local clustering coefficient of a vertex: the fraction of its
/// neighbour pairs that are adjacent (0 for degree < 2).
pub fn local_clustering(graph: &Graph, v: u32) -> f64 {
    let d = graph.degree(v);
    if d < 2 {
        return 0.0;
    }
    let neighbors = graph.neighbors(v);
    let mut closed = 0usize;
    for (i, &a) in neighbors.iter().enumerate() {
        for &b in &neighbors[i + 1..] {
            if graph.has_edge(a, b) {
                closed += 1;
            }
        }
    }
    closed as f64 / (d * (d - 1) / 2) as f64
}

/// The average local clustering coefficient over all vertices of degree ≥ 2.
pub fn average_clustering(graph: &Graph) -> f64 {
    let eligible: Vec<u32> = (0..graph.num_vertices() as u32)
        .filter(|&v| graph.degree(v) >= 2)
        .collect();
    if eligible.is_empty() {
        return 0.0;
    }
    eligible
        .iter()
        .map(|&v| local_clustering(graph, v))
        .sum::<f64>()
        / eligible.len() as f64
}

/// The core number of every vertex: the largest `k` such that the vertex
/// belongs to a subgraph of minimum degree `k`.
pub fn core_numbers(graph: &Graph) -> Vec<usize> {
    let n = graph.num_vertices();
    let ordering = degeneracy_ordering(graph);
    // Peeling in degeneracy order: the core number of a vertex is the maximum
    // over the peel degrees seen up to (and including) its removal.
    let mut core = vec![0usize; n];
    let mut degree: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let mut removed = vec![false; n];
    let mut current = 0usize;
    for &v in &ordering.order {
        current = current.max(degree[v as usize]);
        core[v as usize] = current;
        removed[v as usize] = true;
        for &w in graph.neighbors(v) {
            if !removed[w as usize] {
                degree[w as usize] -= 1;
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn degree_stats_of_a_star() {
        let g = gen::star_graph(11);
        let stats = degree_stats(&g);
        assert_eq!(stats.min, 1);
        assert_eq!(stats.max, 10);
        assert!((stats.mean - 20.0 / 11.0).abs() < 1e-12);
        assert_eq!(stats.median, 1);
        assert_eq!(degree_stats(&Graph::new(0)), DegreeStats::default());
        let histogram = degree_histogram(&g);
        assert_eq!(histogram[1], 10);
        assert_eq!(histogram[10], 1);
    }

    #[test]
    fn clustering_of_cliques_and_trees() {
        let clique = gen::complete_graph(6);
        assert!((average_clustering(&clique) - 1.0).abs() < 1e-12);
        assert!((local_clustering(&clique, 0) - 1.0).abs() < 1e-12);
        let tree = gen::star_graph(10);
        assert_eq!(average_clustering(&tree), 0.0);
        assert_eq!(local_clustering(&tree, 1), 0.0);
    }

    #[test]
    fn triangle_counts_match_enumeration() {
        let g = gen::erdos_renyi(60, 0.2, 5);
        let per_vertex = triangles_per_vertex(&g);
        let total: usize = per_vertex.iter().sum();
        assert_eq!(total, 3 * crate::cliques::count_cliques(&g, 3));
    }

    #[test]
    fn core_numbers_of_known_graphs() {
        let clique = gen::complete_graph(5);
        assert!(core_numbers(&clique).iter().all(|&c| c == 4));
        let path = gen::path_graph(6);
        assert!(core_numbers(&path).iter().all(|&c| c == 1));
        let cycle = gen::cycle_graph(6);
        assert!(core_numbers(&cycle).iter().all(|&c| c == 2));
        // Core numbers are bounded by the degeneracy and reach it somewhere.
        let g = gen::erdos_renyi(80, 0.15, 3);
        let cores = core_numbers(&g);
        let degeneracy = degeneracy_ordering(&g).degeneracy;
        assert_eq!(cores.iter().copied().max().unwrap_or(0), degeneracy);
    }
}
