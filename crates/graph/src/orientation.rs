//! Degeneracy orderings, bounded out-degree orientations and arboricity bounds.
//!
//! The listing algorithms of the paper are driven by an *orientation* of the
//! edges with bounded out-degree: a graph with arboricity `A` always admits an
//! orientation with out-degree `O(A)`, and the algorithms repeatedly halve the
//! arboricity of the "remaining" edge set while maintaining such an
//! orientation (Theorem 2.8). This module provides the sequential machinery:
//! degeneracy (core) orderings, the induced acyclic orientation, and upper and
//! lower bounds on the arboricity.

use crate::edge::EdgeSet;
use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// A degeneracy (smallest-last / core) ordering of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// Vertices in peeling order (first peeled first).
    pub order: Vec<u32>,
    /// Position of each vertex in `order`.
    pub position: Vec<usize>,
    /// The degeneracy: the maximum, over peeled vertices, of their remaining
    /// degree at peel time.
    pub degeneracy: usize,
}

/// Computes a degeneracy ordering in `O(n + m)` time with bucket queues.
pub fn degeneracy_ordering(graph: &Graph) -> DegeneracyOrdering {
    let n = graph.num_vertices();
    let mut degree: Vec<usize> = (0..n as u32).map(|v| graph.degree(v)).collect();
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for v in 0..n as u32 {
        buckets[degree[v as usize]].push(v);
    }
    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut position = vec![0usize; n];
    let mut degeneracy = 0usize;
    let mut cursor = 0usize;
    for _ in 0..n {
        // Find the lowest non-empty bucket. `cursor` can decrease by at most 1
        // per removed edge, so the total work stays linear.
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        // Buckets can contain stale entries for already removed vertices or
        // for vertices whose degree has since dropped; skip them lazily.
        let v = loop {
            if cursor >= buckets.len() {
                // Only stale entries remained; rescan from zero.
                cursor = 0;
                while buckets[cursor].is_empty() {
                    cursor += 1;
                }
            }
            match buckets[cursor].pop() {
                Some(v) if !removed[v as usize] && degree[v as usize] == cursor => break v,
                Some(_) => continue,
                None => {
                    cursor += 1;
                    continue;
                }
            }
        };
        removed[v as usize] = true;
        degeneracy = degeneracy.max(cursor);
        position[v as usize] = order.len();
        order.push(v);
        for &w in graph.neighbors(v) {
            if !removed[w as usize] {
                let d = degree[w as usize];
                degree[w as usize] = d - 1;
                buckets[d - 1].push(w);
                if d - 1 < cursor {
                    cursor = d - 1;
                }
            }
        }
    }
    DegeneracyOrdering {
        order,
        position,
        degeneracy,
    }
}

/// The acyclic "later-neighbour" DAG of a degeneracy ordering, in CSR form.
///
/// For every vertex `v`, the structure stores the neighbours that appear
/// *after* `v` in the peeling order, sorted by vertex id (the same order the
/// underlying CSR rows use). Built once in `O(n + m)`, it is the substrate of
/// the ordered clique enumeration in [`crate::cliques`]: the out-degree of
/// every vertex is at most the degeneracy, so per-depth candidate buffers can
/// be sized once up front, and candidate sets stay sorted so intersections
/// are plain merges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrientedDag {
    /// CSR row offsets; `offsets.len() == n + 1`.
    offsets: Vec<u32>,
    /// Concatenated out-neighbour lists, each sorted by vertex id.
    targets: Vec<u32>,
}

impl OrientedDag {
    /// Builds the DAG of `ordering` over `graph` in one linear pass.
    ///
    /// # Panics
    ///
    /// Panics if `ordering` does not cover the vertices of `graph`.
    pub fn from_ordering(graph: &Graph, ordering: &DegeneracyOrdering) -> Self {
        let n = graph.num_vertices();
        let position = &ordering.position;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut targets = Vec::with_capacity(graph.num_edges());
        for v in 0..n as u32 {
            for &w in graph.neighbors(v) {
                if position[w as usize] > position[v as usize] {
                    targets.push(w);
                }
            }
            offsets.push(targets.len() as u32);
        }
        OrientedDag { offsets, targets }
    }

    /// Computes a degeneracy ordering of `graph` and builds its DAG.
    pub fn from_degeneracy(graph: &Graph) -> Self {
        OrientedDag::from_ordering(graph, &degeneracy_ordering(graph))
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (equals the number of undirected edges of the
    /// source graph).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// The out-neighbours of `v` (its later neighbours), sorted by vertex id.
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        &self.targets[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum out-degree over all vertices (at most the degeneracy when the
    /// DAG comes from a degeneracy ordering).
    pub fn max_out_degree(&self) -> usize {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0)
    }
}

/// An orientation of (a subset of) a graph's edges: each edge is directed away
/// from exactly one endpoint, and the quantity of interest is the maximum
/// out-degree.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Orientation {
    out: Vec<Vec<u32>>,
}

impl Orientation {
    /// Creates an empty orientation over `n` vertices.
    pub fn new(n: usize) -> Self {
        Orientation {
            out: vec![Vec::new(); n],
        }
    }

    /// Orients every edge of `graph` from the endpoint that appears *earlier*
    /// in a degeneracy ordering towards the later one. The resulting maximum
    /// out-degree equals the degeneracy, which is at most `2A - 1` for a graph
    /// of arboricity `A`.
    pub fn from_degeneracy(graph: &Graph) -> Self {
        let ordering = degeneracy_ordering(graph);
        Orientation::from_positions(graph, &ordering.position)
    }

    /// Orients every edge from the endpoint with the smaller `position` value
    /// to the one with the larger (ties broken by vertex id).
    pub fn from_positions(graph: &Graph, position: &[usize]) -> Self {
        let mut out = vec![Vec::new(); graph.num_vertices()];
        for (u, v) in graph.edges() {
            let u_first = (position[u as usize], u) < (position[v as usize], v);
            if u_first {
                out[u as usize].push(v);
            } else {
                out[v as usize].push(u);
            }
        }
        for list in &mut out {
            list.sort_unstable();
        }
        Orientation { out }
    }

    /// Builds an orientation directly from per-vertex out-neighbour lists.
    ///
    /// Used when an algorithm carries an orientation across iterations (the
    /// out-lists of surviving edges keep their direction).
    pub fn from_out_lists(out: Vec<Vec<u32>>) -> Self {
        let mut out = out;
        for list in &mut out {
            list.sort_unstable();
            list.dedup();
        }
        Orientation { out }
    }

    /// Number of vertices covered by the orientation.
    pub fn num_vertices(&self) -> usize {
        self.out.len()
    }

    /// Out-neighbours of `v` (edges directed away from `v`).
    pub fn out_neighbors(&self, v: u32) -> &[u32] {
        &self.out[v as usize]
    }

    /// Out-degree of `v`.
    pub fn out_degree(&self, v: u32) -> usize {
        self.out[v as usize].len()
    }

    /// Maximum out-degree over all vertices.
    pub fn max_out_degree(&self) -> usize {
        self.out.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Total number of oriented edges.
    pub fn num_edges(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// Whether edge `u -> v` is oriented away from `u`.
    pub fn is_oriented(&self, u: u32, v: u32) -> bool {
        self.out[u as usize].binary_search(&v).is_ok()
    }

    /// The vertex an undirected edge `{u, v}` is oriented away from, if the
    /// edge is covered by this orientation.
    pub fn source_of(&self, u: u32, v: u32) -> Option<u32> {
        if self.is_oriented(u, v) {
            Some(u)
        } else if self.is_oriented(v, u) {
            Some(v)
        } else {
            None
        }
    }

    /// Restricts the orientation to the edges in `keep`, preserving directions.
    pub fn restrict_to(&self, keep: &EdgeSet) -> Orientation {
        let out = self
            .out
            .iter()
            .enumerate()
            .map(|(u, nbrs)| {
                nbrs.iter()
                    .copied()
                    .filter(|&v| keep.contains_pair(u as u32, v))
                    .collect()
            })
            .collect();
        Orientation { out }
    }

    /// Iterates over all oriented edges as `(source, target)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(u, nbrs)| nbrs.iter().map(move |&v| (u as u32, v)))
    }

    /// Checks that the orientation covers exactly the edges of `graph`
    /// (each edge once, in one direction). Used by tests and debug assertions.
    pub fn covers_exactly(&self, graph: &Graph) -> bool {
        if self.num_edges() != graph.num_edges() {
            return false;
        }
        self.edges().all(|(u, v)| graph.has_edge(u, v))
            && self.edges().all(|(u, v)| !self.is_oriented(v, u) || u == v)
    }
}

/// Upper bound on the arboricity: the degeneracy `k` satisfies
/// `arboricity ≤ k ≤ 2·arboricity − 1`.
pub fn arboricity_upper_bound(graph: &Graph) -> usize {
    degeneracy_ordering(graph).degeneracy
}

/// Lower bound on the arboricity via Nash-Williams on the densest suffix of a
/// degeneracy ordering: `arboricity ≥ ⌈m_S / (|S| − 1)⌉` for every vertex
/// subset `S` with `|S| ≥ 2`; we evaluate the bound on every suffix of the
/// peeling order, which contains the densest cores.
pub fn arboricity_lower_bound(graph: &Graph) -> usize {
    let n = graph.num_vertices();
    if n < 2 || graph.num_edges() == 0 {
        return 0;
    }
    let ordering = degeneracy_ordering(graph);
    // edges_in_suffix[i] = number of edges with both endpoints at positions >= i.
    let mut best = 1usize;
    let mut edges_in_suffix = 0usize;
    // Process positions from last to first, adding each vertex's edges to
    // later vertices.
    for i in (0..n).rev() {
        let v = ordering.order[i];
        let later = graph
            .neighbors(v)
            .iter()
            .filter(|&&w| ordering.position[w as usize] > i)
            .count();
        edges_in_suffix += later;
        let size = n - i;
        if size >= 2 && edges_in_suffix > 0 {
            let bound = edges_in_suffix.div_ceil(size - 1);
            best = best.max(bound);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn degeneracy_of_known_graphs() {
        assert_eq!(degeneracy_ordering(&gen::complete_graph(5)).degeneracy, 4);
        assert_eq!(degeneracy_ordering(&gen::cycle_graph(10)).degeneracy, 2);
        assert_eq!(degeneracy_ordering(&gen::path_graph(10)).degeneracy, 1);
        assert_eq!(degeneracy_ordering(&gen::star_graph(10)).degeneracy, 1);
        assert_eq!(degeneracy_ordering(&Graph::new(5)).degeneracy, 0);
        assert_eq!(degeneracy_ordering(&Graph::new(0)).order.len(), 0);
    }

    #[test]
    fn ordering_is_a_permutation() {
        let g = gen::erdos_renyi(80, 0.1, 3);
        let ord = degeneracy_ordering(&g);
        let mut sorted = ord.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..80u32).collect::<Vec<_>>());
        for (pos, &v) in ord.order.iter().enumerate() {
            assert_eq!(ord.position[v as usize], pos);
        }
    }

    #[test]
    fn orientation_from_degeneracy_covers_graph() {
        let g = gen::erdos_renyi(60, 0.15, 5);
        let o = Orientation::from_degeneracy(&g);
        assert!(o.covers_exactly(&g));
        assert_eq!(o.num_edges(), g.num_edges());
        // Out-degree bounded by degeneracy.
        let k = degeneracy_ordering(&g).degeneracy;
        assert!(o.max_out_degree() <= k, "{} > {}", o.max_out_degree(), k);
    }

    #[test]
    fn orientation_queries() {
        let g = gen::path_graph(4); // 0-1-2-3
        let o = Orientation::from_positions(&g, &[0, 1, 2, 3]);
        assert!(o.is_oriented(0, 1));
        assert!(!o.is_oriented(1, 0));
        assert_eq!(o.source_of(1, 2), Some(1));
        assert_eq!(o.source_of(0, 3), None);
        assert_eq!(o.out_degree(3), 0);
        assert_eq!(o.edges().count(), 3);
        assert_eq!(o.num_vertices(), 4);
    }

    #[test]
    fn restrict_preserves_directions() {
        let g = gen::complete_graph(4);
        let o = Orientation::from_degeneracy(&g);
        let mut keep = EdgeSet::new();
        keep.insert(crate::Edge::new(0, 1));
        keep.insert(crate::Edge::new(2, 3));
        let r = o.restrict_to(&keep);
        assert_eq!(r.num_edges(), 2);
        for (u, v) in r.edges() {
            assert!(o.is_oriented(u, v));
        }
    }

    #[test]
    fn oriented_dag_covers_every_edge_once_with_bounded_out_degree() {
        let g = gen::erdos_renyi(70, 0.2, 13);
        let ordering = degeneracy_ordering(&g);
        let dag = OrientedDag::from_ordering(&g, &ordering);
        assert_eq!(dag.num_vertices(), 70);
        assert_eq!(dag.num_edges(), g.num_edges());
        assert!(dag.max_out_degree() <= ordering.degeneracy);
        for v in 0..70u32 {
            let out = dag.out_neighbors(v);
            assert_eq!(out.len(), dag.out_degree(v));
            assert!(out.windows(2).all(|w| w[0] < w[1]), "row not sorted by id");
            for &w in out {
                assert!(g.has_edge(v, w));
                assert!(ordering.position[w as usize] > ordering.position[v as usize]);
            }
        }
        assert_eq!(OrientedDag::from_degeneracy(&g), dag);
    }

    #[test]
    fn from_out_lists_dedups() {
        let o = Orientation::from_out_lists(vec![vec![2, 1, 2], vec![], vec![]]);
        assert_eq!(o.out_neighbors(0), &[1, 2]);
        assert_eq!(o.num_edges(), 2);
    }

    #[test]
    fn arboricity_bounds_bracket_truth() {
        // Complete graph K_n has arboricity ceil(n/2).
        let g = gen::complete_graph(8);
        let lower = arboricity_lower_bound(&g);
        let upper = arboricity_upper_bound(&g);
        assert!(lower <= upper);
        assert_eq!(lower, 4);
        assert!((4..=7).contains(&upper));

        // A forest has arboricity 1.
        let tree = gen::star_graph(20);
        assert_eq!(arboricity_lower_bound(&tree), 1);
        assert_eq!(arboricity_upper_bound(&tree), 1);

        // Empty graph.
        assert_eq!(arboricity_lower_bound(&Graph::new(10)), 0);
    }
}
