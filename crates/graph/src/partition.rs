//! Random vertex partitions and subsampling (Lemma 2.7 machinery).
//!
//! The sparsity-aware listing step partitions the vertex set into `k^{1/p}`
//! (or `n^{1/p}`) roughly equal parts uniformly at random and relies on the
//! fact that, w.h.p., the number of edges between any two parts is
//! `O(q² m̄)` where `q` is the sampling probability of a part (Lemma 2.7,
//! quoted from Chang et al.). This module provides the partition primitive and
//! the bound-checking helpers used in tests and in experiment E7.

use crate::Graph;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A random assignment of vertices to `num_parts` parts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPartition {
    /// `part[v]` is the part of vertex `v`.
    pub part: Vec<u32>,
    /// Number of parts.
    pub num_parts: u32,
}

impl VertexPartition {
    /// Assigns every vertex of a graph on `n` vertices to one of `num_parts`
    /// parts uniformly and independently at random.
    ///
    /// # Panics
    ///
    /// Panics if `num_parts == 0`.
    pub fn random(n: usize, num_parts: u32, seed: u64) -> Self {
        assert!(num_parts > 0, "a partition needs at least one part");
        let mut rng = SmallRng::seed_from_u64(seed);
        let part = (0..n).map(|_| rng.gen_range(0..num_parts)).collect();
        VertexPartition { part, num_parts }
    }

    /// Builds a partition from an explicit assignment.
    ///
    /// # Panics
    ///
    /// Panics if an entry is `>= num_parts`.
    pub fn from_assignment(part: Vec<u32>, num_parts: u32) -> Self {
        assert!(
            part.iter().all(|&p| p < num_parts),
            "part index out of range"
        );
        VertexPartition { part, num_parts }
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.part.len()
    }

    /// The part of vertex `v`.
    pub fn part_of(&self, v: u32) -> u32 {
        self.part[v as usize]
    }

    /// Vertices of the given part.
    pub fn members(&self, part: u32) -> Vec<u32> {
        self.part
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p == part)
            .map(|(v, _)| v as u32)
            .collect()
    }

    /// Sizes of all parts.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_parts as usize];
        for &p in &self.part {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Counts the edges of `graph` between every ordered-normalised pair of
    /// parts; the entry `[i][j]` with `i <= j` holds the count for parts
    /// `(i, j)` and entries with `i > j` are zero.
    pub fn pairwise_edge_counts(&self, graph: &Graph) -> Vec<Vec<usize>> {
        let k = self.num_parts as usize;
        let mut counts = vec![vec![0usize; k]; k];
        for (u, v) in graph.edges() {
            let (a, b) = (self.part_of(u), self.part_of(v));
            let (i, j) = (a.min(b) as usize, a.max(b) as usize);
            counts[i][j] += 1;
        }
        counts
    }

    /// Maximum number of edges between any pair of (not necessarily distinct)
    /// parts.
    pub fn max_pairwise_edges(&self, graph: &Graph) -> usize {
        self.pairwise_edge_counts(graph)
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Samples a vertex subset by including each vertex independently with
/// probability `q` (the sampling experiment of Lemma 2.7).
pub fn sample_vertices(n: usize, q: f64, seed: u64) -> Vec<u32> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n as u32).filter(|_| rng.gen::<f64>() < q).collect()
}

/// The bound of Lemma 2.7: with probability `1 - 10 log(n̄)/n̄⁵`, the subgraph
/// induced by a `q`-sample of a graph with `m̄` edges has at most `6 q² m̄`
/// edges (provided the degree and density side conditions hold).
pub fn lemma_2_7_bound(m: usize, q: f64) -> f64 {
    6.0 * q * q * m as f64
}

/// Whether the side conditions of Lemma 2.7 hold for a graph with `m̄` edges,
/// `n̄` vertices, maximum degree `Δ` and sampling probability `q`:
/// `Δ ≤ m̄ q / (20 log n̄)` and `q² m̄ ≥ 400 log² n̄`.
pub fn lemma_2_7_preconditions(n: usize, m: usize, max_degree: usize, q: f64) -> bool {
    if n < 2 {
        return false;
    }
    let log_n = (n as f64).log2();
    (max_degree as f64) <= (m as f64) * q / (20.0 * log_n)
        && q * q * (m as f64) >= 400.0 * log_n * log_n
}

/// Counts the edges of `graph` inside the subgraph induced by `sample`.
pub fn edges_within(graph: &Graph, sample: &[u32]) -> usize {
    let mut marker = vec![false; graph.num_vertices()];
    for &v in sample {
        marker[v as usize] = true;
    }
    graph
        .edges()
        .filter(|&(u, v)| marker[u as usize] && marker[v as usize])
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn partition_covers_all_vertices() {
        let p = VertexPartition::random(100, 8, 3);
        assert_eq!(p.num_vertices(), 100);
        assert!(p.part.iter().all(|&x| x < 8));
        assert_eq!(p.sizes().iter().sum::<usize>(), 100);
        let members: usize = (0..8).map(|i| p.members(i).len()).sum();
        assert_eq!(members, 100);
    }

    #[test]
    fn parts_are_roughly_balanced() {
        let p = VertexPartition::random(8000, 8, 7);
        for &s in &p.sizes() {
            assert!((s as f64 - 1000.0).abs() < 250.0, "size {s}");
        }
    }

    #[test]
    fn pairwise_counts_sum_to_m() {
        let g = gen::erdos_renyi(200, 0.1, 5);
        let p = VertexPartition::random(200, 5, 9);
        let counts = p.pairwise_edge_counts(&g);
        let total: usize = counts.iter().flat_map(|r| r.iter()).sum();
        assert_eq!(total, g.num_edges());
        // Upper triangle only.
        for (i, row) in counts.iter().enumerate() {
            for &below_diagonal in &row[..i] {
                assert_eq!(below_diagonal, 0);
            }
        }
        assert!(p.max_pairwise_edges(&g) > 0);
    }

    #[test]
    fn explicit_assignment_validated() {
        let p = VertexPartition::from_assignment(vec![0, 1, 1, 0], 2);
        assert_eq!(p.part_of(2), 1);
        assert_eq!(p.members(0), vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_assignment_panics() {
        VertexPartition::from_assignment(vec![0, 3], 2);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_panics() {
        VertexPartition::random(10, 0, 0);
    }

    #[test]
    fn lemma_2_7_shape() {
        // The explicit constants in the lemma's preconditions require a dense
        // graph and a large sampling probability before they are satisfiable.
        let n = 500;
        let g = gen::erdos_renyi(n, 0.8, 13);
        let q = 0.9;
        assert!(lemma_2_7_preconditions(n, g.num_edges(), g.max_degree(), q));
        let mut violations = 0;
        for seed in 0..20 {
            let sample = sample_vertices(n, q, seed);
            let within = edges_within(&g, &sample);
            if (within as f64) > lemma_2_7_bound(g.num_edges(), q) {
                violations += 1;
            }
        }
        assert_eq!(violations, 0, "Lemma 2.7 bound violated {violations} times");
    }

    #[test]
    fn preconditions_fail_for_tiny_graphs() {
        assert!(!lemma_2_7_preconditions(1, 0, 0, 0.5));
        assert!(!lemma_2_7_preconditions(100, 50, 40, 0.01));
    }

    #[test]
    fn sampling_probability_extremes() {
        assert!(sample_vertices(50, 0.0, 1).is_empty());
        assert_eq!(sample_vertices(50, 1.0, 1).len(), 50);
    }
}
