//! The induced-subgraph-trie enumeration kernel (DIST-style) and the
//! [`KernelStrategy`] knob that selects between it and the classic recursive
//! kernel.
//!
//! The recursive kernel of [`super`] re-intersects every candidate set
//! against global CSR rows (or global adjacency bitsets): each node of the
//! search tree pays `O(|C|)` probes into an `n`-bit row. The trie kernel
//! instead *materialises* the induced subgraph of a root's candidate set
//! once — a dense local re-labelling `0..k` with one `⌈k/64⌉`-word adjacency
//! row per candidate — and represents every deeper candidate set as a word
//! mask over those local ids. The whole subtree below the root (the trie of
//! clique prefixes starting at that root) then reuses the one
//! materialisation: a child candidate set is three word-ops per word
//! (`current & row(u) & above(u)`) instead of `O(|C|)` probes. Since `k` is
//! bounded by the degeneracy, the masks are a handful of words on real
//! graphs.
//!
//! On top of the masks sits a pivot rule in the Bron–Kerbosch spirit,
//! restricted to the only case where skipping recursion cannot perturb the
//! emission order: when the *entire* candidate set is a clique (the pivot —
//! the first vertex of the scan — and every other member see all `|C| - 1`
//! others), every subset completes, so the kernel emits the
//! `C(|C|, needed)` combinations directly in lexicographic order — exactly
//! the order the recursion would have produced — without building any child
//! masks. The check scans masked row popcounts and exits at the first
//! witness vertex missing a neighbour, so failed checks cost one row scan,
//! not `|C|`.
//!
//! Byte-identity is the contract: local ids are assigned in ascending global
//! order and masks are iterated in ascending bit order, so the emission
//! sequence (and therefore every early-stop prefix and every serialised
//! report downstream) is identical to the recursive kernel's. The kernel
//! differential battery in `tests/kernel_differential.rs` enforces this over
//! clique sizes, workload families, seeds and thread grants.
//!
//! See `DESIGN.md` §14 for the trie layout, the memory-budget interaction
//! with the global bitset table, and the `Auto` heuristic.

use super::NeighborBitsets;
use crate::graph::Graph;
use crate::orientation::OrientedDag;
use serde::{Deserialize, Serialize};

/// Which enumeration kernel drives the ordered clique search.
///
/// The knob controls only *wall-clock* behaviour: both kernels emit the same
/// cliques in the same order, byte for byte, so callers can switch freely
/// (the kernel differential battery holds them to that). `Auto` resolves per
/// graph by the degeneracy heuristic ([`AUTO_TRIE_DEGENERACY`]): dense
/// graphs, where the materialisation amortises over a deep subtree, get the
/// trie; sparse graphs, where candidate sets are tiny and the local
/// re-labelling would dominate, keep the recursive kernel.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelStrategy {
    /// The classic per-root recursive kernel: sorted-merge / global-bitset
    /// candidate intersections, no per-root materialisation.
    Recursive,
    /// The induced-subgraph-trie kernel: materialise each root's candidate
    /// subgraph once, run the subtree on local word masks, emit complete
    /// candidate sets as combination blocks.
    Trie,
    /// Resolve per graph: [`KernelChoice::Trie`] when the degeneracy reaches
    /// [`AUTO_TRIE_DEGENERACY`], [`KernelChoice::Recursive`] otherwise (the
    /// default).
    #[default]
    Auto,
}

/// What a [`KernelStrategy`] resolves to for a concrete graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelChoice {
    /// The recursive kernel runs.
    Recursive,
    /// The trie kernel runs.
    Trie,
}

/// Degeneracy at or above which [`KernelStrategy::Auto`] picks the trie
/// kernel.
///
/// The materialisation of one root costs `O(k²)` adjacency probes for a
/// candidate set of size `k`; the subtree below it has up to `k^{p-2}` nodes
/// that each save `Ω(k)` probe work. Below ~32 candidates the saved probes
/// fit in a couple of cache lines anyway and the re-labelling overhead wins;
/// from a few dozen candidates onward the masks win clearly (see the
/// `kernel-sweep` bench leg).
pub const AUTO_TRIE_DEGENERACY: usize = 32;

/// Word budget for a single materialised trie node (`k` rows of `⌈k/64⌉`
/// words). The same 16 MiB ceiling as the global bitset table
/// (`BITSET_WORD_BUDGET`): a candidate set too large to materialise under it
/// falls back to the recursive kernel, which needs no per-root storage —
/// output is identical either way, so the fallback is purely a memory
/// decision.
pub const TRIE_NODE_WORD_BUDGET: usize = 1 << 21;

impl KernelStrategy {
    /// Resolves the strategy for a graph of the given degeneracy. Pure and
    /// host-independent: the same `(strategy, degeneracy)` pair always
    /// resolves the same way, so runs are reproducible across machines.
    pub fn resolve(self, degeneracy: usize) -> KernelChoice {
        match self {
            KernelStrategy::Recursive => KernelChoice::Recursive,
            KernelStrategy::Trie => KernelChoice::Trie,
            KernelStrategy::Auto => {
                if degeneracy >= AUTO_TRIE_DEGENERACY {
                    KernelChoice::Trie
                } else {
                    KernelChoice::Recursive
                }
            }
        }
    }

    /// Stable lower-case name (used in bench cell configs and logs).
    pub fn name(self) -> &'static str {
        match self {
            KernelStrategy::Recursive => "recursive",
            KernelStrategy::Trie => "trie",
            KernelStrategy::Auto => "auto",
        }
    }

    /// Parses a stable name back into a strategy (the inverse of
    /// [`KernelStrategy::name`]); anything unrecognised is `None`, so CLI
    /// and bench-config consumers surface typos instead of defaulting.
    pub fn parse(s: &str) -> Option<KernelStrategy> {
        match s.trim() {
            "recursive" => Some(KernelStrategy::Recursive),
            "trie" => Some(KernelStrategy::Trie),
            "auto" => Some(KernelStrategy::Auto),
            _ => None,
        }
    }
}

impl KernelChoice {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            KernelChoice::Recursive => "recursive",
            KernelChoice::Trie => "trie",
        }
    }
}

impl std::fmt::Display for KernelStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::fmt::Display for KernelChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One materialised trie node: the induced subgraph of a candidate set,
/// re-labelled to dense local ids `0..k` (ascending global order, so local
/// bit order equals global emission order) with one packed adjacency row per
/// member. Reused across roots (and, in the edge enumerator, across queries
/// sharing an endpoint) — `materialize` only grows the buffers.
pub(crate) struct InducedNode {
    /// Members of the candidate set, ascending global ids.
    verts: Vec<u32>,
    /// Words per local adjacency row: `⌈verts.len()/64⌉`.
    stride: usize,
    /// `verts.len()` packed rows of `stride` words each; bit `j` of row `i`
    /// is set iff `verts[i]` and `verts[j]` are adjacent in the host graph.
    rows: Vec<u64>,
}

impl InducedNode {
    pub(crate) fn new() -> Self {
        InducedNode {
            verts: Vec::new(),
            stride: 0,
            rows: Vec::new(),
        }
    }

    /// Builds the induced subgraph of `verts` (sorted ascending, no
    /// duplicates). Upper-triangle probes mirrored into both rows; each pair
    /// is tested once, against the global bitset row when the vertex has one
    /// and by sorted merge with its CSR row otherwise.
    pub(crate) fn materialize(&mut self, graph: &Graph, bitsets: &NeighborBitsets, verts: &[u32]) {
        let k = verts.len();
        self.verts.clear();
        self.verts.extend_from_slice(verts);
        self.stride = k.div_ceil(64);
        self.rows.clear();
        self.rows.resize(k * self.stride, 0);
        for i in 0..k {
            let u = self.verts[i];
            if let Some(row) = bitsets.row(u) {
                for j in (i + 1)..k {
                    let w = self.verts[j];
                    if row[w as usize >> 6] >> (w & 63) & 1 == 1 {
                        self.link(i, j);
                    }
                }
            } else {
                let nbrs = graph.neighbors(u);
                let (mut a, mut b) = (i + 1, 0usize);
                while a < k && b < nbrs.len() {
                    match self.verts[a].cmp(&nbrs[b]) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            self.link(i, a);
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
        }
    }

    #[inline]
    fn link(&mut self, i: usize, j: usize) {
        self.rows[i * self.stride + (j >> 6)] |= 1u64 << (j & 63);
        self.rows[j * self.stride + (i >> 6)] |= 1u64 << (i & 63);
    }

    #[inline]
    fn row(&self, i: usize) -> &[u64] {
        &self.rows[i * self.stride..(i + 1) * self.stride]
    }

    /// Local id of a global vertex, if it is a member.
    pub(crate) fn local_index(&self, v: u32) -> Option<usize> {
        self.verts.binary_search(&v).ok()
    }

    /// Number of members.
    pub(crate) fn len(&self) -> usize {
        self.verts.len()
    }
}

/// All per-enumeration scratch of the trie kernel: the one materialised node
/// plus the per-depth mask arena and the combination buffers. One kernel per
/// concurrent enumeration (a shard, a full listing, an edge-query stream);
/// nothing is shared, so `&CliqueIndex` callers stay `Sync`.
pub(crate) struct TrieKernel {
    node: InducedNode,
    /// Flat per-depth mask arena: `needed` levels of `stride` words, resized
    /// per root.
    masks: Vec<u64>,
    /// Set-bit positions of a complete candidate set (combination emission).
    bits: Vec<u32>,
    /// Current combination indices into `bits`.
    combo: Vec<u32>,
}

impl TrieKernel {
    pub(crate) fn new() -> Self {
        TrieKernel {
            node: InducedNode::new(),
            masks: Vec::new(),
            bits: Vec::new(),
            combo: Vec::new(),
        }
    }

    /// Trie-kernel counterpart of the recursive `enumerate_roots`: same root
    /// loop, same skip condition, byte-identical emission order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn enumerate_roots(
        &mut self,
        graph: &Graph,
        bitsets: &NeighborBitsets,
        dag: &OrientedDag,
        p: usize,
        roots: &[u32],
        stack: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        for &v in roots {
            let candidates = dag.out_neighbors(v);
            if candidates.len() + 1 < p {
                continue;
            }
            stack.push(v);
            self.node.materialize(graph, bitsets, candidates);
            let keep_going = self.descend_full(p, stack, scratch, visit);
            stack.pop();
            if !keep_going {
                return false;
            }
        }
        true
    }

    /// Runs the masked search over the *whole* materialised node (full
    /// initial mask). The stack already holds the clique prefix.
    pub(crate) fn descend_full(
        &mut self,
        p: usize,
        stack: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        let k = self.node.len();
        let stride = self.node.stride;
        let needed = p - stack.len();
        self.masks.clear();
        self.masks.resize(needed * stride, 0);
        for w in 0..stride {
            self.masks[w] = u64::MAX;
        }
        if !k.is_multiple_of(64) && stride > 0 {
            self.masks[stride - 1] = u64::MAX >> (64 - (k % 64));
        }
        descend(
            &self.node,
            p,
            &mut self.masks,
            stack,
            &mut self.bits,
            &mut self.combo,
            scratch,
            visit,
        )
    }

    /// Runs the masked search from the local row of `pivot_local` as the
    /// initial candidate set — the edge enumerator's entry point, where the
    /// node is the (cached) neighbourhood of one endpoint and the initial
    /// candidates are the common neighbours with the other.
    pub(crate) fn descend_from_row(
        &mut self,
        p: usize,
        pivot_local: usize,
        stack: &mut Vec<u32>,
        scratch: &mut Vec<u32>,
        visit: &mut impl FnMut(&[u32]) -> bool,
    ) -> bool {
        let stride = self.node.stride;
        let needed = p - stack.len();
        self.masks.clear();
        self.masks.resize(needed * stride, 0);
        self.masks[..stride].copy_from_slice(self.node.row(pivot_local));
        descend(
            &self.node,
            p,
            &mut self.masks,
            stack,
            &mut self.bits,
            &mut self.combo,
            scratch,
            visit,
        )
    }

    pub(crate) fn node(&self) -> &InducedNode {
        &self.node
    }

    pub(crate) fn node_mut(&mut self) -> &mut InducedNode {
        &mut self.node
    }
}

/// Whether a candidate set of `k` members fits the per-node word budget.
pub(crate) fn node_fits_budget(k: usize) -> bool {
    k.saturating_mul(k.div_ceil(64)) <= TRIE_NODE_WORD_BUDGET
}

/// The masked recursion. `masks` holds the current level's candidate mask in
/// its first `stride` words and the deeper levels' buffers behind it (one
/// `split_at_mut` per level, mirroring the recursive kernel's arena split).
/// Emission order, prune behaviour and early-stop semantics are exactly the
/// recursive kernel's; see the module docs for the order argument.
#[allow(clippy::too_many_arguments)]
fn descend(
    node: &InducedNode,
    p: usize,
    masks: &mut [u64],
    stack: &mut Vec<u32>,
    bits: &mut Vec<u32>,
    combo: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    let stride = node.stride;
    let (current, deeper) = masks.split_at_mut(stride);
    let needed = p - stack.len();
    // Count of candidates not yet iterated past (including the one about to
    // be processed) — the masked analogue of `candidates.len() - i`.
    let mut remaining: usize = current.iter().map(|w| w.count_ones() as usize).sum();
    if remaining < needed {
        return true;
    }
    let completing = stack.len() + 1 == p;
    // Pivot shortcut: when the candidate set is itself a clique, every
    // `needed`-subset completes, in exactly lexicographic (= DFS) order.
    if !completing && is_complete(node, current, remaining) {
        return emit_combinations(node, current, needed, stack, bits, combo, scratch, visit);
    }
    for wi in 0..stride {
        let mut word = current[wi];
        while word != 0 {
            if remaining < needed {
                return true;
            }
            let i = (wi << 6) + word.trailing_zeros() as usize;
            word &= word - 1;
            remaining -= 1;
            stack.push(node.verts[i]);
            let keep_going = if completing {
                scratch.clear();
                scratch.extend_from_slice(stack);
                scratch.sort_unstable();
                visit(scratch)
            } else {
                child_mask(current, node.row(i), i, &mut deeper[..stride]);
                descend(node, p, deeper, stack, bits, combo, scratch, visit)
            };
            stack.pop();
            if !keep_going {
                return false;
            }
        }
    }
    true
}

/// Writes `current ∩ row ∩ {j : j > i}` into `out` — the deeper candidate
/// set after committing to local vertex `i`.
#[inline]
fn child_mask(current: &[u64], row: &[u64], i: usize, out: &mut [u64]) {
    let wi = i >> 6;
    for w in 0..out.len() {
        out[w] = if w < wi { 0 } else { current[w] & row[w] };
    }
    // Clear bit `i` and everything below it in its word (`i & 63 == 63`
    // would shift by 64, hence the checked variant).
    out[wi] &= u64::MAX.checked_shl((i & 63) as u32 + 1).unwrap_or(0);
}

/// Whether the masked candidate set (of popcount `k`) induces a complete
/// subgraph: every member's masked row has popcount `k - 1`. The scan order
/// doubles as the pivot rule — the first member missing a neighbour is the
/// witness and aborts the scan, so failures cost one row.
fn is_complete(node: &InducedNode, mask: &[u64], k: usize) -> bool {
    for (wi, &mword) in mask.iter().enumerate() {
        let mut word = mword;
        while word != 0 {
            let i = (wi << 6) + word.trailing_zeros() as usize;
            word &= word - 1;
            let row = node.row(i);
            let mut deg = 0usize;
            for (w, &m) in mask.iter().enumerate() {
                deg += (row[w] & m).count_ones() as usize;
            }
            if deg + 1 != k {
                return false;
            }
        }
    }
    true
}

/// Emits every `needed`-subset of the (complete) masked candidate set in
/// lexicographic local-id order — the exact order the recursion would have
/// produced — honouring the visitor's early stop.
#[allow(clippy::too_many_arguments)]
fn emit_combinations(
    node: &InducedNode,
    mask: &[u64],
    needed: usize,
    stack: &[u32],
    bits: &mut Vec<u32>,
    combo: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
    visit: &mut impl FnMut(&[u32]) -> bool,
) -> bool {
    bits.clear();
    for (wi, &mword) in mask.iter().enumerate() {
        let mut word = mword;
        while word != 0 {
            bits.push(((wi << 6) + word.trailing_zeros() as usize) as u32);
            word &= word - 1;
        }
    }
    let k = bits.len();
    debug_assert!(needed >= 2 && k >= needed);
    combo.clear();
    combo.extend(0..needed as u32);
    loop {
        scratch.clear();
        scratch.extend_from_slice(stack);
        for &c in combo.iter() {
            scratch.push(node.verts[bits[c as usize] as usize]);
        }
        scratch.sort_unstable();
        if !visit(scratch) {
            return false;
        }
        // Advance to the next lexicographic combination.
        let mut idx = needed;
        loop {
            if idx == 0 {
                return true;
            }
            idx -= 1;
            if (combo[idx] as usize) < k - (needed - idx) {
                break;
            }
        }
        combo[idx] += 1;
        for j in (idx + 1)..needed {
            combo[j] = combo[j - 1] + 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn strategy_names_round_trip() {
        for s in [
            KernelStrategy::Recursive,
            KernelStrategy::Trie,
            KernelStrategy::Auto,
        ] {
            assert_eq!(KernelStrategy::parse(s.name()), Some(s));
            assert_eq!(format!("{s}"), s.name());
        }
        assert_eq!(KernelStrategy::parse("  trie "), Some(KernelStrategy::Trie));
        assert_eq!(KernelStrategy::parse("quantum"), None);
        assert_eq!(KernelStrategy::default(), KernelStrategy::Auto);
        assert_eq!(format!("{}", KernelChoice::Trie), "trie");
    }

    #[test]
    fn resolution_is_pure_in_strategy_and_degeneracy() {
        assert_eq!(
            KernelStrategy::Recursive.resolve(10_000),
            KernelChoice::Recursive
        );
        assert_eq!(KernelStrategy::Trie.resolve(0), KernelChoice::Trie);
        assert_eq!(
            KernelStrategy::Auto.resolve(AUTO_TRIE_DEGENERACY - 1),
            KernelChoice::Recursive
        );
        assert_eq!(
            KernelStrategy::Auto.resolve(AUTO_TRIE_DEGENERACY),
            KernelChoice::Trie
        );
    }

    #[test]
    fn materialised_node_mirrors_the_host_adjacency() {
        let g = gen::erdos_renyi(70, 0.3, 5);
        let bitsets = NeighborBitsets::none(g.num_vertices());
        let verts: Vec<u32> = (10..40u32).collect();
        let mut node = InducedNode::new();
        node.materialize(&g, &bitsets, &verts);
        assert_eq!(node.len(), verts.len());
        for (i, &u) in verts.iter().enumerate() {
            assert_eq!(node.local_index(u), Some(i));
            for (j, &w) in verts.iter().enumerate() {
                let bit = node.row(i)[j >> 6] >> (j & 63) & 1 == 1;
                assert_eq!(bit, g.has_edge(u, w), "{u}-{w}");
            }
        }
        assert_eq!(node.local_index(99), None);
    }

    #[test]
    fn node_budget_guard() {
        assert!(node_fits_budget(0));
        assert!(node_fits_budget(1000));
        assert!(!node_fits_budget(100_000));
    }

    #[test]
    fn complete_candidate_sets_emit_combination_blocks() {
        // A complete graph: every root's candidate set is a clique, so the
        // pivot shortcut covers the whole enumeration and must reproduce the
        // recursive kernel's order exactly.
        let g = gen::complete_graph(12);
        for p in [3usize, 4, 5] {
            let mut recursive = Vec::new();
            super::super::for_each_clique(&g, p, |c| recursive.push(c.to_vec()));
            let index = super::super::CliqueIndex::build(&g);
            let mut trie = Vec::new();
            assert!(
                index.for_each_clique_while_with(&g, p, KernelStrategy::Trie, |c| {
                    trie.push(c.to_vec());
                    true
                })
            );
            assert_eq!(trie, recursive, "p={p}");
        }
    }
}
