//! The generic ordered-merge orchestrator behind every deterministic
//! parallel fan-out in the workspace.
//!
//! Two call sites share this module (that sharing is the point — the subtle
//! orchestration exists exactly once):
//!
//! * the sharded clique enumeration of [`crate::cliques`], whose work items
//!   are contiguous root shards of the degeneracy ordering;
//! * the cluster fan-out of the CONGEST pipeline (`cliquelist::arb_list`),
//!   whose work items are contiguous ranges of a decomposition's clusters.
//!
//! Both follow the same plan/execute split: an indexed list of independent
//! work items, `produce(item)` running on worker threads against shared
//! read-only state, and `consume(result)` running **only on the calling
//! thread**, strictly in ascending item order. When the items are contiguous
//! ranges of one underlying sequence, the consumed stream is byte-identical
//! to a sequential pass at any thread count — the determinism backbone of
//! `DESIGN.md` §8/§9.
//!
//! [`balanced_ranges`] is the planning half: it cuts a weighted sequence
//! into contiguous, work-balanced ranges, shared by
//! [`crate::cliques::ShardPlan`] and the cluster work-list.

/// Cuts the sequence `0..weights.len()` into at most `target` contiguous,
/// non-empty half-open ranges whose weight sums are roughly equal, greedily
/// cutting whenever the accumulated weight reaches an equal share of the
/// total. Returns fewer ranges than requested when the sequence is short
/// (every range is non-empty); the empty sequence yields no ranges.
///
/// The weights only shape the boundaries — every index is covered exactly
/// once and in order, so correctness of an ordered merge never depends on
/// the estimate quality.
pub fn balanced_ranges(weights: &[u64], target: usize) -> Vec<(u32, u32)> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let target = target.clamp(1, n);
    let total: u64 = weights.iter().sum();
    let chunk = total.div_ceil(target as u64).max(1);
    let mut ranges = Vec::with_capacity(target);
    let mut start = 0usize;
    let mut acc = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if acc >= chunk && ranges.len() + 1 < target {
            ranges.push((start as u32, (i + 1) as u32));
            start = i + 1;
            acc = 0;
        }
    }
    if start < n {
        ranges.push((start as u32, n as u32));
    }
    ranges
}

/// Work items a worker may run ahead of the replay cursor, per worker
/// thread. This is the backpressure bound of [`ordered_merge`]: without it,
/// workers racing ahead of one slow item could buffer nearly the whole
/// result set; with it, at most `O(threads)` item results ever exist at
/// once.
#[cfg(feature = "parallel")]
const CLAIM_WINDOW_PER_THREAD: usize = 2;

/// The generic ordered merge: `produce(item)` runs on up to `threads` scoped
/// worker threads, and `consume` runs **only on the calling thread**, in
/// ascending item order, parking out-of-order results until their turn.
/// Returns `true` when every item was consumed; `consume` returning `false`
/// stops the merge immediately and tells workers to abandon unclaimed items.
///
/// Two properties make this the deterministic backbone of `DESIGN.md` §8:
///
/// * **Order.** Which worker runs which item is scheduling-dependent, but
///   consumption is strictly `0, 1, 2, …` — so when items are contiguous
///   ranges of one sequence, the merged result is byte-identical to a
///   sequential pass at any thread count.
/// * **Bounded buffering.** A worker may claim an item only while it is
///   within a fixed window of the replay cursor
///   ([`CLAIM_WINDOW_PER_THREAD`] per thread); workers past the window block
///   until the cursor advances. Peak outstanding results are therefore
///   `O(threads)` items, not `O(items)` — one slow early item cannot make
///   the merge buffer the whole result set.
///
/// # Panics
///
/// Panics if `threads == 0` (the caller decides the sequential fallback).
#[cfg(feature = "parallel")]
pub fn ordered_merge<T, P, C>(items: usize, threads: usize, produce: P, mut consume: C) -> bool
where
    T: Send,
    P: Fn(usize) -> T + Sync,
    C: FnMut(T) -> bool,
{
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::{mpsc, Condvar, Mutex};

    assert!(threads > 0, "need at least one worker thread");
    let stop = AtomicBool::new(false);
    let next = AtomicUsize::new(0);
    // Replay cursor + its wait gate. `cursor` is the next item index to be
    // consumed; workers wanting to run further ahead than the window wait on
    // the condvar, and the consumer notifies under the mutex after every
    // advance (and on stop), so no wakeup can be lost.
    let cursor = AtomicUsize::new(0);
    let gate = (Mutex::new(()), Condvar::new());
    let window = threads.saturating_mul(CLAIM_WINDOW_PER_THREAD).max(1);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    let mut completed = true;
    std::thread::scope(|scope| {
        for _ in 0..threads.min(items) {
            let tx = tx.clone();
            let (produce, stop, next, cursor, gate) = (&produce, &stop, &next, &cursor, &gate);
            scope.spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                let item = next.fetch_add(1, Ordering::Relaxed);
                if item >= items {
                    break;
                }
                // Backpressure: wait until the claimed item is within the
                // window of the replay cursor. The worker holding the cursor
                // item itself never waits (item == cursor < cursor+window),
                // so the consumer always makes progress — no deadlock.
                {
                    let mut guard = gate.0.lock().expect("gate mutex");
                    while item >= cursor.load(Ordering::Acquire) + window
                        && !stop.load(Ordering::Relaxed)
                    {
                        guard = gate.1.wait(guard).expect("gate mutex");
                    }
                }
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if tx.send((item, produce(item))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        let mut pending: Vec<Option<T>> = (0..items).map(|_| None).collect();
        let mut emit = 0usize;
        'replay: while emit < items {
            let Ok((item, result)) = rx.recv() else {
                break;
            };
            pending[item] = Some(result);
            while emit < items {
                let Some(result) = pending[emit].take() else {
                    break;
                };
                let keep_going = consume(result);
                emit += 1;
                // Advance the cursor under the gate lock so a worker checking
                // the window between our store and our notify cannot miss the
                // wakeup.
                {
                    let _guard = gate.0.lock().expect("gate mutex");
                    cursor.store(emit, Ordering::Release);
                    if !keep_going {
                        stop.store(true, Ordering::Relaxed);
                    }
                    gate.1.notify_all();
                }
                if !keep_going {
                    completed = false;
                    break 'replay;
                }
            }
        }
        // On early exit, release any workers still parked at the gate.
        {
            let _guard = gate.0.lock().expect("gate mutex");
            stop.store(true, Ordering::Relaxed);
            gate.1.notify_all();
        }
    });
    completed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_ranges_partition_and_cover() {
        assert!(balanced_ranges(&[], 4).is_empty());
        for n in [1usize, 2, 7, 40] {
            let weights: Vec<u64> = (0..n as u64).map(|i| 1 + (i * i) % 13).collect();
            for target in [1usize, 2, 3, 8, 100] {
                let ranges = balanced_ranges(&weights, target);
                assert!(!ranges.is_empty());
                assert!(ranges.len() <= target.min(n), "n={n} target={target}");
                let mut covered = 0u32;
                for &(s, e) in &ranges {
                    assert_eq!(s, covered, "n={n} target={target}: gap or overlap");
                    assert!(e > s, "n={n} target={target}: empty range");
                    covered = e;
                }
                assert_eq!(covered as usize, n, "n={n} target={target}");
            }
        }
    }

    #[test]
    fn balanced_ranges_split_heavy_prefixes() {
        // One heavy item followed by many light ones: the heavy item must get
        // its own range rather than dragging everything into one.
        let mut weights = vec![1_000u64];
        weights.extend(std::iter::repeat_n(1, 30));
        let ranges = balanced_ranges(&weights, 4);
        assert!(ranges.len() >= 2);
        assert_eq!(ranges[0], (0, 1), "the heavy item gets a range of its own");
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn consumes_in_order_despite_adversarial_completion() {
        // Early items sleep longest, so completion order is roughly the
        // reverse of item order — consumption must still be 0, 1, 2, …, and
        // the claim-window backpressure must not deadlock while item 0 holds
        // everyone back.
        let items = 24usize;
        let consumed = std::cell::RefCell::new(Vec::new());
        let completed = ordered_merge(
            items,
            4,
            |item| {
                std::thread::sleep(std::time::Duration::from_millis((items - item) as u64 % 7));
                item * 10
            },
            |value| {
                consumed.borrow_mut().push(value);
                true
            },
        );
        assert!(completed);
        let expected: Vec<usize> = (0..items).map(|i| i * 10).collect();
        assert_eq!(consumed.into_inner(), expected);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn stops_early_and_releases_parked_workers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let produced = AtomicUsize::new(0);
        let mut consumed = 0usize;
        let completed = ordered_merge(
            64,
            4,
            |item| {
                produced.fetch_add(1, Ordering::Relaxed);
                item
            },
            |_| {
                consumed += 1;
                consumed < 3
            },
        );
        assert!(!completed);
        assert_eq!(consumed, 3);
        // The stop signal plus the claim window keep the abandoned work
        // bounded; without them all 64 items would have been produced.
        assert!(
            produced.load(Ordering::Relaxed) < 64,
            "early stop must abandon unclaimed items"
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn claim_window_bounds_the_run_ahead() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        // Item 0 is slow, so nothing can be consumed until it finishes. The
        // claim window (CLAIM_WINDOW_PER_THREAD per thread) must cap how many
        // later items start producing in the meantime.
        let threads = 2usize;
        let window = threads * CLAIM_WINDOW_PER_THREAD;
        let started_before_first = AtomicUsize::new(0);
        let first_done = AtomicUsize::new(0);
        let completed = ordered_merge(
            64,
            threads,
            |item| {
                if item == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(50));
                    first_done.store(1, Ordering::Release);
                } else if first_done.load(Ordering::Acquire) == 0 {
                    started_before_first.fetch_add(1, Ordering::Relaxed);
                }
                item
            },
            |_| true,
        );
        assert!(completed);
        assert!(
            started_before_first.load(Ordering::Relaxed) <= window,
            "{} items ran ahead of the cursor; the window allows {window}",
            started_before_first.load(Ordering::Relaxed)
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn single_item_and_more_threads_than_items() {
        let mut seen = Vec::new();
        assert!(ordered_merge(
            1,
            8,
            |item| item + 100,
            |v| {
                seen.push(v);
                true
            }
        ));
        assert_eq!(seen, vec![100]);
        // Zero items complete trivially.
        assert!(ordered_merge(0, 4, |item| item, |_: usize| false));
    }

    #[cfg(feature = "parallel")]
    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panic() {
        ordered_merge(3, 0, |item| item, |_| true);
    }
}
