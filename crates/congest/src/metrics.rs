//! Round, message and load accounting.

use serde::{Deserialize, Serialize};

/// Aggregate statistics for one link direction.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Total number of words that traversed the link.
    pub words: u64,
    /// Maximum queue length observed on the link (in words).
    pub max_queue: u64,
}

/// Counters accumulated by the simulator during an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// Messages handed to the transport by node programs.
    pub messages_sent: u64,
    /// Words handed to the transport by node programs.
    pub words_sent: u64,
    /// Messages delivered to node programs.
    pub messages_delivered: u64,
    /// Maximum number of words any single node sent in one round.
    pub max_node_send_per_round: u64,
    /// Maximum number of words any single node received in one round.
    pub max_node_recv_per_round: u64,
    /// Maximum number of words queued on any link at any time.
    pub max_link_queue: u64,
}

impl Metrics {
    /// Merges `other` into `self`, summing totals and taking maxima of peaks.
    pub fn merge(&mut self, other: &Metrics) {
        self.messages_sent += other.messages_sent;
        self.words_sent += other.words_sent;
        self.messages_delivered += other.messages_delivered;
        self.max_node_send_per_round = self
            .max_node_send_per_round
            .max(other.max_node_send_per_round);
        self.max_node_recv_per_round = self
            .max_node_recv_per_round
            .max(other.max_node_recv_per_round);
        self.max_link_queue = self.max_link_queue.max(other.max_link_queue);
    }
}

/// Final report of an execution: simulated rounds, charged rounds and traffic.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundReport {
    /// Rounds actually executed by the synchronous scheduler.
    pub simulated_rounds: u64,
    /// Rounds charged for black-box primitives through a [`crate::CostLedger`].
    pub charged_rounds: u64,
    /// Traffic counters.
    pub metrics: Metrics,
    /// Whether the execution terminated before hitting the round limit.
    pub terminated: bool,
}

impl RoundReport {
    /// Total rounds: simulated plus charged.
    pub fn total_rounds(&self) -> u64 {
        self.simulated_rounds + self.charged_rounds
    }

    /// Merges another report (e.g. of a later phase) into this one.
    pub fn absorb(&mut self, other: &RoundReport) {
        self.simulated_rounds += other.simulated_rounds;
        self.charged_rounds += other.charged_rounds;
        self.metrics.merge(&other.metrics);
        self.terminated = self.terminated && other.terminated;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Metrics {
            messages_sent: 5,
            words_sent: 7,
            messages_delivered: 5,
            max_node_send_per_round: 3,
            max_node_recv_per_round: 2,
            max_link_queue: 9,
        };
        let b = Metrics {
            messages_sent: 1,
            words_sent: 1,
            messages_delivered: 1,
            max_node_send_per_round: 10,
            max_node_recv_per_round: 1,
            max_link_queue: 2,
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 6);
        assert_eq!(a.max_node_send_per_round, 10);
        assert_eq!(a.max_link_queue, 9);
    }

    #[test]
    fn report_totals() {
        let mut r = RoundReport {
            simulated_rounds: 10,
            charged_rounds: 5,
            terminated: true,
            ..Default::default()
        };
        assert_eq!(r.total_rounds(), 15);
        let other = RoundReport {
            simulated_rounds: 1,
            charged_rounds: 2,
            terminated: true,
            ..Default::default()
        };
        r.absorb(&other);
        assert_eq!(r.total_rounds(), 18);
        assert!(r.terminated);
    }
}
