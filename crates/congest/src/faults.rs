//! Deterministic, content-addressed fault injection for the simulator.
//!
//! A [`FaultPlan`] describes every fault the network will experience before
//! the run starts: a per-(round, link) message drop probability, link outage
//! windows, crash-stop node schedules and bandwidth throttling windows. All
//! decisions are **content-addressed** — the drop decision for `(round,
//! link)` is a pure function of the plan seed, the round number and the link
//! index, computed through [`DeterministicRng::for_decision`], never by
//! consuming a sequential random stream. Consequently the same `(seed,
//! plan)` pair reproduces the same faults byte for byte regardless of queue
//! backlogs, executor choice (sequential vs parallel) or thread grant, which
//! is what extends the workspace determinism contract to faulty runs.
//!
//! Plans are built through [`FaultPlanBuilder`], which validates every knob
//! and returns a typed [`FaultError`] on misuse; a successfully built plan
//! is valid by construction. Install a plan on a network with
//! [`crate::Network::set_fault_plan`]; injected faults surface as
//! [`crate::TraceEvent::Dropped`] and [`crate::TraceEvent::NodeCrashed`]
//! events in the trace sink.

use crate::rng::DeterministicRng;
use std::fmt;

/// A rejected [`FaultPlanBuilder`] knob.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// The drop probability is not a finite value in `[0, 1]`.
    BadDropProbability {
        /// The rejected value.
        value: f64,
    },
    /// An outage window ends before it starts.
    EmptyOutageWindow {
        /// Directed link index of the window.
        link: usize,
        /// First round of the window.
        start: u64,
        /// Last round of the window (exclusive bound below `start`).
        end: u64,
    },
    /// A throttle window ends before it starts.
    EmptyThrottleWindow {
        /// First round of the window.
        start: u64,
        /// Last round of the window (exclusive bound below `start`).
        end: u64,
    },
    /// A throttle window grants zero bandwidth; model a dead link as an
    /// outage window instead.
    ZeroThrottleBandwidth,
    /// A crash is scheduled for round 0; the earliest observable crash round
    /// is 1 (round 0 is `on_start`).
    CrashAtRoundZero {
        /// The node whose crash was scheduled.
        node: usize,
    },
    /// Two crash rounds were scheduled for the same node.
    DuplicateCrash {
        /// The node with conflicting schedules.
        node: usize,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadDropProbability { value } => {
                write!(
                    f,
                    "drop probability {value} must be a finite value in [0, 1]"
                )
            }
            FaultError::EmptyOutageWindow { link, start, end } => write!(
                f,
                "outage window [{start}, {end}] on link {link} is empty (end < start)"
            ),
            FaultError::EmptyThrottleWindow { start, end } => {
                write!(f, "throttle window [{start}, {end}] is empty (end < start)")
            }
            FaultError::ZeroThrottleBandwidth => write!(
                f,
                "throttle bandwidth must be at least one word per round; use an outage window \
                 for a dead link"
            ),
            FaultError::CrashAtRoundZero { node } => write!(
                f,
                "node {node} cannot crash at round 0; the earliest crash round is 1"
            ),
            FaultError::DuplicateCrash { node } => {
                write!(f, "node {node} has two crash rounds scheduled")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// An inclusive round window during which a directed link delivers nothing.
/// Queued messages wait out the outage rather than being lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct OutageWindow {
    link: usize,
    start: u64,
    end: u64,
}

/// An inclusive round window during which every link's bandwidth is capped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct ThrottleWindow {
    start: u64,
    end: u64,
    bandwidth_words: u32,
}

/// A validated, immutable fault schedule. See the module docs for the
/// decision model; build plans with [`FaultPlan::builder`].
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    drop_probability: f64,
    outages: Vec<OutageWindow>,
    throttles: Vec<ThrottleWindow>,
    /// `(node, crash round)` pairs, sorted by node, at most one per node.
    crashes: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// Starts building a plan whose content-addressed decisions derive from
    /// `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            drop_probability: 0.0,
            outages: Vec::new(),
            throttles: Vec::new(),
            crashes: Vec::new(),
        }
    }

    /// The plan that injects nothing. Running under it is byte-identical to
    /// running without a plan at all.
    pub fn fault_free() -> Self {
        FaultPlan::builder(0)
            .build()
            .expect("the empty plan is valid")
    }

    /// The seed the plan's content-addressed decisions derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-(round, link) drop probability.
    pub fn drop_probability(&self) -> f64 {
        self.drop_probability
    }

    /// Whether the plan injects no faults at all.
    pub fn is_fault_free(&self) -> bool {
        self.drop_probability <= 0.0
            && self.outages.is_empty()
            && self.throttles.is_empty()
            && self.crashes.is_empty()
    }

    /// Whether `link` is inside an outage window at `round`.
    pub fn link_down(&self, round: u64, link: usize) -> bool {
        self.outages
            .iter()
            .any(|w| w.link == link && w.start <= round && round <= w.end)
    }

    /// Content-addressed drop decision: whether messages crossing `link` at
    /// `round` are lost in flight. One decision covers the whole
    /// (round, link) pair — a lossy round drops every message the link
    /// carries that round, modelling burst loss.
    pub fn drops(&self, round: u64, link: usize) -> bool {
        if self.drop_probability <= 0.0 {
            return false;
        }
        if self.drop_probability >= 1.0 {
            return true;
        }
        DeterministicRng::for_decision(self.seed, round, link).unit() < self.drop_probability
    }

    /// The bandwidth cap active at `round`, if any throttle window covers it
    /// (the tightest cap wins when windows overlap).
    pub fn bandwidth_cap(&self, round: u64) -> Option<u32> {
        self.throttles
            .iter()
            .filter(|w| w.start <= round && round <= w.end)
            .map(|w| w.bandwidth_words)
            .min()
    }

    /// The round at which `node` crash-stops, if one is scheduled.
    pub fn crash_round(&self, node: usize) -> Option<u64> {
        self.crashes
            .iter()
            .find(|&&(v, _)| v == node)
            .map(|&(_, round)| round)
    }

    /// The scheduled `(node, crash round)` pairs, sorted by node.
    pub fn crashes(&self) -> &[(usize, u64)] {
        &self.crashes
    }

    /// The largest directed link index any outage window references, used by
    /// the network to validate a plan against its topology.
    pub fn max_referenced_link(&self) -> Option<usize> {
        self.outages.iter().map(|w| w.link).max()
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::fault_free()
    }
}

/// Builder for [`FaultPlan`]; every knob is validated in
/// [`FaultPlanBuilder::build`].
#[derive(Clone, Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    drop_probability: f64,
    outages: Vec<OutageWindow>,
    throttles: Vec<ThrottleWindow>,
    crashes: Vec<(usize, u64)>,
}

impl FaultPlanBuilder {
    /// Sets the per-(round, link) drop probability (must be in `[0, 1]`).
    pub fn drop_probability(mut self, probability: f64) -> Self {
        self.drop_probability = probability;
        self
    }

    /// Adds an outage window: directed link `link` delivers nothing during
    /// rounds `start..=end` (queued messages wait, they are not lost).
    pub fn outage(mut self, link: usize, start: u64, end: u64) -> Self {
        self.outages.push(OutageWindow { link, start, end });
        self
    }

    /// Adds a throttle window: during rounds `start..=end` every link's
    /// bandwidth is capped at `bandwidth_words` words per round.
    pub fn throttle(mut self, start: u64, end: u64, bandwidth_words: u32) -> Self {
        self.throttles.push(ThrottleWindow {
            start,
            end,
            bandwidth_words,
        });
        self
    }

    /// Schedules node `node` to crash-stop at `round` (≥ 1). From that round
    /// on the node computes nothing, its queued outgoing messages are
    /// discarded and messages addressed to it are dropped on delivery.
    pub fn crash(mut self, node: usize, round: u64) -> Self {
        self.crashes.push((node, round));
        self
    }

    /// Validates the accumulated knobs and produces the immutable plan.
    pub fn build(self) -> Result<FaultPlan, FaultError> {
        if !self.drop_probability.is_finite() || !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(FaultError::BadDropProbability {
                value: self.drop_probability,
            });
        }
        for w in &self.outages {
            if w.end < w.start {
                return Err(FaultError::EmptyOutageWindow {
                    link: w.link,
                    start: w.start,
                    end: w.end,
                });
            }
        }
        for w in &self.throttles {
            if w.end < w.start {
                return Err(FaultError::EmptyThrottleWindow {
                    start: w.start,
                    end: w.end,
                });
            }
            if w.bandwidth_words == 0 {
                return Err(FaultError::ZeroThrottleBandwidth);
            }
        }
        let mut crashes = self.crashes;
        crashes.sort_unstable();
        for &(node, round) in &crashes {
            if round == 0 {
                return Err(FaultError::CrashAtRoundZero { node });
            }
        }
        for pair in crashes.windows(2) {
            if pair[0].0 == pair[1].0 {
                return Err(FaultError::DuplicateCrash { node: pair[0].0 });
            }
        }
        Ok(FaultPlan {
            seed: self.seed,
            drop_probability: self.drop_probability,
            outages: self.outages,
            throttles: self.throttles,
            crashes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_empty_plan_is_fault_free() {
        let plan = FaultPlan::fault_free();
        assert!(plan.is_fault_free());
        assert!(!plan.drops(3, 7));
        assert!(!plan.link_down(3, 7));
        assert_eq!(plan.bandwidth_cap(3), None);
        assert_eq!(plan.crash_round(0), None);
        assert_eq!(FaultPlan::default(), plan);
    }

    #[test]
    fn drop_decisions_are_content_addressed_and_seed_sensitive() {
        let plan = FaultPlan::builder(42)
            .drop_probability(0.5)
            .build()
            .unwrap();
        let grid: Vec<bool> = (0..64)
            .flat_map(|round| (0..8).map(move |link| (round, link)))
            .map(|(round, link)| plan.drops(round, link))
            .collect();
        // Repeated evaluation is stateless: same answers in any order.
        let again: Vec<bool> = (0..64)
            .flat_map(|round| (0..8).map(move |link| (round, link)))
            .map(|(round, link)| plan.drops(round, link))
            .collect();
        assert_eq!(grid, again);
        assert!(grid.iter().any(|&d| d) && grid.iter().any(|&d| !d));
        let other = FaultPlan::builder(43)
            .drop_probability(0.5)
            .build()
            .unwrap();
        let shifted: Vec<bool> = (0..64)
            .flat_map(|round| (0..8).map(move |link| (round, link)))
            .map(|(round, link)| other.drops(round, link))
            .collect();
        assert_ne!(grid, shifted, "a different seed must reshuffle decisions");
    }

    #[test]
    fn extreme_probabilities_short_circuit() {
        let never = FaultPlan::builder(1).drop_probability(0.0).build().unwrap();
        let always = FaultPlan::builder(1).drop_probability(1.0).build().unwrap();
        for round in 0..32 {
            assert!(!never.drops(round, 0));
            assert!(always.drops(round, 0));
        }
    }

    #[test]
    fn windows_and_crashes_answer_point_queries() {
        let plan = FaultPlan::builder(7)
            .outage(3, 5, 9)
            .throttle(2, 4, 2)
            .throttle(3, 6, 1)
            .crash(1, 4)
            .crash(0, 2)
            .build()
            .unwrap();
        assert!(!plan.link_down(4, 3));
        assert!(plan.link_down(5, 3) && plan.link_down(9, 3));
        assert!(!plan.link_down(10, 3));
        assert!(!plan.link_down(5, 2), "outages are per-link");
        assert_eq!(plan.bandwidth_cap(1), None);
        assert_eq!(plan.bandwidth_cap(2), Some(2));
        assert_eq!(plan.bandwidth_cap(3), Some(1), "tightest cap wins");
        assert_eq!(plan.bandwidth_cap(7), None);
        assert_eq!(plan.crash_round(0), Some(2));
        assert_eq!(plan.crash_round(1), Some(4));
        assert_eq!(plan.crash_round(2), None);
        assert_eq!(plan.crashes(), &[(0, 2), (1, 4)]);
    }

    #[test]
    fn builder_rejects_each_bad_knob() {
        assert_eq!(
            FaultPlan::builder(0).drop_probability(1.5).build(),
            Err(FaultError::BadDropProbability { value: 1.5 })
        );
        assert!(matches!(
            FaultPlan::builder(0).drop_probability(f64::NAN).build(),
            Err(FaultError::BadDropProbability { value }) if value.is_nan()
        ));
        assert_eq!(
            FaultPlan::builder(0).outage(2, 9, 3).build(),
            Err(FaultError::EmptyOutageWindow {
                link: 2,
                start: 9,
                end: 3
            })
        );
        assert_eq!(
            FaultPlan::builder(0).throttle(9, 3, 1).build(),
            Err(FaultError::EmptyThrottleWindow { start: 9, end: 3 })
        );
        assert_eq!(
            FaultPlan::builder(0).throttle(1, 2, 0).build(),
            Err(FaultError::ZeroThrottleBandwidth)
        );
        assert_eq!(
            FaultPlan::builder(0).crash(5, 0).build(),
            Err(FaultError::CrashAtRoundZero { node: 5 })
        );
        assert_eq!(
            FaultPlan::builder(0).crash(5, 1).crash(5, 2).build(),
            Err(FaultError::DuplicateCrash { node: 5 })
        );
    }
}
