//! Ack/sequence-number reliable transport over lossy links.
//!
//! [`ReliableTransport`] wraps a node program's sends in [`Packet`]s carrying
//! sequence numbers, acknowledges every received data packet, deduplicates
//! replayed deliveries, and retransmits unacknowledged packets with bounded
//! retries and exponential backoff **measured in rounds**. It is a helper a
//! [`crate::NodeProgram`] owns — one instance per node — not a separate
//! program: the program calls [`ReliableTransport::send`] /
//! [`ReliableTransport::broadcast`] instead of [`crate::Context::send`] /
//! [`crate::Context::broadcast`], and funnels each round's incoming packets
//! through [`ReliableTransport::poll`], which returns the deduplicated
//! application payloads.
//!
//! The ARQ discipline is **per-destination stop-and-wait**: at most one data
//! packet per destination is in flight at a time; further sends to the same
//! destination queue inside the transport and are released by the ack of
//! their predecessor. Self-clocking like this keeps the number of in-flight
//! words bounded by the node's degree, so round-trip times stay close to the
//! uncontended 2-round minimum and a timeout almost always means genuine
//! loss rather than queueing delay — which is what makes bounded retries
//! safe: on a lossless link the transport never retransmits spuriously, and
//! on a lossy link the chance of exhausting `max_retries` independent
//! per-(round, link) loss decisions is negligible.
//!
//! Every retransmission is surfaced as a [`TraceEvent::Retransmit`] through
//! [`Context::emit`] (deterministically ordered by the network), and the
//! transport's overhead can be charged to a [`CostLedger`] under
//! [`PrimitiveKind::ReliableTransport`] so round accounting stays honest.
//!
//! Determinism: the transport holds no randomness. Its behaviour is a pure
//! function of the packets it sees and the round numbers at which it sees
//! them — both byte-identical across executors and thread grants — so runs
//! under a seeded [`crate::FaultPlan`] replay exactly.

use crate::cost::{CostLedger, PrimitiveKind};
use crate::node::{Context, NodeId};
use crate::trace::TraceEvent;
use std::collections::{BTreeMap, BTreeSet};

/// Retry/backoff policy of a [`ReliableTransport`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableConfig {
    /// Rounds to wait for an ack before the first retransmission.
    pub base_timeout_rounds: u64,
    /// Multiplicative backoff applied per retry: retry `k` waits
    /// `base_timeout_rounds * backoff_factor^k` rounds.
    pub backoff_factor: u64,
    /// Maximum number of retransmissions per packet before giving up.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        ReliableConfig {
            // The uncontended round trip is 2 rounds (data out, ack back);
            // the slack absorbs acks queueing behind reverse-direction data.
            base_timeout_rounds: 4,
            backoff_factor: 2,
            max_retries: 8,
        }
    }
}

/// Wire format of the reliable transport: data packets carry a per-sender
/// sequence number, acks echo it back.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Packet<M> {
    /// An application payload with its sequence number.
    Data {
        /// Per-sender sequence number.
        seq: u64,
        /// The wrapped application message.
        payload: M,
    },
    /// Acknowledgement of a received data packet.
    Ack {
        /// The acknowledged sequence number.
        seq: u64,
    },
}

impl<M> Packet<M> {
    /// Width of the packet on the wire when the wrapped payload occupies
    /// `payload_words` words: data packets pay one extra word for the
    /// sequence number, acks are a single word. Programs should return this
    /// from [`crate::NodeProgram::message_words`] so bandwidth accounting
    /// charges the transport's framing honestly.
    pub fn words(&self, payload_words: u32) -> u32 {
        match self {
            Packet::Data { .. } => payload_words.saturating_add(1),
            Packet::Ack { .. } => 1,
        }
    }
}

/// Counters describing what a transport endpoint did; aggregate them across
/// nodes for run-level overhead numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// First transmissions of data packets.
    pub data_sent: u64,
    /// Retransmissions of unacknowledged data packets.
    pub retransmits: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Received data packets discarded as duplicates.
    pub duplicates_discarded: u64,
    /// Packets abandoned after `max_retries` retransmissions.
    pub gave_up: u64,
}

impl TransportStats {
    /// Words of pure overhead this endpoint added to the fault-free
    /// schedule: one word per ack plus the full frame of every
    /// retransmission (`payload_words + 1` each).
    pub fn overhead_words(&self, payload_words: u32) -> u64 {
        self.acks_sent + self.retransmits * u64::from(payload_words.saturating_add(1))
    }

    /// Accumulates another endpoint's counters into this one.
    pub fn absorb(&mut self, other: &TransportStats) {
        self.data_sent += other.data_sent;
        self.retransmits += other.retransmits;
        self.acks_sent += other.acks_sent;
        self.duplicates_discarded += other.duplicates_discarded;
        self.gave_up += other.gave_up;
    }
}

/// An unacknowledged data packet awaiting its ack or its next timeout.
#[derive(Clone, Debug)]
struct Pending<M> {
    to: NodeId,
    seq: u64,
    payload: M,
    sent_round: u64,
    attempt: u32,
}

/// One node's endpoint of the reliable transport. See the module docs.
#[derive(Clone, Debug)]
pub struct ReliableTransport<M> {
    config: ReliableConfig,
    next_seq: u64,
    /// In-flight packets: at most one per destination (stop-and-wait).
    pending: Vec<Pending<M>>,
    /// Payloads accepted by [`ReliableTransport::send`] but not yet
    /// transmitted, per destination; released by the predecessor's ack.
    backlog: BTreeMap<usize, std::collections::VecDeque<(u64, M)>>,
    /// Sequence numbers already delivered, per source node — retransmits can
    /// arrive out of order, so a cumulative watermark is not enough.
    seen: BTreeMap<usize, BTreeSet<u64>>,
    stats: TransportStats,
}

impl<M: Clone> ReliableTransport<M> {
    /// Creates an endpoint with the given retry policy.
    pub fn new(config: ReliableConfig) -> Self {
        ReliableTransport {
            config,
            next_seq: 0,
            pending: Vec::new(),
            backlog: BTreeMap::new(),
            seen: BTreeMap::new(),
            stats: TransportStats::default(),
        }
    }

    /// Creates an endpoint with [`ReliableConfig::default`].
    pub fn with_defaults() -> Self {
        ReliableTransport::new(ReliableConfig::default())
    }

    /// Sends `payload` reliably to neighbour `to`: the packet is tracked
    /// until acked, retransmitted on timeout, abandoned after `max_retries`.
    /// If a packet to `to` is already in flight, the payload queues inside
    /// the transport and is transmitted once the predecessor is acked.
    pub fn send(&mut self, ctx: &mut Context<'_, Packet<M>>, to: NodeId, payload: M) {
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.pending.iter().any(|p| p.to == to) {
            self.backlog
                .entry(to.index())
                .or_default()
                .push_back((seq, payload));
            return;
        }
        self.transmit(ctx, to, seq, payload);
    }

    /// Sends `payload` reliably to every neighbour.
    pub fn broadcast(&mut self, ctx: &mut Context<'_, Packet<M>>, payload: M) {
        let neighbors: Vec<NodeId> = ctx.neighbors().to_vec();
        for to in neighbors {
            self.send(ctx, to, payload.clone());
        }
    }

    /// First transmission of a tracked packet.
    fn transmit(&mut self, ctx: &mut Context<'_, Packet<M>>, to: NodeId, seq: u64, payload: M) {
        self.pending.push(Pending {
            to,
            seq,
            payload: payload.clone(),
            sent_round: ctx.round(),
            attempt: 0,
        });
        self.stats.data_sent += 1;
        ctx.send(to, Packet::Data { seq, payload });
    }

    /// Releases the next backlogged payload for `to`, if any.
    fn release_next(&mut self, ctx: &mut Context<'_, Packet<M>>, to: NodeId) {
        let Some(queue) = self.backlog.get_mut(&to.index()) else {
            return;
        };
        let Some((seq, payload)) = queue.pop_front() else {
            return;
        };
        if queue.is_empty() {
            self.backlog.remove(&to.index());
        }
        self.transmit(ctx, to, seq, payload);
    }

    /// Processes one round's incoming packets and timeouts. Acks retire
    /// in-flight packets and release their successors from the backlog; data
    /// packets are acked and deduplicated; overdue in-flight packets are
    /// retransmitted (emitting [`TraceEvent::Retransmit`]) or abandoned once
    /// `max_retries` is exhausted. Returns the newly delivered
    /// `(source, payload)` pairs in arrival order.
    pub fn poll(
        &mut self,
        ctx: &mut Context<'_, Packet<M>>,
        incoming: &[(NodeId, Packet<M>)],
    ) -> Vec<(NodeId, M)> {
        let mut delivered = Vec::new();
        for (src, packet) in incoming {
            match packet {
                Packet::Ack { seq } => {
                    let before = self.pending.len();
                    self.pending.retain(|p| !(p.to == *src && p.seq == *seq));
                    if self.pending.len() < before {
                        self.release_next(ctx, *src);
                    }
                }
                Packet::Data { seq, payload } => {
                    ctx.send(*src, Packet::Ack { seq: *seq });
                    self.stats.acks_sent += 1;
                    if self.seen.entry(src.index()).or_default().insert(*seq) {
                        delivered.push((*src, payload.clone()));
                    } else {
                        self.stats.duplicates_discarded += 1;
                    }
                }
            }
        }
        let round = ctx.round();
        let config = self.config;
        let mut keep = Vec::with_capacity(self.pending.len());
        let mut abandoned: Vec<NodeId> = Vec::new();
        for mut p in std::mem::take(&mut self.pending) {
            if round < p.sent_round + timeout_rounds(&config, p.attempt) {
                keep.push(p);
                continue;
            }
            if p.attempt >= config.max_retries {
                self.stats.gave_up += 1;
                abandoned.push(p.to);
                continue;
            }
            p.attempt += 1;
            p.sent_round = round;
            self.stats.retransmits += 1;
            ctx.emit(TraceEvent::Retransmit {
                node: ctx.id(),
                round,
                seq: p.seq,
            });
            ctx.send(
                p.to,
                Packet::Data {
                    seq: p.seq,
                    payload: p.payload.clone(),
                },
            );
            keep.push(p);
        }
        self.pending = keep;
        // A destination whose packet was abandoned is treated as gone: its
        // queued successors would only repeat the failure, so they are
        // abandoned with it (counted per packet, so overhead stays honest).
        for to in abandoned {
            if let Some(queue) = self.backlog.remove(&to.index()) {
                self.stats.gave_up += queue.len() as u64;
            }
        }
        delivered
    }

    /// Whether no packets are in flight or queued. A program should stay
    /// [`crate::Status::Running`] until its transport is idle, so
    /// retransmissions keep flowing.
    pub fn idle(&self) -> bool {
        self.pending.is_empty() && self.backlog.is_empty()
    }

    /// The endpoint's counters so far.
    pub fn stats(&self) -> TransportStats {
        self.stats
    }

    /// Charges this endpoint's overhead words to `ledger` under
    /// [`PrimitiveKind::ReliableTransport`].
    pub fn charge_overhead(&self, ledger: &mut CostLedger, payload_words: u32) {
        let words = self.stats.overhead_words(payload_words);
        if words > 0 {
            ledger.charge(PrimitiveKind::ReliableTransport, words);
        }
    }
}

/// Rounds to wait before retransmission attempt `attempt + 1`:
/// `base * factor^attempt`, saturating.
fn timeout_rounds(config: &ReliableConfig, attempt: u32) -> u64 {
    config
        .base_timeout_rounds
        .max(1)
        .saturating_mul(config.backoff_factor.max(1).saturating_pow(attempt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::network::{Network, NetworkConfig};
    use crate::node::{NodeProgram, Status};
    use crate::topology::Topology;
    use crate::trace::MemorySink;
    use std::sync::Arc;

    /// Node 0 reliably sends `count` tokens to node 1; both sides run the
    /// transport. Used to exercise ack/retransmit behaviour under a lossy
    /// plan end to end.
    struct Courier {
        transport: ReliableTransport<u64>,
        count: u64,
        received: Vec<u64>,
        started: bool,
    }

    impl Courier {
        fn new(count: u64) -> Self {
            Courier {
                transport: ReliableTransport::with_defaults(),
                count,
                received: Vec::new(),
                started: false,
            }
        }
    }

    impl NodeProgram for Courier {
        type Message = Packet<u64>;

        fn on_round(
            &mut self,
            ctx: &mut Context<'_, Packet<u64>>,
            incoming: &[(NodeId, Packet<u64>)],
        ) -> Status {
            for (_, token) in self.transport.poll(ctx, incoming) {
                self.received.push(token);
            }
            if ctx.id().index() == 0 && !self.started {
                self.started = true;
                for token in 0..self.count {
                    self.transport.send(ctx, NodeId::new(1), token);
                }
            }
            if self.transport.idle() && (ctx.id().index() != 0 || self.started) {
                Status::Done
            } else {
                Status::Running
            }
        }

        fn message_words(&self, message: &Packet<u64>) -> u32 {
            message.words(1)
        }
    }

    fn run_courier(plan: Option<FaultPlan>, count: u64) -> (Vec<u64>, TransportStats, u64) {
        let topology = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topology, NetworkConfig::default().with_bandwidth(4), |_| {
            Courier::new(count)
        });
        if let Some(plan) = plan {
            net.set_fault_plan(plan).unwrap();
        }
        let report = net.run(10_000);
        assert!(report.terminated, "courier run must reach quiescence");
        let mut stats = TransportStats::default();
        for (_, p) in net.programs() {
            stats.absorb(&p.transport.stats());
        }
        let received = net.program(NodeId::new(1)).received.clone();
        (received, stats, report.simulated_rounds)
    }

    #[test]
    fn lossless_links_deliver_without_retransmission() {
        let (received, stats, _) = run_courier(None, 5);
        assert_eq!(received, vec![0, 1, 2, 3, 4]);
        assert_eq!(stats.retransmits, 0);
        assert_eq!(stats.duplicates_discarded, 0);
        assert_eq!(stats.acks_sent, 5);
        assert_eq!(stats.gave_up, 0);
    }

    #[test]
    fn lossy_links_deliver_the_same_payloads_with_recorded_overhead() {
        let reference = run_courier(None, 8);
        let plan = FaultPlan::builder(0xFA17)
            .drop_probability(0.3)
            .build()
            .unwrap();
        let lossy = run_courier(Some(plan), 8);
        // Retransmissions may reorder arrivals; the delivered *set* must
        // match the fault-free run exactly.
        let mut expected = reference.0.clone();
        expected.sort_unstable();
        let mut got = lossy.0.clone();
        got.sort_unstable();
        assert_eq!(got, expected, "payloads must survive loss");
        assert!(
            lossy.1.retransmits > 0,
            "a 30% lossy link must force retransmissions"
        );
        assert!(
            lossy.2 >= reference.2,
            "recovery cannot be faster than the fault-free run"
        );
    }

    #[test]
    fn retransmissions_surface_in_the_trace() {
        let plan = FaultPlan::builder(0xFA17)
            .drop_probability(0.3)
            .build()
            .unwrap();
        let topology = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topology, NetworkConfig::default(), |_| Courier::new(4));
        net.set_fault_plan(plan).unwrap();
        let sink = Arc::new(MemorySink::new());
        net.set_trace_sink(sink.clone());
        assert!(net.run(10_000).terminated);
        let events = sink.events();
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Dropped { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e, TraceEvent::Retransmit { .. })));
    }

    #[test]
    fn a_dead_link_exhausts_retries_and_gives_up() {
        let plan = FaultPlan::builder(1).drop_probability(1.0).build().unwrap();
        let (received, stats, _) = run_courier(Some(plan), 3);
        assert!(received.is_empty());
        // Stop-and-wait: only the head packet is ever transmitted; once it
        // exhausts its retries the backlogged successors are abandoned too.
        assert_eq!(stats.gave_up, 3);
        assert_eq!(stats.data_sent, 1);
        assert_eq!(
            stats.retransmits,
            u64::from(ReliableConfig::default().max_retries)
        );
    }

    #[test]
    fn overhead_accounting_charges_the_ledger() {
        let stats = TransportStats {
            data_sent: 10,
            retransmits: 3,
            acks_sent: 10,
            duplicates_discarded: 1,
            gave_up: 0,
        };
        assert_eq!(stats.overhead_words(1), 10 + 3 * 2);
        let mut transport: ReliableTransport<u64> = ReliableTransport::with_defaults();
        transport.stats = stats;
        let mut ledger = CostLedger::new();
        transport.charge_overhead(&mut ledger, 1);
        assert_eq!(ledger.for_kind(PrimitiveKind::ReliableTransport), 16);
    }

    #[test]
    fn packet_framing_widths() {
        let data: Packet<u64> = Packet::Data { seq: 0, payload: 9 };
        let ack: Packet<u64> = Packet::Ack { seq: 0 };
        assert_eq!(data.words(1), 2);
        assert_eq!(data.words(3), 4);
        assert_eq!(ack.words(3), 1);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let config = ReliableConfig::default();
        assert_eq!(timeout_rounds(&config, 0), 4);
        assert_eq!(timeout_rounds(&config, 1), 8);
        assert_eq!(timeout_rounds(&config, 3), 32);
    }
}
