//! The synchronous round executor.

use crate::cost::{ChargePolicy, CostLedger, PrimitiveKind};
use crate::faults::FaultPlan;
use crate::metrics::{Metrics, RoundReport};
use crate::node::{Context, NodeId, NodeProgram, Status};
use crate::rng::DeterministicRng;
use crate::topology::Topology;
use crate::trace::{NullSink, TraceEvent, TraceSink};
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Messages addressed to (or received from) specific nodes.
type Mailbox<M> = Vec<(NodeId, M)>;

/// Outcome of stepping one node: `(node index, new status, produced outbox,
/// emitted trace events)`.
#[cfg(feature = "parallel")]
type NodeOutcome<M> = (usize, Status, Mailbox<M>, Vec<TraceEvent>);

/// A rejected network construction or configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkError {
    /// The configured per-link bandwidth is zero.
    ZeroBandwidth,
    /// A fault plan schedules a crash for a node outside the topology.
    CrashNodeOutOfRange {
        /// The out-of-range node index.
        node: usize,
        /// Number of nodes in the topology.
        num_nodes: usize,
    },
    /// A fault plan references a directed link index outside the topology.
    OutageLinkOutOfRange {
        /// The out-of-range link index.
        link: usize,
        /// Number of directed links in the topology.
        num_links: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::ZeroBandwidth => {
                write!(f, "bandwidth must be at least one word per round")
            }
            NetworkError::CrashNodeOutOfRange { node, num_nodes } => write!(
                f,
                "fault plan schedules a crash for node {node}, but the topology has {num_nodes} \
                 nodes"
            ),
            NetworkError::OutageLinkOutOfRange { link, num_links } => write!(
                f,
                "fault plan references directed link {link}, but the topology has {num_links} \
                 directed links"
            ),
        }
    }
}

impl std::error::Error for NetworkError {}

/// Configuration of a simulated network.
#[derive(Clone, Copy, Debug)]
pub struct NetworkConfig {
    /// Words each directed edge can carry per round. The CONGEST model allows
    /// one `O(log n)`-bit message per edge per round, i.e. `1`.
    pub bandwidth_words: u32,
    /// Seed from which all per-node random generators are derived.
    pub seed: u64,
    /// Policy used when charging rounds for black-box primitives.
    pub charge_policy: ChargePolicy,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            bandwidth_words: 1,
            seed: 0xC11C_0E15,
            charge_policy: ChargePolicy::default(),
        }
    }
}

impl NetworkConfig {
    /// Returns a copy of the configuration with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy of the configuration with a different bandwidth.
    pub fn with_bandwidth(mut self, words: u32) -> Self {
        assert!(words > 0, "bandwidth must be at least one word per round");
        self.bandwidth_words = words;
        self
    }
}

/// A synchronous network executing one [`NodeProgram`] per node.
///
/// See the crate-level documentation for an end-to-end example.
pub struct Network<P: NodeProgram> {
    topology: Topology,
    config: NetworkConfig,
    programs: Vec<P>,
    rngs: Vec<DeterministicRng>,
    statuses: Vec<Status>,
    /// FIFO queue of `(message, width-in-words)` pairs per directed link,
    /// indexed by the topology's dense link index ([`Topology::link_index`]).
    /// Link indices are lexicographic in `(src, dst)`, so iterating the flat
    /// vector reproduces the delivery order of the former
    /// `BTreeMap<(src, dst), _>` exactly — deterministic across runs and
    /// identical between the sequential and parallel executors — while
    /// `enqueue`/`deliver` touch a plain array slot instead of paying a tree
    /// lookup per message.
    queues: Vec<VecDeque<(P::Message, u32)>>,
    /// Number of messages currently queued across all links (keeps
    /// [`Network::is_quiescent`] O(1) in the link count).
    queued_messages: usize,
    ledger: CostLedger,
    metrics: Metrics,
    round: u64,
    sink: Arc<dyn TraceSink>,
    /// The installed fault schedule, if any. `None` behaves exactly like
    /// [`FaultPlan::fault_free`] without paying any per-round plan queries.
    fault_plan: Option<FaultPlan>,
    /// Crash-stop flags, set when the plan's crash round arrives.
    crashed: Vec<bool>,
}

impl<P: NodeProgram> Network<P> {
    /// Creates a network over `topology`, instantiating one program per node
    /// through `factory`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (zero bandwidth); use
    /// [`Network::try_new`] for a typed rejection.
    pub fn new(
        topology: Topology,
        config: NetworkConfig,
        factory: impl FnMut(NodeId) -> P,
    ) -> Self {
        Self::try_new(topology, config, factory).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a network over `topology`, validating the configuration and
    /// returning a typed [`NetworkError`] instead of panicking on bad input.
    pub fn try_new(
        topology: Topology,
        config: NetworkConfig,
        factory: impl FnMut(NodeId) -> P,
    ) -> Result<Self, NetworkError> {
        if config.bandwidth_words == 0 {
            return Err(NetworkError::ZeroBandwidth);
        }
        let n = topology.num_nodes();
        let mut factory = factory;
        let programs: Vec<P> = (0..n).map(|i| factory(NodeId::new(i))).collect();
        let rngs = (0..n)
            .map(|i| DeterministicRng::for_node(config.seed, i))
            .collect();
        let queues = (0..topology.num_directed_links())
            .map(|_| VecDeque::new())
            .collect();
        Ok(Network {
            topology,
            config,
            programs,
            rngs,
            statuses: vec![Status::Running; n],
            queues,
            queued_messages: 0,
            ledger: CostLedger::new(),
            metrics: Metrics::default(),
            round: 0,
            sink: Arc::new(NullSink),
            fault_plan: None,
            crashed: vec![false; n],
        })
    }

    /// Installs a trace sink receiving [`TraceEvent`]s.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink>) {
        self.sink = sink;
    }

    /// Installs a fault schedule, validating it against the topology. Faults
    /// injected by the plan surface as [`TraceEvent::Dropped`] and
    /// [`TraceEvent::NodeCrashed`] events in the trace sink.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> Result<(), NetworkError> {
        let num_nodes = self.topology.num_nodes();
        let num_links = self.topology.num_directed_links();
        if let Some(&(node, _)) = plan.crashes().iter().find(|&&(v, _)| v >= num_nodes) {
            return Err(NetworkError::CrashNodeOutOfRange { node, num_nodes });
        }
        if let Some(link) = plan.max_referenced_link().filter(|&l| l >= num_links) {
            return Err(NetworkError::OutageLinkOutOfRange { link, num_links });
        }
        self.fault_plan = Some(plan);
        Ok(())
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Whether `node` has crash-stopped under the installed fault plan.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed[node.index()]
    }

    /// The communication topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The network configuration.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Immutable access to the program of node `id`.
    pub fn program(&self, id: NodeId) -> &P {
        &self.programs[id.index()]
    }

    /// Mutable access to the program of node `id`.
    pub fn program_mut(&mut self, id: NodeId) -> &mut P {
        &mut self.programs[id.index()]
    }

    /// Iterates over `(node, program)` pairs.
    pub fn programs(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.programs
            .iter()
            .enumerate()
            .map(|(i, p)| (NodeId::new(i), p))
    }

    /// Consumes the network and returns the node programs, in node order.
    pub fn into_programs(self) -> Vec<P> {
        self.programs
    }

    /// The ledger of charged (non-simulated) rounds.
    pub fn ledger(&self) -> &CostLedger {
        &self.ledger
    }

    /// Charges `rounds` rounds of primitive `kind` to the execution.
    pub fn charge(&mut self, kind: PrimitiveKind, rounds: u64) {
        self.ledger.charge(kind, rounds);
    }

    /// Current round number (0 before the execution starts).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Runs the network until every node is done and no messages are in
    /// flight, or until `max_rounds` rounds have been simulated.
    ///
    /// Returns a [`RoundReport`]; `terminated` is `false` if the round limit
    /// was hit first.
    pub fn run(&mut self, max_rounds: u64) -> RoundReport {
        self.start();
        while self.round < max_rounds {
            if self.is_quiescent() {
                return self.report(true);
            }
            self.step();
        }
        let quiescent = self.is_quiescent();
        self.report(quiescent)
    }

    /// Calls `on_start` on every node and enqueues the produced messages.
    /// Calling it twice is a no-op after the first call via [`Network::run`],
    /// but it is exposed for callers that drive the network round by round.
    pub fn start(&mut self) {
        if self.round > 0 {
            return;
        }
        for i in 0..self.programs.len() {
            let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
            let mut events: Vec<TraceEvent> = Vec::new();
            let mut ctx = Context {
                id: NodeId::new(i),
                round: 0,
                topology: &self.topology,
                rng: &mut self.rngs[i],
                outbox: &mut outbox,
                events: &mut events,
            };
            self.programs[i].on_start(&mut ctx);
            self.record_events(events);
            self.enqueue_from(NodeId::new(i), outbox);
        }
    }

    /// Whether every node is done and all link queues are empty.
    pub fn is_quiescent(&self) -> bool {
        self.queued_messages == 0 && self.statuses.iter().all(|&s| s == Status::Done)
    }

    /// Executes one synchronous round: delivers up to the per-link bandwidth
    /// from each queue, then invokes `on_round` on every node.
    pub fn step(&mut self) {
        self.round += 1;
        let (inboxes, words_delivered) = self.deliver();

        // Phase 2: local computation and message submission.
        for (i, inbox) in inboxes.iter().enumerate() {
            if self.statuses[i] == Status::Done && inbox.is_empty() {
                continue;
            }
            let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
            let mut events: Vec<TraceEvent> = Vec::new();
            let mut ctx = Context {
                id: NodeId::new(i),
                round: self.round,
                topology: &self.topology,
                rng: &mut self.rngs[i],
                outbox: &mut outbox,
                events: &mut events,
            };
            let status = self.programs[i].on_round(&mut ctx, inbox);
            self.integrate_node_round(i, status, outbox, events);
        }

        self.sink.record(TraceEvent::RoundCompleted {
            round: self.round,
            words_delivered,
        });
    }

    /// Phase 1 of a round: delivers up to the per-link bandwidth from each
    /// queue. Returns the per-node inboxes (each ordered by `(src, dst)` link
    /// identifier, deterministically — the flat queue vector is laid out in
    /// that order) and the number of words delivered.
    fn deliver(&mut self) -> (Vec<Mailbox<P::Message>>, u64) {
        let n = self.programs.len();
        self.apply_crashes();
        let bandwidth = match self
            .fault_plan
            .as_ref()
            .and_then(|p| p.bandwidth_cap(self.round))
        {
            Some(cap) => u64::from(cap.min(self.config.bandwidth_words)),
            None => u64::from(self.config.bandwidth_words),
        };
        let mut inboxes: Vec<Mailbox<P::Message>> = vec![Vec::new(); n];
        // Nothing in flight: skip the link scan entirely (common on the
        // quiescence-detection tail, where nodes still compute but no
        // messages remain).
        if self.queued_messages == 0 {
            return (inboxes, 0);
        }
        let mut recv_words: Vec<u64> = vec![0; n];
        let mut words_delivered = 0u64;
        let mut popped = 0usize;
        let mut delivered = 0u64;
        for src in 0..n {
            let source = NodeId::new(src);
            let range = self.topology.link_range(source);
            let neighbors = self.topology.neighbors(source);
            for (offset, (queue, &dst)) in self.queues[range.clone()]
                .iter_mut()
                .zip(neighbors)
                .enumerate()
            {
                if queue.is_empty() {
                    continue;
                }
                let link = range.start + offset;
                // A crashed destination consumes nothing: its link drains in
                // one round (the receiver is gone, bandwidth is moot).
                if self.crashed[dst.index()] {
                    let (messages, words) = drain_queue(queue);
                    popped += messages as usize;
                    self.sink.record(TraceEvent::Dropped {
                        round: self.round,
                        link,
                        messages,
                        words,
                    });
                    continue;
                }
                // During an outage the link transmits nothing; queued
                // messages wait out the window rather than being lost.
                if self
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| p.link_down(self.round, link))
                {
                    continue;
                }
                // One content-addressed decision per (round, link): a lossy
                // round loses every message the link carries this round
                // (burst loss). Lost messages still consume bandwidth — they
                // were transmitted, then lost in flight.
                let lossy = self
                    .fault_plan
                    .as_ref()
                    .is_some_and(|p| p.drops(self.round, link));
                let mut lost_messages = 0u64;
                let mut lost_words = 0u64;
                let mut budget = bandwidth;
                while budget > 0 {
                    match queue.front() {
                        Some((_, words)) if u64::from(*words) <= budget => {
                            let (msg, words) = queue.pop_front().expect("front checked above");
                            popped += 1;
                            budget -= u64::from(words);
                            if lossy {
                                lost_messages += 1;
                                lost_words += u64::from(words);
                            } else {
                                delivered += 1;
                                words_delivered += u64::from(words);
                                recv_words[dst.index()] += u64::from(words);
                                inboxes[dst.index()].push((source, msg));
                            }
                        }
                        // A message wider than the remaining budget waits for
                        // the next round (no fragmentation), unless it is
                        // wider than the whole bandwidth, in which case it
                        // takes the full link for ceil(words / bandwidth)
                        // rounds; we model that by letting it through alone
                        // when the budget is fresh.
                        Some((_, words))
                            if u64::from(*words) > bandwidth && budget == bandwidth =>
                        {
                            let (msg, words) = queue.pop_front().expect("front checked above");
                            popped += 1;
                            if lossy {
                                lost_messages += 1;
                                lost_words += u64::from(words);
                            } else {
                                delivered += 1;
                                words_delivered += u64::from(words);
                                recv_words[dst.index()] += u64::from(words);
                                inboxes[dst.index()].push((source, msg));
                            }
                            budget = 0;
                        }
                        _ => break,
                    }
                }
                if lost_messages > 0 {
                    self.sink.record(TraceEvent::Dropped {
                        round: self.round,
                        link,
                        messages: lost_messages,
                        words: lost_words,
                    });
                }
            }
        }
        self.queued_messages -= popped;
        self.metrics.messages_delivered += delivered;
        for &w in &recv_words {
            self.metrics.max_node_recv_per_round = self.metrics.max_node_recv_per_round.max(w);
        }
        (inboxes, words_delivered)
    }

    /// Applies the fault plan's crash schedule for the current round: the
    /// crashing node computes nothing from this round on, its outgoing
    /// backlog is discarded and its status becomes [`Status::Done`] so the
    /// network can still reach quiescence. Runs on the main thread in both
    /// executors, in ascending node order (the plan keeps crashes sorted).
    fn apply_crashes(&mut self) {
        let Some(plan) = self.fault_plan.as_ref() else {
            return;
        };
        if plan.crashes().is_empty() {
            return;
        }
        let due: Vec<usize> = plan
            .crashes()
            .iter()
            .filter(|&&(_, round)| round == self.round)
            .map(|&(node, _)| node)
            .collect();
        for node in due {
            self.crashed[node] = true;
            self.statuses[node] = Status::Done;
            self.sink.record(TraceEvent::NodeCrashed {
                node: NodeId::new(node),
                round: self.round,
            });
            // Discard the crashed node's outgoing backlog: messages it
            // queued but had not yet transmitted die with it.
            let range = self.topology.link_range(NodeId::new(node));
            for (offset, queue) in self.queues[range.clone()].iter_mut().enumerate() {
                if queue.is_empty() {
                    continue;
                }
                let (messages, words) = drain_queue(queue);
                self.queued_messages -= messages as usize;
                self.sink.record(TraceEvent::Dropped {
                    round: self.round,
                    link: range.start + offset,
                    messages,
                    words,
                });
            }
        }
    }

    /// Records node-program-emitted trace events (buffered through
    /// [`Context::emit`]) into the sink.
    fn record_events(&self, events: Vec<TraceEvent>) {
        for event in events {
            self.sink.record(event);
        }
    }

    /// Applies the outcome of one node's `on_round` call: records the
    /// events the program emitted and the done-transition trace event,
    /// stores the new status and enqueues the produced messages. Both
    /// executors call this in ascending node order, which keeps traces and
    /// metrics identical between them.
    fn integrate_node_round(
        &mut self,
        i: usize,
        status: Status,
        outbox: Vec<(NodeId, P::Message)>,
        events: Vec<TraceEvent>,
    ) {
        self.record_events(events);
        if status == Status::Done && self.statuses[i] == Status::Running {
            self.sink.record(TraceEvent::NodeDone {
                node: NodeId::new(i),
                round: self.round,
            });
        }
        self.statuses[i] = status;
        self.enqueue_from(NodeId::new(i), outbox);
    }

    fn enqueue_from(&mut self, src: NodeId, messages: Vec<(NodeId, P::Message)>) {
        let mut sent_words = 0u64;
        for (dst, msg) in messages {
            let words = self.programs[src.index()].message_words(&msg).max(1);
            sent_words += u64::from(words);
            self.metrics.messages_sent += 1;
            self.metrics.words_sent += u64::from(words);
            let link = self
                .topology
                .link_index(src, dst)
                .expect("Context::send only accepts neighbouring destinations");
            let queue = &mut self.queues[link];
            queue.push_back((msg, words));
            self.queued_messages += 1;
            let queued: u64 = queue.iter().map(|(_, w)| u64::from(*w)).sum();
            self.metrics.max_link_queue = self.metrics.max_link_queue.max(queued);
        }
        self.metrics.max_node_send_per_round = self.metrics.max_node_send_per_round.max(sent_words);
    }

    fn report(&self, terminated: bool) -> RoundReport {
        RoundReport {
            simulated_rounds: self.round,
            charged_rounds: self.ledger.total(),
            metrics: self.metrics.clone(),
            terminated,
        }
    }
}

/// Empties a link queue, returning `(messages, words)` discarded.
fn drain_queue<M>(queue: &mut VecDeque<(M, u32)>) -> (u64, u64) {
    let messages = queue.len() as u64;
    let words = queue.iter().map(|(_, w)| u64::from(*w)).sum();
    queue.clear();
    (messages, words)
}

/// The deterministic multi-threaded round executor (feature `parallel`).
///
/// Node programs are stepped concurrently on `threads` OS threads (the crate
/// has no external dependencies, so the fan-out uses [`std::thread::scope`]
/// rather than rayon). Determinism is preserved by construction:
///
/// * each node already owns an independent [`DeterministicRng`] stream, so the
///   interleaving of node computations cannot perturb randomness;
/// * message delivery happens before any node computes, and submitted messages
///   only become visible in the next round, so intra-round compute order is
///   semantically irrelevant;
/// * per-node outboxes are collected and merged **in ascending `NodeId`
///   order**, so link queues, metrics and trace events are byte-identical to
///   the sequential executor's.
///
/// The regression test `tests/parallel_determinism.rs` asserts that
/// [`Network::run`] and [`Network::run_parallel`] produce identical traces,
/// round counts and listings.
#[cfg(feature = "parallel")]
impl<P> Network<P>
where
    P: NodeProgram + Send,
    P::Message: Send + Sync,
{
    /// Like [`Network::run`], but steps node programs on all available cores.
    pub fn run_parallel(&mut self, max_rounds: u64) -> RoundReport {
        self.run_parallel_with_threads(default_threads(), max_rounds)
    }

    /// Like [`Network::run_parallel`] with an explicit thread count.
    ///
    /// The thread count influences wall-clock time only, never results.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn run_parallel_with_threads(&mut self, threads: usize, max_rounds: u64) -> RoundReport {
        assert!(threads > 0, "need at least one executor thread");
        self.start_parallel(threads);
        while self.round < max_rounds {
            if self.is_quiescent() {
                return self.report(true);
            }
            self.step_parallel(threads);
        }
        let quiescent = self.is_quiescent();
        self.report(quiescent)
    }

    /// Parallel counterpart of [`Network::start`].
    pub fn start_parallel(&mut self, threads: usize) {
        if self.round > 0 {
            return;
        }
        let n = self.programs.len();
        let inboxes: Vec<Mailbox<P::Message>> = vec![Vec::new(); n];
        let outputs = Self::compute_round(
            &mut self.programs,
            &mut self.rngs,
            &self.statuses,
            &inboxes,
            &self.topology,
            0,
            threads,
            true,
        );
        for (i, _, outbox, events) in outputs {
            self.record_events(events);
            self.enqueue_from(NodeId::new(i), outbox);
        }
    }

    /// Parallel counterpart of [`Network::step`].
    pub fn step_parallel(&mut self, threads: usize) {
        self.round += 1;
        let (inboxes, words_delivered) = self.deliver();
        let outputs = Self::compute_round(
            &mut self.programs,
            &mut self.rngs,
            &self.statuses,
            &inboxes,
            &self.topology,
            self.round,
            threads,
            false,
        );
        for (i, status, outbox, events) in outputs {
            self.integrate_node_round(i, status, outbox, events);
        }
        self.sink.record(TraceEvent::RoundCompleted {
            round: self.round,
            words_delivered,
        });
    }

    /// Steps every active node on a pool of scoped threads, each thread owning
    /// a contiguous chunk of nodes. Returns `(node, status, outbox)` triples
    /// in ascending node order.
    #[allow(clippy::too_many_arguments)]
    fn compute_round<'a>(
        programs: &'a mut [P],
        rngs: &'a mut [DeterministicRng],
        statuses: &'a [Status],
        inboxes: &'a [Mailbox<P::Message>],
        topology: &'a Topology,
        round: u64,
        threads: usize,
        starting: bool,
    ) -> Vec<NodeOutcome<P::Message>> {
        let n = programs.len();
        if n == 0 {
            return Vec::new();
        }
        let chunk = n.div_ceil(threads.min(n));
        let chunk_outputs: Vec<Vec<NodeOutcome<P::Message>>> = std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let programs = programs.chunks_mut(chunk);
            let rngs = rngs.chunks_mut(chunk);
            let statuses = statuses.chunks(chunk);
            let inboxes = inboxes.chunks(chunk);
            for (ci, (((programs, rngs), statuses), inboxes)) in
                programs.zip(rngs).zip(statuses).zip(inboxes).enumerate()
            {
                handles.push(scope.spawn(move || {
                    let base = ci * chunk;
                    let mut out = Vec::with_capacity(programs.len());
                    for (j, program) in programs.iter_mut().enumerate() {
                        let inbox = &inboxes[j];
                        if !starting && statuses[j] == Status::Done && inbox.is_empty() {
                            continue;
                        }
                        let mut outbox = Vec::new();
                        let mut events = Vec::new();
                        let mut ctx = Context {
                            id: NodeId::new(base + j),
                            round,
                            topology,
                            rng: &mut rngs[j],
                            outbox: &mut outbox,
                            events: &mut events,
                        };
                        let status = if starting {
                            program.on_start(&mut ctx);
                            statuses[j]
                        } else {
                            program.on_round(&mut ctx, inbox)
                        };
                        out.push((base + j, status, outbox, events));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("node program panicked"))
                .collect()
        });
        chunk_outputs.into_iter().flatten().collect()
    }
}

/// Number of worker threads [`Network::run_parallel`] uses: the machine's
/// available parallelism, or 1 if it cannot be determined.
#[cfg(feature = "parallel")]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Floods a single token from node 0 along a path; used to check that
    /// bandwidth limits and termination behave as expected.
    struct Flood {
        seen: bool,
    }

    impl NodeProgram for Flood {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.id().index() == 0 {
                self.seen = true;
                ctx.broadcast(1);
            }
        }

        fn on_round(&mut self, ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
            if !incoming.is_empty() && !self.seen {
                self.seen = true;
                ctx.broadcast(1);
            }
            Status::Done
        }
    }

    #[test]
    fn flood_reaches_everyone_on_a_path() {
        let topo = Topology::path(6);
        let mut net = Network::new(topo, NetworkConfig::default(), |_| Flood { seen: false });
        let report = net.run(100);
        assert!(report.terminated);
        // Token must travel 5 hops.
        assert!(report.simulated_rounds >= 5);
        assert!(net.programs().all(|(_, p)| p.seen));
    }

    /// Node 0 sends `k` messages to node 1 over a single edge; with bandwidth 1
    /// this must take at least `k` rounds.
    struct Burst {
        k: u64,
        received: u64,
    }

    impl NodeProgram for Burst {
        type Message = u64;

        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            if ctx.id().index() == 0 {
                for i in 0..self.k {
                    ctx.send(NodeId::new(1), i);
                }
            }
        }

        fn on_round(&mut self, _ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
            self.received += incoming.len() as u64;
            Status::Done
        }
    }

    #[test]
    fn bandwidth_limits_throughput() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let k = 17;
        let mut net = Network::new(topo, NetworkConfig::default(), |_| Burst { k, received: 0 });
        let report = net.run(1000);
        assert!(report.terminated);
        assert_eq!(net.program(NodeId::new(1)).received, k);
        assert!(
            report.simulated_rounds >= k,
            "rounds {} < k {}",
            report.simulated_rounds,
            k
        );
        assert_eq!(report.metrics.messages_sent, k);
    }

    #[test]
    fn wider_bandwidth_is_faster() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let k = 32;
        let config = NetworkConfig::default().with_bandwidth(8);
        let mut net = Network::new(topo, config, |_| Burst { k, received: 0 });
        let report = net.run(1000);
        assert!(report.terminated);
        assert!(report.simulated_rounds <= k / 8 + 2);
    }

    #[test]
    fn round_limit_reports_non_termination() {
        let topo = Topology::from_edges(2, &[(0, 1)]);
        let mut net = Network::new(topo, NetworkConfig::default(), |_| Burst {
            k: 100,
            received: 0,
        });
        let report = net.run(3);
        assert!(!report.terminated);
        assert_eq!(report.simulated_rounds, 3);
    }

    #[test]
    fn charges_show_up_in_report() {
        let topo = Topology::path(3);
        let mut net = Network::new(topo, NetworkConfig::default(), |_| Flood { seen: false });
        net.charge(PrimitiveKind::ExpanderDecomposition, 42);
        let report = net.run(10);
        assert_eq!(report.charged_rounds, 42);
        assert_eq!(report.total_rounds(), report.simulated_rounds + 42);
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn sending_to_non_neighbour_panics() {
        struct Bad;
        impl NodeProgram for Bad {
            type Message = u64;
            fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
                if ctx.id().index() == 0 {
                    ctx.send(NodeId::new(2), 1);
                }
            }
            fn on_round(&mut self, _: &mut Context<'_, u64>, _: &[(NodeId, u64)]) -> Status {
                Status::Done
            }
        }
        let topo = Topology::path(3);
        let mut net = Network::new(topo, NetworkConfig::default(), |_| Bad);
        net.run(2);
    }

    #[test]
    #[should_panic(expected = "at least one word")]
    fn zero_bandwidth_rejected() {
        let _ = NetworkConfig::default().with_bandwidth(0);
    }
}
