//! The CONGESTED CLIQUE model: complete communication topology plus the
//! analytic routing helpers used by the sparsity-aware listing algorithm.

use crate::network::{Network, NetworkConfig};
use crate::node::{NodeId, NodeProgram};
use crate::topology::Topology;

/// Helper for building and reasoning about CONGESTED CLIQUE executions.
///
/// In the CONGESTED CLIQUE model the `n` nodes communicate over the complete
/// graph: in every round each ordered pair of nodes may exchange one
/// `O(log n)`-bit message, so each node sends and receives up to `n - 1` words
/// per round.
#[derive(Clone, Copy, Debug)]
pub struct CongestedClique {
    n: usize,
}

impl CongestedClique {
    /// Creates a helper for an `n`-node congested clique.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a congested clique needs at least two nodes");
        CongestedClique { n }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Per-round send (and receive) capacity of a single node, in words.
    pub fn node_bandwidth(&self) -> u64 {
        (self.n - 1) as u64
    }

    /// Builds a message-level network over the complete topology.
    pub fn network<P: NodeProgram>(
        &self,
        config: NetworkConfig,
        factory: impl FnMut(NodeId) -> P,
    ) -> Network<P> {
        Network::new(Topology::complete(self.n), config, factory)
    }

    /// Rounds needed to realise an arbitrary communication pattern in which
    /// every node sends at most `max_send` words and receives at most
    /// `max_recv` words, using Lenzen's routing theorem: `O(1)` rounds per
    /// `n - 1` words of per-node load (we charge the exact ceiling, times a
    /// small constant of 2 for the routing overhead).
    pub fn routing_rounds(&self, max_send: u64, max_recv: u64) -> u64 {
        let load = max_send.max(max_recv);
        2 * load.div_ceil(self.node_bandwidth()).max(1)
    }

    /// Rounds needed for every node to broadcast `words` words to all other
    /// nodes (each broadcast word consumes one unit of send capacity per
    /// recipient).
    pub fn broadcast_rounds(&self, words: u64) -> u64 {
        let total = words.saturating_mul((self.n - 1) as u64);
        total.div_ceil(self.node_bandwidth()).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Context, Status};

    #[test]
    fn bandwidth_is_n_minus_one() {
        let cc = CongestedClique::new(10);
        assert_eq!(cc.node_bandwidth(), 9);
        assert_eq!(cc.num_nodes(), 10);
    }

    #[test]
    fn routing_rounds_scale_with_load() {
        let cc = CongestedClique::new(101);
        assert_eq!(cc.routing_rounds(0, 0), 2);
        assert_eq!(cc.routing_rounds(100, 50), 2);
        assert_eq!(cc.routing_rounds(1000, 100), 2 * 10);
        assert_eq!(cc.routing_rounds(100, 1000), 2 * 10);
    }

    #[test]
    fn broadcast_rounds_equal_words() {
        let cc = CongestedClique::new(51);
        // Broadcasting w words to 50 recipients costs w * 50 send slots with
        // capacity 50 per round.
        assert_eq!(cc.broadcast_rounds(1), 1);
        assert_eq!(cc.broadcast_rounds(7), 7);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn tiny_clique_rejected() {
        CongestedClique::new(1);
    }

    /// All-to-all exchange actually runs on the complete topology.
    struct Gather {
        got: usize,
    }

    impl NodeProgram for Gather {
        type Message = u64;
        fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
            let me = ctx.id().index() as u64;
            ctx.broadcast(me);
        }
        fn on_round(&mut self, _ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
            self.got += incoming.len();
            Status::Done
        }
    }

    #[test]
    fn all_to_all_in_one_round() {
        let cc = CongestedClique::new(8);
        let mut net = cc.network(NetworkConfig::default(), |_| Gather { got: 0 });
        let report = net.run(10);
        assert!(report.terminated);
        assert!(report.simulated_rounds <= 2);
        assert!(net.programs().all(|(_, p)| p.got == 7));
    }
}
