//! Node identities, node programs and the per-round execution context.

use crate::rng::DeterministicRng;
use crate::topology::Topology;
use crate::trace::TraceEvent;
use std::fmt;

/// Identifier of a node in the communication graph.
///
/// Node identifiers are dense indices `0..n`; the simulator, the graph
/// substrate and the algorithms all share this numbering.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// Creates a node identifier from a dense index.
    pub fn new(index: usize) -> Self {
        NodeId(index as u32)
    }

    /// Returns the dense index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::new(value)
    }
}

/// Outcome of a node's round handler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Status {
    /// The node wants to keep participating in subsequent rounds.
    Running,
    /// The node has produced its output. It still forwards queued messages,
    /// and may be woken up again by incoming messages.
    Done,
}

/// A distributed algorithm, from the point of view of a single node.
///
/// One instance of the program is created per node. The simulator calls
/// [`NodeProgram::on_start`] once before the first round and then
/// [`NodeProgram::on_round`] once per synchronous round with all messages that
/// were delivered to the node in that round.
pub trait NodeProgram {
    /// Message type exchanged by the program. One message occupies
    /// [`crate::WORD_BITS`] bits, i.e. one CONGEST word, unless the program
    /// overrides [`NodeProgram::message_words`].
    type Message: Clone;

    /// Called once before round 1. The typical use is seeding the first wave
    /// of messages.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        let _ = ctx;
    }

    /// Called once per round with the messages delivered this round.
    ///
    /// Returning [`Status::Done`] signals that the node has locally finished;
    /// the execution stops once every node is done and no messages are in
    /// flight.
    fn on_round(
        &mut self,
        ctx: &mut Context<'_, Self::Message>,
        incoming: &[(NodeId, Self::Message)],
    ) -> Status;

    /// Number of CONGEST words a message occupies on the wire.
    ///
    /// Defaults to 1. Programs whose messages carry more than `O(log n)` bits
    /// (for example a full edge plus a tag) should return the appropriate
    /// width so that the bandwidth accounting stays honest.
    fn message_words(&self, _message: &Self::Message) -> u32 {
        1
    }
}

/// Per-round execution context handed to a [`NodeProgram`].
///
/// The context exposes the node's identity, its neighbourhood in the
/// communication topology, a deterministic per-node random number generator
/// and the outbox used to submit messages for delivery.
pub struct Context<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) round: u64,
    pub(crate) topology: &'a Topology,
    pub(crate) rng: &'a mut DeterministicRng,
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    /// Trace events emitted by the node program this round. Buffered like
    /// the outbox and recorded by the network after the node's round, in
    /// ascending node order — so program-emitted events (e.g. reliable-
    /// transport retransmissions) land in the trace sink deterministically
    /// even when node rounds run on worker threads.
    pub(crate) events: &'a mut Vec<TraceEvent>,
}

impl<'a, M: Clone> Context<'a, M> {
    /// Identity of the executing node.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of nodes in the communication graph.
    pub fn num_nodes(&self) -> usize {
        self.topology.num_nodes()
    }

    /// Current round number (0 during [`NodeProgram::on_start`], then 1, 2, …).
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Neighbours of the executing node in the communication topology.
    pub fn neighbors(&self) -> &[NodeId] {
        self.topology.neighbors(self.id)
    }

    /// Degree of the executing node in the communication topology.
    pub fn degree(&self) -> usize {
        self.topology.degree(self.id)
    }

    /// Deterministic random number generator private to this node.
    pub fn rng(&mut self) -> &mut DeterministicRng {
        self.rng
    }

    /// Queues `message` for delivery to `to`.
    ///
    /// The destination must be a neighbour in the communication topology
    /// (every node, in the CONGESTED CLIQUE). Messages are delivered in FIFO
    /// order per link, as fast as the per-link bandwidth allows.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not adjacent to the sender in the topology.
    pub fn send(&mut self, to: NodeId, message: M) {
        assert!(
            self.topology.are_adjacent(self.id, to),
            "node {} attempted to send to non-neighbour {}",
            self.id,
            to
        );
        self.outbox.push((to, message));
    }

    /// Queues `message` for delivery to every neighbour.
    pub fn broadcast(&mut self, message: M) {
        let neighbors: Vec<NodeId> = self.topology.neighbors(self.id).to_vec();
        for v in neighbors {
            self.outbox.push((v, message.clone()));
        }
    }

    /// Emits a trace event from the node program (e.g.
    /// [`TraceEvent::Retransmit`] from the reliable transport). Events are
    /// buffered with the round's outbox and recorded by the network in
    /// ascending node order, so traces stay byte-identical between the
    /// sequential and parallel executors.
    pub fn emit(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(17);
        assert_eq!(id.index(), 17);
        assert_eq!(format!("{id}"), "17");
        assert_eq!(format!("{id:?}"), "v17");
        assert_eq!(NodeId::from(17usize), id);
    }

    #[test]
    fn status_eq() {
        assert_ne!(Status::Running, Status::Done);
    }
}
