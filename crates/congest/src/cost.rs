//! Round accounting for black-box primitives with proven round bounds.
//!
//! The clique-listing algorithm uses two primitives whose distributed
//! implementations are taken as black boxes by the paper:
//!
//! * the expander decomposition of Chang, Pettie and Zhang (Theorem 2.3),
//!   which runs in `~O(n^{1-δ})` rounds, and
//! * intra-cluster routing in almost-mixing time (Theorem 2.4), which delivers
//!   any communication pattern where every cluster node sends and receives at
//!   most `O(n^δ · 2^{O(√log n)})` messages in `~O(2^{O(√log n)})` rounds.
//!
//! Re-deriving those constructions at message fidelity is out of scope for the
//! reproduction (see `DESIGN.md` §2); instead the caller performs the data
//! movement and charges the ledger with the round cost the corresponding
//! theorem guarantees for the observed load. The polylogarithmic factor hidden
//! in the `~O` notation is configurable via [`ChargePolicy`] so that the shape
//! of the measured curves can be shown to be robust to that choice.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which black-box primitive a charge corresponds to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrimitiveKind {
    /// Expander decomposition construction (Theorem 2.3): `~O(n^{1-δ})` rounds.
    ExpanderDecomposition,
    /// Intra-cluster routing (Theorem 2.4): rounds proportional to
    /// `max_load / cluster_bandwidth`, up to polylog factors.
    IntraClusterRouting,
    /// Intra-cluster identifier assignment (Lemma 2.5): `O(polylog n)` rounds.
    ClusterIdAssignment,
    /// A direct broadcast over graph edges accounted analytically (used for
    /// phases whose load is uniform and therefore not worth simulating
    /// message-by-message).
    DirectExchange,
    /// Acknowledgement and retransmission overhead of the reliable transport
    /// ([`crate::reliable`]) — the extra words a lossy link costs on top of
    /// the fault-free schedule.
    ReliableTransport,
}

impl PrimitiveKind {
    /// Human-readable name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            PrimitiveKind::ExpanderDecomposition => "expander-decomposition",
            PrimitiveKind::IntraClusterRouting => "intra-cluster-routing",
            PrimitiveKind::ClusterIdAssignment => "cluster-id-assignment",
            PrimitiveKind::DirectExchange => "direct-exchange",
            PrimitiveKind::ReliableTransport => "reliable-transport",
        }
    }
}

/// Policy translating per-node loads into charged rounds.
///
/// The defaults follow the statements of the theorems with the
/// polylogarithmic factor instantiated as `log2(n)^polylog_exponent`.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ChargePolicy {
    /// Exponent of the `log2(n)` factor applied to charged primitives
    /// (`0` disables the polylog factor entirely).
    pub polylog_exponent: u32,
    /// If true, the `2^{O(√log n)}` factor of Theorem 2.4 is also applied to
    /// routing charges. The paper argues (footnote 6) that this factor can be
    /// removed for the final complexities, so it defaults to `false`.
    pub apply_subpolynomial_factor: bool,
}

impl Default for ChargePolicy {
    fn default() -> Self {
        ChargePolicy {
            polylog_exponent: 1,
            apply_subpolynomial_factor: false,
        }
    }
}

impl ChargePolicy {
    /// A policy with no hidden factors at all: charges exactly
    /// `ceil(load / bandwidth)` rounds. Useful for ablations.
    pub fn bare() -> Self {
        ChargePolicy {
            polylog_exponent: 0,
            apply_subpolynomial_factor: false,
        }
    }

    /// The polylogarithmic factor for an `n`-node graph under this policy.
    pub fn polylog_factor(&self, n: usize) -> u64 {
        if self.polylog_exponent == 0 {
            return 1;
        }
        let log = (n.max(2) as f64).log2().ceil() as u64;
        log.saturating_pow(self.polylog_exponent).max(1)
    }

    /// The `2^{O(√log n)}` factor (with the constant in the exponent set to 1).
    pub fn subpolynomial_factor(&self, n: usize) -> u64 {
        if !self.apply_subpolynomial_factor {
            return 1;
        }
        let log = (n.max(2) as f64).log2();
        2f64.powf(log.sqrt()).ceil() as u64
    }

    /// Rounds charged for constructing a δ-expander decomposition on an
    /// `n`-node graph (Theorem 2.3): `~O(n^{1-δ})`.
    pub fn decomposition_rounds(&self, n: usize, delta: f64) -> u64 {
        let base = (n.max(2) as f64).powf(1.0 - delta).ceil() as u64;
        base.max(1) * self.polylog_factor(n)
    }

    /// Rounds charged for routing inside a cluster whose per-node bandwidth is
    /// `bandwidth` words per round, when the maximum number of words any node
    /// must send or receive is `max_load` (Theorem 2.4).
    pub fn routing_rounds(&self, n: usize, max_load: u64, bandwidth: u64) -> u64 {
        let bandwidth = bandwidth.max(1);
        let base = max_load.div_ceil(bandwidth).max(1);
        base * self.polylog_factor(n) * self.subpolynomial_factor(n)
    }

    /// Rounds charged for the intra-cluster ID assignment of Lemma 2.5.
    pub fn id_assignment_rounds(&self, n: usize) -> u64 {
        self.polylog_factor(n).max(1)
    }

    /// Rounds charged for a direct exchange over graph edges where every node
    /// sends and receives at most `max_load` words and each incident edge can
    /// carry one word per round: `ceil(max_load / min_degree_used)` — callers
    /// pass the relevant per-node bandwidth.
    pub fn direct_exchange_rounds(&self, max_load: u64, per_round_capacity: u64) -> u64 {
        max_load.div_ceil(per_round_capacity.max(1)).max(1)
    }
}

/// Accumulates charged rounds, broken down by primitive.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CostLedger {
    charges: BTreeMap<PrimitiveKind, u64>,
    total: u64,
}

impl CostLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        CostLedger::default()
    }

    /// Charges `rounds` rounds to `kind`.
    pub fn charge(&mut self, kind: PrimitiveKind, rounds: u64) {
        *self.charges.entry(kind).or_insert(0) += rounds;
        self.total += rounds;
    }

    /// Total charged rounds.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rounds charged to a particular primitive.
    pub fn for_kind(&self, kind: PrimitiveKind) -> u64 {
        self.charges.get(&kind).copied().unwrap_or(0)
    }

    /// Iterates over `(primitive, rounds)` pairs in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (PrimitiveKind, u64)> + '_ {
        self.charges.iter().map(|(&k, &v)| (k, v))
    }

    /// Merges another ledger into this one.
    pub fn absorb(&mut self, other: &CostLedger) {
        for (kind, rounds) in other.iter() {
            self.charge(kind, rounds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_has_polylog() {
        let p = ChargePolicy::default();
        assert_eq!(p.polylog_factor(1024), 10);
        assert_eq!(p.subpolynomial_factor(1024), 1);
    }

    #[test]
    fn bare_policy_is_exact() {
        let p = ChargePolicy::bare();
        assert_eq!(p.routing_rounds(1 << 20, 100, 10), 10);
        assert_eq!(p.routing_rounds(1 << 20, 101, 10), 11);
        assert_eq!(p.routing_rounds(1 << 20, 0, 10), 1);
    }

    #[test]
    fn decomposition_rounds_scale_with_delta() {
        let p = ChargePolicy::bare();
        let loose = p.decomposition_rounds(10_000, 0.25);
        let tight = p.decomposition_rounds(10_000, 0.75);
        assert!(loose > tight);
        assert_eq!(tight, 10); // 10000^{0.25} = 10
    }

    #[test]
    fn ledger_accumulates() {
        let mut ledger = CostLedger::new();
        ledger.charge(PrimitiveKind::IntraClusterRouting, 5);
        ledger.charge(PrimitiveKind::IntraClusterRouting, 7);
        ledger.charge(PrimitiveKind::ExpanderDecomposition, 3);
        assert_eq!(ledger.total(), 15);
        assert_eq!(ledger.for_kind(PrimitiveKind::IntraClusterRouting), 12);
        assert_eq!(ledger.for_kind(PrimitiveKind::ClusterIdAssignment), 0);

        let mut other = CostLedger::new();
        other.charge(PrimitiveKind::ClusterIdAssignment, 2);
        ledger.absorb(&other);
        assert_eq!(ledger.total(), 17);
        assert_eq!(ledger.iter().count(), 3);
    }

    #[test]
    fn primitive_names_are_distinct() {
        let kinds = [
            PrimitiveKind::ExpanderDecomposition,
            PrimitiveKind::IntraClusterRouting,
            PrimitiveKind::ClusterIdAssignment,
            PrimitiveKind::DirectExchange,
            PrimitiveKind::ReliableTransport,
        ];
        let names: std::collections::BTreeSet<_> = kinds.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), kinds.len());
    }
}
