//! Lightweight execution tracing.
//!
//! Traces are optional: the default sink discards events. Benchmarks and the
//! experiment harness install a collecting sink to report per-phase round
//! budgets.

use crate::node::NodeId;
use std::sync::{Arc, Mutex};

/// An event emitted by the simulator or by an algorithm phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A synchronous round completed; the payload is the number of words
    /// delivered during the round.
    RoundCompleted {
        /// Round number (1-based).
        round: u64,
        /// Words delivered in this round.
        words_delivered: u64,
    },
    /// A node finished its local computation.
    NodeDone {
        /// The node that finished.
        node: NodeId,
        /// Round in which it finished.
        round: u64,
    },
    /// An algorithm-defined phase boundary (e.g. "ARB-LIST iteration 3").
    Phase {
        /// Phase label.
        label: String,
        /// Total rounds elapsed (simulated + charged) when the phase started.
        rounds_so_far: u64,
    },
    /// The fault plan dropped in-flight messages on a link: a lossy
    /// (round, link) decision, a crashed destination, or a crashed source's
    /// discarded backlog.
    Dropped {
        /// Round in which the messages were lost.
        round: u64,
        /// Directed link index ([`crate::Topology::link_index`]) they were
        /// crossing.
        link: usize,
        /// Number of messages lost.
        messages: u64,
        /// Number of words lost.
        words: u64,
    },
    /// A reliable-transport endpoint re-sent an unacknowledged message.
    /// Emitted through [`crate::Context::emit`]; the network records it
    /// after the node's round, in ascending node order.
    Retransmit {
        /// The retransmitting node.
        node: NodeId,
        /// Round of the retransmission.
        round: u64,
        /// Sequence number of the re-sent message.
        seq: u64,
    },
    /// A node crash-stopped according to the fault plan.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Round from which it no longer participates.
        round: u64,
    },
}

/// Destination of trace events.
pub trait TraceSink: Send + Sync {
    /// Receives one event.
    fn record(&self, event: TraceEvent);
}

/// A sink that drops all events (the default).
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

/// A sink that stores all events in memory, for tests and experiments.
#[derive(Clone, Debug, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<TraceEvent>>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// Returns a snapshot of the recorded events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace sink poisoned").clone()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace sink poisoned").len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace sink poisoned").push(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(TraceEvent::Phase {
            label: "start".into(),
            rounds_so_far: 0,
        });
        sink.record(TraceEvent::RoundCompleted {
            round: 1,
            words_delivered: 10,
        });
        assert_eq!(sink.len(), 2);
        assert_eq!(
            sink.events()[0],
            TraceEvent::Phase {
                label: "start".into(),
                rounds_so_far: 0
            }
        );
    }

    #[test]
    fn null_sink_discards() {
        let sink = NullSink;
        sink.record(TraceEvent::NodeDone {
            node: NodeId::new(0),
            round: 3,
        });
    }
}
