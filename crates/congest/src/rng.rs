//! Deterministic pseudo-randomness for reproducible executions.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator owned by a single node.
///
/// Each node receives its own generator seeded from the network seed and the
/// node identifier, so executions are reproducible regardless of scheduling
/// and independent of the behaviour of other nodes.
#[derive(Clone, Debug)]
pub struct DeterministicRng {
    inner: SmallRng,
}

impl DeterministicRng {
    /// Creates a generator for node `node_index` under the global `seed`.
    pub fn for_node(seed: u64, node_index: usize) -> Self {
        // SplitMix-style mixing so that nearby (seed, node) pairs do not
        // produce correlated streams.
        let mut z = seed ^ (node_index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        DeterministicRng {
            inner: SmallRng::seed_from_u64(z),
        }
    }

    /// Creates a generator from a raw seed (used by non-node components such
    /// as workload generators).
    pub fn from_seed(seed: u64) -> Self {
        DeterministicRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a generator for a **content-addressed decision**: a pure
    /// function of `(seed, round, index)` with no sequential state, so the
    /// decision for one coordinate is independent of how many other
    /// coordinates were sampled and in which order. The fault layer keys its
    /// per-(round, link) drop decisions through this, which is what keeps
    /// injected faults identical across executors and thread grants.
    pub fn for_decision(seed: u64, round: u64, index: usize) -> Self {
        let round_seed = seed ^ round.wrapping_add(1).wrapping_mul(0xD1B5_4A32_D192_ED03);
        DeterministicRng::for_node(round_seed, index)
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        self.inner.gen_range(0..bound)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn coin(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }
}

impl RngCore for DeterministicRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_node() {
        let mut a = DeterministicRng::for_node(7, 3);
        let mut b = DeterministicRng::for_node(7, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_nodes_diverge() {
        let mut a = DeterministicRng::for_node(7, 3);
        let mut b = DeterministicRng::for_node(7, 4);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should not be identical");
    }

    #[test]
    fn decision_streams_are_stateless_and_coordinate_sensitive() {
        assert_eq!(
            DeterministicRng::for_decision(7, 3, 5).next_u64(),
            DeterministicRng::for_decision(7, 3, 5).next_u64(),
        );
        let base = DeterministicRng::for_decision(7, 3, 5).next_u64();
        assert_ne!(base, DeterministicRng::for_decision(8, 3, 5).next_u64());
        assert_ne!(base, DeterministicRng::for_decision(7, 4, 5).next_u64());
        assert_ne!(base, DeterministicRng::for_decision(7, 3, 6).next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = DeterministicRng::from_seed(1);
        for _ in 0..1000 {
            assert!(rng.below(10) < 10);
        }
    }

    #[test]
    fn coin_extremes() {
        let mut rng = DeterministicRng::from_seed(2);
        assert!(!rng.coin(0.0));
        assert!(rng.coin(1.0));
        assert!(rng.coin(2.0));
    }

    #[test]
    #[should_panic(expected = "meaningless")]
    fn below_zero_panics() {
        DeterministicRng::from_seed(3).below(0);
    }
}
