//! Communication topologies for the simulator.

use crate::node::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// A rejected topology construction.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopologyError {
    /// An edge endpoint does not fit in the declared node count.
    EdgeOutOfRange {
        /// First endpoint of the offending edge.
        u: usize,
        /// Second endpoint of the offending edge.
        v: usize,
        /// The declared node count.
        n: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::EdgeOutOfRange { u, v, n } => {
                write!(f, "edge ({u}, {v}) out of range for n = {n}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// An undirected communication topology over `n` nodes.
///
/// In the CONGEST model the topology coincides with the input graph; in the
/// CONGESTED CLIQUE it is the complete graph. The topology is immutable for
/// the lifetime of an execution.
#[derive(Clone, Debug)]
pub struct Topology {
    adjacency: Vec<Vec<NodeId>>,
    /// Sorted neighbour sets used for O(log deg) adjacency queries.
    sorted: Vec<Vec<u32>>,
    /// Prefix sums of degrees: the directed link from `u` to its `k`-th
    /// sorted neighbour has the dense index `link_offsets[u] + k`. Link
    /// indices are therefore ordered lexicographically by `(src, dst)`, which
    /// is what keeps flat per-link queues byte-compatible with the former
    /// `BTreeMap<(src, dst), _>` iteration order.
    link_offsets: Vec<usize>,
    num_edges: usize,
    complete: bool,
}

/// Computes the directed-link prefix sums of a sorted adjacency structure.
fn link_offsets_of(sorted: &[Vec<u32>]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(sorted.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for row in sorted {
        total += row.len();
        offsets.push(total);
    }
    offsets
}

impl Topology {
    /// Builds a topology from an undirected edge list over `n` nodes.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`; use [`Topology::try_from_edges`] for
    /// a typed rejection.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        Topology::try_from_edges(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a topology from an undirected edge list over `n` nodes,
    /// returning a typed [`TopologyError`] instead of panicking on an
    /// out-of-range endpoint.
    ///
    /// Duplicate edges and self-loops are ignored.
    pub fn try_from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Self, TopologyError> {
        let mut sets: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); n];
        for &(u, v) in edges {
            if u >= n || v >= n {
                return Err(TopologyError::EdgeOutOfRange { u, v, n });
            }
            if u == v {
                continue;
            }
            sets[u].insert(v as u32);
            sets[v].insert(u as u32);
        }
        let mut num_edges = 0;
        let mut adjacency = Vec::with_capacity(n);
        let mut sorted = Vec::with_capacity(n);
        for set in sets {
            num_edges += set.len();
            adjacency.push(set.iter().map(|&v| NodeId(v)).collect());
            sorted.push(set.into_iter().collect());
        }
        let link_offsets = link_offsets_of(&sorted);
        Ok(Topology {
            adjacency,
            sorted,
            link_offsets,
            num_edges: num_edges / 2,
            complete: false,
        })
    }

    /// Builds a topology from an iterator of undirected `u32` edge endpoints,
    /// the representation the graph substrate hands out.
    ///
    /// Duplicate edges and self-loops are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`; use [`Topology::try_from_edge_list`]
    /// for a typed rejection.
    pub fn from_edge_list(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        Topology::try_from_edge_list(n, edges).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds a topology from an iterator of undirected `u32` edge
    /// endpoints, returning a typed [`TopologyError`] instead of panicking
    /// on an out-of-range endpoint.
    pub fn try_from_edge_list(
        n: usize,
        edges: impl IntoIterator<Item = (u32, u32)>,
    ) -> Result<Self, TopologyError> {
        let edges: Vec<(usize, usize)> = edges
            .into_iter()
            .map(|(u, v)| (u as usize, v as usize))
            .collect();
        Topology::try_from_edges(n, &edges)
    }

    /// Builds the complete topology on `n` nodes (CONGESTED CLIQUE).
    pub fn complete(n: usize) -> Self {
        let mut adjacency = Vec::with_capacity(n);
        let mut sorted = Vec::with_capacity(n);
        for u in 0..n {
            let mut row = Vec::with_capacity(n.saturating_sub(1));
            let mut srow = Vec::with_capacity(n.saturating_sub(1));
            for v in 0..n {
                if v != u {
                    row.push(NodeId(v as u32));
                    srow.push(v as u32);
                }
            }
            adjacency.push(row);
            sorted.push(srow);
        }
        let link_offsets = link_offsets_of(&sorted);
        Topology {
            adjacency,
            sorted,
            link_offsets,
            num_edges: n * n.saturating_sub(1) / 2,
            complete: true,
        }
    }

    /// Builds a simple path `0 - 1 - … - (n-1)`; handy in tests and examples.
    pub fn path(n: usize) -> Self {
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
        Topology::from_edges(n, &edges)
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.adjacency.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether this is the complete topology.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Neighbours of `v`, sorted by identifier.
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.adjacency[v.index()]
    }

    /// Degree of `v`.
    pub fn degree(&self, v: NodeId) -> usize {
        self.adjacency[v.index()].len()
    }

    /// Whether `u` and `v` are adjacent.
    pub fn are_adjacent(&self, u: NodeId, v: NodeId) -> bool {
        if self.complete {
            return u != v && u.index() < self.num_nodes() && v.index() < self.num_nodes();
        }
        self.sorted[u.index()].binary_search(&(v.0)).is_ok()
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency.iter().enumerate().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |v| (u as u32) < v.0)
                .map(move |&v| (NodeId(u as u32), v))
        })
    }

    /// Maximum degree over all nodes (0 for the empty topology).
    pub fn max_degree(&self) -> usize {
        self.adjacency.iter().map(Vec::len).max().unwrap_or(0)
    }

    /// Number of directed links (`2m`): every undirected edge carries one
    /// independent FIFO queue per direction.
    pub fn num_directed_links(&self) -> usize {
        *self.link_offsets.last().unwrap_or(&0)
    }

    /// The dense index of the directed link `src -> dst`, or `None` if the
    /// two nodes are not adjacent. Link indices are lexicographic in
    /// `(src, dst)` and contiguous per source (see [`Topology::link_range`]).
    ///
    /// Complete topologies resolve the index arithmetically; general
    /// topologies binary-search the source's sorted neighbour row.
    pub fn link_index(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        if self.complete {
            if !self.are_adjacent(src, dst) {
                return None;
            }
            let rank = dst.index() - usize::from(dst.index() > src.index());
            return Some(self.link_offsets[src.index()] + rank);
        }
        self.sorted[src.index()]
            .binary_search(&dst.0)
            .ok()
            .map(|rank| self.link_offsets[src.index()] + rank)
    }

    /// The contiguous range of link indices whose source is `src`; the `k`-th
    /// index in the range targets the `k`-th entry of
    /// [`Topology::neighbors`]`(src)`.
    pub fn link_range(&self, src: NodeId) -> std::ops::Range<usize> {
        self.link_offsets[src.index()]..self.link_offsets[src.index() + 1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_edges_dedups_and_ignores_loops() {
        let t = Topology::from_edges(4, &[(0, 1), (1, 0), (2, 2), (1, 2)]);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_edges(), 2);
        assert_eq!(t.degree(NodeId::new(1)), 2);
        assert_eq!(t.degree(NodeId::new(3)), 0);
        assert!(t.are_adjacent(NodeId::new(0), NodeId::new(1)));
        assert!(!t.are_adjacent(NodeId::new(0), NodeId::new(2)));
    }

    #[test]
    fn complete_topology() {
        let t = Topology::complete(5);
        assert!(t.is_complete());
        assert_eq!(t.num_edges(), 10);
        assert_eq!(t.max_degree(), 4);
        assert!(t.are_adjacent(NodeId::new(0), NodeId::new(4)));
        assert!(!t.are_adjacent(NodeId::new(2), NodeId::new(2)));
    }

    #[test]
    fn path_topology() {
        let t = Topology::path(4);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.edges().count(), 3);
        assert_eq!(t.degree(NodeId::new(0)), 1);
        assert_eq!(t.degree(NodeId::new(1)), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let _ = Topology::from_edges(2, &[(0, 5)]);
    }

    #[test]
    fn try_constructors_reject_out_of_range_edges_with_typed_errors() {
        assert_eq!(
            Topology::try_from_edges(2, &[(0, 5)]).unwrap_err(),
            TopologyError::EdgeOutOfRange { u: 0, v: 5, n: 2 }
        );
        assert_eq!(
            Topology::try_from_edge_list(3, [(0u32, 1u32), (7, 1)]).unwrap_err(),
            TopologyError::EdgeOutOfRange { u: 7, v: 1, n: 3 }
        );
        assert_eq!(
            TopologyError::EdgeOutOfRange { u: 0, v: 5, n: 2 }.to_string(),
            "edge (0, 5) out of range for n = 2"
        );
        // Valid input still round-trips through the fallible path.
        let t = Topology::try_from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn link_indices_are_dense_and_lexicographic() {
        for topo in [
            Topology::from_edges(6, &[(0, 3), (0, 5), (1, 2), (2, 3), (4, 5)]),
            Topology::complete(5),
            Topology::path(4),
        ] {
            let n = topo.num_nodes();
            let mut seen = Vec::new();
            for u in 0..n {
                let src = NodeId::new(u);
                let range = topo.link_range(src);
                assert_eq!(range.len(), topo.degree(src));
                for (k, &dst) in topo.neighbors(src).iter().enumerate() {
                    let idx = topo.link_index(src, dst).expect("neighbour link exists");
                    assert_eq!(idx, range.start + k);
                    seen.push(idx);
                }
            }
            // Dense cover of 0..2m, in (src, dst) lexicographic order.
            assert_eq!(seen, (0..topo.num_directed_links()).collect::<Vec<_>>());
            // Non-neighbours (including self) have no link.
            for u in 0..n {
                assert_eq!(topo.link_index(NodeId::new(u), NodeId::new(u)), None);
            }
        }
        let path = Topology::path(4);
        assert_eq!(path.link_index(NodeId::new(0), NodeId::new(2)), None);
        assert_eq!(path.num_directed_links(), 6);
    }
}
