//! Synchronous message-passing simulator for the CONGEST and CONGESTED CLIQUE
//! models of distributed computing.
//!
//! The simulator is the substrate on which the clique-listing algorithms of
//! Censor-Hillel, Le Gall and Leitersdorf (PODC 2020) are executed and their
//! round complexity is measured.
//!
//! # Model
//!
//! In the **CONGEST** model the `n`-node input graph is also the communication
//! graph. Computation proceeds in synchronous rounds; in every round each node
//! may send a message of `O(log n)` bits over each of its incident edges.
//! In the **CONGESTED CLIQUE** model the communication graph is the complete
//! graph on the `n` nodes regardless of the input graph.
//!
//! The simulator enforces the bandwidth constraint: every directed edge can
//! carry at most [`NetworkConfig::bandwidth_words`] machine words (each word
//! standing for one `O(log n)`-bit message) per round. Messages submitted in
//! excess of the capacity are queued and delivered in later rounds, so an
//! algorithm that over-subscribes a link simply takes more rounds — exactly as
//! in the model.
//!
//! # Charged primitives
//!
//! The clique-listing paper invokes two black-box primitives with proven round
//! bounds (the expander decomposition of Chang et al. and the intra-cluster
//! routing of Ghaffari et al.). Those are accounted for with a [`CostLedger`]:
//! the data movement is performed by the caller, and the ledger is charged the
//! number of rounds the corresponding theorem guarantees for the observed
//! per-node load. Simulated rounds and charged rounds are reported separately
//! and summed into [`RoundReport::total_rounds`].
//!
//! # Parallel execution
//!
//! With the opt-in `parallel` feature, `Network::run_parallel` steps node
//! programs on all cores while remaining observationally identical to the
//! sequential executor (same traces, round counts and outputs); see the
//! documentation on the parallel `impl` block in [`network`].
//!
//! # Example
//!
//! ```
//! use congest::{Network, NetworkConfig, NodeProgram, Context, Status, Topology, NodeId};
//!
//! /// Every node learns the maximum identifier among its neighbours.
//! struct MaxOfNeighbours {
//!     best: u64,
//! }
//!
//! impl NodeProgram for MaxOfNeighbours {
//!     type Message = u64;
//!     fn on_start(&mut self, ctx: &mut Context<'_, u64>) {
//!         let me = ctx.id().index() as u64;
//!         ctx.broadcast(me);
//!         self.best = me;
//!     }
//!     fn on_round(&mut self, _ctx: &mut Context<'_, u64>, incoming: &[(NodeId, u64)]) -> Status {
//!         for (_, v) in incoming {
//!             self.best = self.best.max(*v);
//!         }
//!         Status::Done
//!     }
//! }
//!
//! let topo = Topology::path(4);
//! let mut net = Network::new(topo, NetworkConfig::default(), |_id| MaxOfNeighbours { best: 0 });
//! let report = net.run(16);
//! assert!(report.simulated_rounds >= 1);
//! assert_eq!(net.program(congest::NodeId::new(1)).best, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clique;
pub mod cost;
pub mod faults;
pub mod metrics;
pub mod network;
pub mod node;
pub mod reliable;
pub mod rng;
pub mod topology;
pub mod trace;

pub use clique::CongestedClique;
pub use cost::{ChargePolicy, CostLedger, PrimitiveKind};
pub use faults::{FaultError, FaultPlan, FaultPlanBuilder};
pub use metrics::{LinkStats, Metrics, RoundReport};
pub use network::{Network, NetworkConfig, NetworkError};
pub use node::{Context, NodeId, NodeProgram, Status};
pub use reliable::{Packet, ReliableConfig, ReliableTransport, TransportStats};
pub use rng::DeterministicRng;
pub use topology::{Topology, TopologyError};
pub use trace::{MemorySink, NullSink, TraceEvent, TraceSink};

/// Number of bits assumed to fit into a single CONGEST message word.
///
/// The model allows `O(log n)` bits per message; the simulator treats one
/// "word" as one message. Payloads wider than a word must be split by the
/// caller (e.g. an edge `{u, v}` counts as two words).
pub const WORD_BITS: u32 = 64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_bits_is_sane() {
        // Compile-time check: a word must hold at least one 32-bit identifier.
        const { assert!(WORD_BITS >= 32) }
    }
}
