//! Radix-based assignment of part tuples to cluster nodes.
//!
//! The sparsity-aware listing step partitions the vertex set into `P ≈ k^{1/p}`
//! parts and has every cluster node learn all edges between the parts of a
//! `p`-tuple assigned to it. The paper assigns node `i` the tuple given by the
//! `P`-radix representation of `i`; because `P^p` can exceed `k` after
//! rounding, we additionally wrap the surplus tuples around so that **every**
//! tuple is owned by some node — this is what makes the listing complete, at
//! the cost of at most a constant-factor increase in per-node load.

use serde::{Deserialize, Serialize};

/// Assignment of the `P^p` part tuples to `k` cluster nodes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleAssignment {
    /// Number of parts `P`.
    pub num_parts: u32,
    /// Tuple length `p`.
    pub p: usize,
    /// Number of cluster nodes `k`.
    pub k: usize,
    /// Total number of tuples (`P^p`).
    pub num_tuples: u64,
}

impl TupleAssignment {
    /// Creates the assignment for a cluster of `k ≥ 1` nodes and clique size
    /// `p`, using `P = ceil(k^{1/p})` parts.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `p == 0`.
    pub fn new(k: usize, p: usize) -> Self {
        assert!(k > 0, "a cluster must have at least one node");
        assert!(p > 0, "tuples must have positive length");
        let mut num_parts = (k as f64).powf(1.0 / p as f64).ceil() as u32;
        num_parts = num_parts.max(1);
        // Guard against floating-point undershoot: ensure P^p >= k.
        while (num_parts as u64).pow(p as u32) < k as u64 {
            num_parts += 1;
        }
        let num_tuples = (num_parts as u64).pow(p as u32);
        TupleAssignment {
            num_parts,
            p,
            k,
            num_tuples,
        }
    }

    /// Decodes tuple index `t` into its `p` part digits (least significant
    /// digit first).
    pub fn tuple_parts(&self, t: u64) -> Vec<u32> {
        let mut digits = Vec::with_capacity(self.p);
        let mut rest = t;
        for _ in 0..self.p {
            digits.push((rest % u64::from(self.num_parts)) as u32);
            rest /= u64::from(self.num_parts);
        }
        digits
    }

    /// The tuples owned by the node with rank `rank` (tuples are distributed
    /// round-robin: rank `r` owns `r, r + k, r + 2k, …`).
    pub fn tuples_of(&self, rank: usize) -> Vec<u64> {
        (rank as u64..self.num_tuples).step_by(self.k).collect()
    }

    /// The rank of the node that owns tuple `t`.
    pub fn owner_of(&self, t: u64) -> usize {
        (t % self.k as u64) as usize
    }

    /// Maximum number of tuples owned by a single node.
    pub fn max_tuples_per_node(&self) -> u64 {
        self.num_tuples.div_ceil(self.k as u64)
    }

    /// Number of tuples that contain part `a` and part `b` (with `a == b`
    /// meaning "contains `a` at least once"), computed by inclusion–exclusion.
    ///
    /// This is the number of destinations an edge with endpoint parts `a`,
    /// `b` must reach in the worst case; the paper bounds it by
    /// `O(p² k^{1−2/p})`.
    pub fn tuples_containing(&self, a: u32, b: u32) -> u64 {
        let total = self.num_tuples as i128;
        let pp = self.p as u32;
        let q = i128::from(self.num_parts);
        if a == b {
            (total - (q - 1).pow(pp)) as u64
        } else {
            (total - 2 * (q - 1).pow(pp) + (q - 2).max(0).pow(pp)) as u64
        }
    }

    /// Number of distinct nodes that own at least one tuple containing both
    /// `a` and `b` — an upper bound used for send-load accounting.
    pub fn owners_needing(&self, a: u32, b: u32) -> u64 {
        self.tuples_containing(a, b).min(self.k as u64)
    }

    /// Writes the distinct unordered part pairs of tuple `t` into `out`
    /// (cleared first), canonical `(min, max)` form, sorted ascending.
    ///
    /// This is the per-tuple pair enumeration both exchange-load accountings
    /// (in-cluster and CONGESTED CLIQUE) sum [`expander::PairTable`] counts
    /// over; the scratch-vector dedup replaces a per-tuple hash set, so the
    /// iteration order is structural.
    pub fn distinct_pairs_into(&self, t: u64, out: &mut Vec<(u32, u32)>) {
        out.clear();
        let digits = self.tuple_parts(t);
        for (i, &a) in digits.iter().enumerate() {
            for &b in &digits[i + 1..] {
                out.push((a.min(b), a.max(b)));
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_tuple_is_owned_exactly_once() {
        let asg = TupleAssignment::new(10, 3);
        assert!(asg.num_tuples >= 10);
        let mut seen = HashSet::new();
        for rank in 0..10 {
            for t in asg.tuples_of(rank) {
                assert!(seen.insert(t), "tuple {t} owned twice");
                assert_eq!(asg.owner_of(t), rank);
            }
        }
        assert_eq!(seen.len() as u64, asg.num_tuples);
        assert!(asg.max_tuples_per_node() <= asg.num_tuples.div_ceil(10));
    }

    #[test]
    fn tuple_digits_roundtrip() {
        let asg = TupleAssignment::new(27, 3);
        assert_eq!(asg.num_parts, 3);
        assert_eq!(asg.num_tuples, 27);
        let parts = asg.tuple_parts(26);
        assert_eq!(parts, vec![2, 2, 2]);
        assert_eq!(asg.tuple_parts(5), vec![2, 1, 0]);
    }

    #[test]
    fn tuples_containing_matches_bruteforce() {
        let asg = TupleAssignment::new(30, 4);
        let p = asg.num_parts;
        for (a, b) in [(0u32, 0u32), (0, 1), (1, 2), (p - 1, 0)] {
            let brute = (0..asg.num_tuples)
                .filter(|&t| {
                    let digits = asg.tuple_parts(t);
                    digits.contains(&a) && digits.contains(&b)
                })
                .count() as u64;
            assert_eq!(asg.tuples_containing(a, b), brute, "({a},{b})");
            assert!(asg.owners_needing(a, b) <= 30);
        }
    }

    #[test]
    fn covering_guarantee_for_cliques() {
        // Any multiset of p parts must appear as some tuple, so any K_p whose
        // vertices land in those parts has an owner.
        let asg = TupleAssignment::new(7, 3);
        let mut covered = HashSet::new();
        for t in 0..asg.num_tuples {
            let mut parts = asg.tuple_parts(t);
            parts.sort_unstable();
            covered.insert(parts);
        }
        for a in 0..asg.num_parts {
            for b in a..asg.num_parts {
                for c in b..asg.num_parts {
                    assert!(covered.contains(&vec![a, b, c]), "({a},{b},{c}) uncovered");
                }
            }
        }
    }

    #[test]
    fn distinct_pairs_are_sorted_and_deduped() {
        let asg = TupleAssignment::new(27, 3);
        let mut pairs = Vec::new();
        for t in 0..asg.num_tuples {
            asg.distinct_pairs_into(t, &mut pairs);
            // Reference: brute-force set of unordered digit pairs.
            let digits = asg.tuple_parts(t);
            let mut expected: Vec<(u32, u32)> = Vec::new();
            for (i, &a) in digits.iter().enumerate() {
                for &b in &digits[i + 1..] {
                    let pair = (a.min(b), a.max(b));
                    if !expected.contains(&pair) {
                        expected.push(pair);
                    }
                }
            }
            expected.sort_unstable();
            assert_eq!(pairs, expected, "tuple {t}");
            assert!(
                pairs.windows(2).all(|w| w[0] < w[1]),
                "tuple {t} not strict"
            );
        }
    }

    #[test]
    fn single_node_cluster() {
        let asg = TupleAssignment::new(1, 4);
        assert_eq!(asg.num_parts, 1);
        assert_eq!(asg.num_tuples, 1);
        assert_eq!(asg.tuples_of(0), vec![0]);
        assert_eq!(asg.tuples_containing(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_k_panics() {
        TupleAssignment::new(0, 3);
    }
}
