//! The unified run report of the [`Engine`](crate::Engine) API.
//!
//! [`RunReport`] subsumes the pre-Engine `ListingResult` (rounds breakdown +
//! diagnostics) and `CongestedCliqueReport` (per-node send/receive loads and
//! the Theorem 1.3 prediction): one report type for every algorithm, with the
//! listed cliques streamed to a [`CliqueSink`](crate::CliqueSink) instead of
//! being materialised inside the report.
//!
//! The report derives the workspace `serde` markers and additionally carries
//! a hand-rolled [`RunReport::to_json`]: the vendored `serde` stand-in has no
//! data format (see `DESIGN.md` §5), so the JSON emission used by the
//! experiments harness (`experiments --json`) is implemented directly here
//! and switches to `serde_json` transparently once a real backend lands.

use crate::result::{Diagnostics, Rounds};
use graphcore::{KernelChoice, KernelStrategy};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The communication model an algorithm runs in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Model {
    /// The CONGEST model: the input graph is the communication graph,
    /// `O(log n)` bits per edge per round.
    Congest,
    /// The CONGESTED CLIQUE model: all-to-all communication, `O(log n)` bits
    /// per ordered pair per round.
    CongestedClique,
}

impl Model {
    /// Stable lower-case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            Model::Congest => "congest",
            Model::CongestedClique => "congested-clique",
        }
    }
}

/// What happened at the sink boundary during a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SinkSummary {
    /// Number of distinct cliques emitted to the sink.
    pub emitted: u64,
    /// Whether the sink reported saturation before the enumeration finished
    /// (e.g. a `FirstK` sink that filled up).
    pub saturated: bool,
}

/// How a run's local enumeration was executed with respect to the
/// [`Parallelism`](crate::Parallelism) knob.
///
/// `supported` and `sequential_reason` are a pure function of the algorithm
/// and the build (never of the requested thread count or the host), so the
/// JSON rendered by [`RunReport::to_json`] is byte-identical across every
/// parallelism setting — the report artifact stays diffable.
/// `threads_granted` and `threads_used` are the host-dependent execution
/// details and are deliberately **not** serialised, for the same reason
/// timings are not.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParallelismSummary {
    /// Whether this algorithm in this build can shard its local enumeration.
    pub supported: bool,
    /// Why runs are pinned to sequential execution (`None` when sharding is
    /// available): either the algorithm's capability reason (CONGEST
    /// simulation) or the missing `parallel` feature.
    pub sequential_reason: Option<&'static str>,
    /// Worker threads the engine granted to the local enumeration (1 =
    /// sequential). An upper bound on what the enumeration actually fans out
    /// to: degenerate inputs (single-shard plans, saturated sinks) still run
    /// sequentially under a grant. Execution detail, excluded from
    /// [`RunReport::to_json`].
    pub threads_granted: usize,
    /// The largest worker fan-out any stage of the run actually reached
    /// (1 = every stage ran sequentially). Unlike `threads_granted` this is
    /// never an over-statement: a grant of 8 threads on a single-shard plan
    /// records 1 here, so scaling reports can attribute speedups (or their
    /// absence) to real fan-out rather than to the requested setting.
    /// Execution detail, excluded from [`RunReport::to_json`].
    pub threads_used: usize,
}

impl Default for ParallelismSummary {
    fn default() -> Self {
        ParallelismSummary {
            supported: false,
            sequential_reason: None,
            threads_granted: 1,
            threads_used: 1,
        }
    }
}

/// How a run's local enumerations selected their kernel with respect to the
/// [`KernelStrategy`] knob.
///
/// Like the thread counts of [`ParallelismSummary`], the whole summary is an
/// execution detail deliberately excluded from [`RunReport::to_json`]: both
/// kernels emit byte-identical listings (the kernel differential battery
/// holds them to it), so two runs differing only in their kernel setting
/// must produce byte-identical report artifacts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelSummary {
    /// The strategy the run was configured with.
    pub requested: KernelStrategy,
    /// What the strategy resolves to on the *input* graph (a pure function
    /// of the graph's degeneracy and the strategy — host-independent).
    /// Derived enumerations (cluster subgraphs, aggregate graphs) resolve
    /// per their own subgraph and may differ; this field records the
    /// top-level resolution so scaling reports can attribute wall-clock
    /// differences to the kernel that actually ran on the dominant input.
    pub resolved: KernelChoice,
}

impl Default for KernelSummary {
    fn default() -> Self {
        KernelSummary {
            requested: KernelStrategy::Auto,
            resolved: KernelChoice::Recursive,
        }
    }
}

/// CONGESTED CLIQUE load statistics (Theorem 1.3), present only on runs of
/// the `congested-clique` algorithm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct CongestedCliqueStats {
    /// Maximum number of words any node sent during the edge exchange.
    pub max_send: u64,
    /// Maximum number of words any node received during the edge exchange.
    pub max_recv: u64,
    /// The theoretical prediction `1 + m / n^{1+2/p}` (no polylog factors).
    pub predicted_rounds: f64,
}

/// How a run terminated with respect to the configured
/// [`Resilience`](crate::Resilience) envelope.
///
/// Fault-free runs (the default) always finish [`RunOutcome::Complete`], and
/// `Complete` is deliberately **not** serialised by [`RunReport::to_json`] so
/// that reports from fault-free runs stay byte-identical to reports produced
/// before the fault model existed. The degraded outcomes carry a
/// deterministic, host-independent reason string: the same `(seed, fault
/// plan)` pair reproduces the same outcome byte-for-byte at any thread grant.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// The run finished the full listing within its budgets.
    #[default]
    Complete,
    /// The run produced a *partial* listing (or paid extra rounds) and says
    /// why: crash-stopped nodes whose cliques are missing, message loss with
    /// the reliable transport disabled, or a round budget that was exhausted
    /// after some output had been emitted.
    Degraded(String),
    /// The run produced no usable listing: every node crash-stopped, or the
    /// round budget was exhausted before anything was emitted.
    Aborted,
}

impl RunOutcome {
    /// True when the run finished without degradation.
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }
}

/// The outcome of one [`Engine`](crate::Engine) run: identity of the
/// algorithm, measured cost, pipeline diagnostics and the sink summary.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Registry name of the algorithm that produced the report.
    pub algorithm: &'static str,
    /// Communication model the rounds are measured in.
    pub model: Option<Model>,
    /// Clique size listed.
    pub p: usize,
    /// Round breakdown by pipeline phase.
    pub rounds: Rounds,
    /// Pipeline diagnostics (bad edges, loads, iteration counts).
    pub diagnostics: Diagnostics,
    /// Sink-boundary summary, filled by the engine.
    pub sink: SinkSummary,
    /// How the local enumeration was executed (sharded or sequential, and
    /// why), filled by the engine.
    pub parallelism: ParallelismSummary,
    /// Which enumeration kernel the run requested and resolved to, filled by
    /// the engine. Execution detail, excluded from [`RunReport::to_json`]
    /// (see [`KernelSummary`]).
    pub kernel: KernelSummary,
    /// CONGESTED CLIQUE load statistics, when applicable.
    pub congested_clique: Option<CongestedCliqueStats>,
    /// How the run terminated under its [`Resilience`](crate::Resilience)
    /// envelope. Defaults to [`RunOutcome::Complete`], which is omitted from
    /// [`RunReport::to_json`] to keep fault-free reports byte-stable.
    pub outcome: RunOutcome,
}

impl RunReport {
    /// Creates an empty report for one algorithm/clique-size pair.
    pub fn new(algorithm: &'static str, model: Model, p: usize) -> Self {
        RunReport {
            algorithm,
            model: Some(model),
            p,
            ..RunReport::default()
        }
    }

    /// Total measured rounds across all phases.
    pub fn total_rounds(&self) -> u64 {
        self.rounds.total()
    }

    /// Renders the report as a single JSON object (stable field order).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push('{');
        let _ = write!(out, "\"algorithm\":{}", json_string(self.algorithm));
        let model = self
            .model
            .map_or("null".to_string(), |m| json_string(m.name()));
        let _ = write!(out, ",\"model\":{model}");
        let _ = write!(out, ",\"p\":{}", self.p);
        out.push_str(",\"rounds\":{\"total\":");
        let _ = write!(out, "{}", self.rounds.total());
        out.push_str(",\"phases\":{");
        for (i, (phase, rounds)) in self.rounds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{rounds}", json_string(phase));
        }
        out.push_str("}}");
        let d = &self.diagnostics;
        let _ = write!(
            out,
            ",\"diagnostics\":{{\"bad_edges\":{},\"cluster_edges\":{},\"bad_edge_fraction\":{},\
             \"max_learned_words\":{},\"decompositions\":{},\"clusters\":{},\
             \"list_iterations\":{},\"arb_iterations\":{}}}",
            d.bad_edges,
            d.cluster_edges,
            json_f64(d.bad_edge_fraction()),
            d.max_learned_words,
            d.decompositions,
            d.clusters,
            d.list_iterations,
            d.arb_iterations
        );
        let _ = write!(
            out,
            ",\"sink\":{{\"emitted\":{},\"saturated\":{}}}",
            self.sink.emitted, self.sink.saturated
        );
        // `threads_granted`/`threads_used` are deliberately omitted: like
        // wall-clock timings they are host/execution details, and including
        // them would make otherwise byte-identical runs diff by thread count.
        let reason = self
            .parallelism
            .sequential_reason
            .map_or("null".to_string(), json_string);
        let _ = write!(
            out,
            ",\"parallel\":{{\"supported\":{},\"sequential_reason\":{reason}}}",
            self.parallelism.supported
        );
        match &self.congested_clique {
            Some(cc) => {
                let _ = write!(
                    out,
                    ",\"congested_clique\":{{\"max_send\":{},\"max_recv\":{},\
                     \"predicted_rounds\":{}}}",
                    cc.max_send,
                    cc.max_recv,
                    json_f64(cc.predicted_rounds)
                );
            }
            None => out.push_str(",\"congested_clique\":null"),
        }
        // `Complete` (the only outcome a fault-free run can have) is omitted
        // entirely so that pre-fault-model report bytes are reproduced
        // exactly; only degraded runs grow the extra field.
        match &self.outcome {
            RunOutcome::Complete => {}
            RunOutcome::Degraded(reason) => {
                let _ = write!(
                    out,
                    ",\"outcome\":{{\"status\":\"degraded\",\"reason\":{}}}",
                    json_string(reason)
                );
            }
            RunOutcome::Aborted => {
                out.push_str(",\"outcome\":{\"status\":\"aborted\"}");
            }
        }
        out.push('}');
        out
    }
}

/// Escapes a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a float as a JSON number (JSON has no NaN/infinity; those map to
/// `null`).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::result::phase;

    #[test]
    fn json_contains_identity_rounds_and_sink() {
        let mut report = RunReport::new("general", Model::Congest, 5);
        report.rounds.add(phase::DECOMPOSITION, 10);
        report.rounds.add(phase::PART_EXCHANGE, 5);
        report.sink.emitted = 42;
        let json = report.to_json();
        assert!(json.contains("\"algorithm\":\"general\""));
        assert!(json.contains("\"model\":\"congest\""));
        assert!(json.contains("\"p\":5"));
        assert!(json.contains("\"total\":15"));
        assert!(json.contains("\"decomposition\":10"));
        assert!(json.contains("\"emitted\":42"));
        assert!(json.contains("\"congested_clique\":null"));
        // Balanced braces (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON: {json}"
        );
    }

    #[test]
    fn congested_clique_stats_are_rendered() {
        let mut report = RunReport::new("congested-clique", Model::CongestedClique, 4);
        report.congested_clique = Some(CongestedCliqueStats {
            max_send: 7,
            max_recv: 9,
            predicted_rounds: 1.25,
        });
        let json = report.to_json();
        assert!(json.contains("\"max_send\":7"));
        assert!(json.contains("\"predicted_rounds\":1.25"));
        assert!(json.contains("\"model\":\"congested-clique\""));
    }

    #[test]
    fn parallelism_summary_is_rendered_without_thread_counts() {
        let mut report = RunReport::new("general", Model::Congest, 4);
        report.parallelism = ParallelismSummary {
            supported: false,
            sequential_reason: Some("CONGEST rounds are simulated sequentially"),
            threads_granted: 8,
            threads_used: 3,
        };
        let json = report.to_json();
        assert!(json.contains("\"parallel\":{\"supported\":false"));
        assert!(
            json.contains("\"sequential_reason\":\"CONGEST rounds are simulated sequentially\"")
        );
        // The thread counts (granted and used) are execution details and must
        // stay out of the diffable artifact.
        assert!(!json.contains("threads"));

        report.parallelism = ParallelismSummary {
            supported: true,
            sequential_reason: None,
            threads_granted: 4,
            threads_used: 4,
        };
        let json = report.to_json();
        assert!(json.contains("\"parallel\":{\"supported\":true,\"sequential_reason\":null}"));
    }

    #[test]
    fn kernel_summary_is_rendered_nowhere_in_json() {
        // Same contract as the thread counts: the kernel selection is an
        // execution detail, and reports differing only in it must serialise
        // byte-identically (the differential battery diffs these bytes).
        let mut report = RunReport::new("general", Model::Congest, 4);
        let baseline = report.to_json();
        report.kernel = KernelSummary {
            requested: KernelStrategy::Trie,
            resolved: KernelChoice::Trie,
        };
        let json = report.to_json();
        assert_eq!(json, baseline);
        assert!(!json.to_lowercase().contains("kernel"));
        assert!(!json.to_lowercase().contains("trie"));
    }

    #[test]
    fn complete_outcome_is_invisible_in_json() {
        let report = RunReport::new("general", Model::Congest, 4);
        assert!(report.outcome.is_complete());
        assert!(!report.to_json().contains("outcome"));
    }

    #[test]
    fn degraded_and_aborted_outcomes_are_rendered() {
        let mut report = RunReport::new("general", Model::Congest, 4);
        report.outcome = RunOutcome::Degraded("2 node(s) crash-stopped".to_string());
        let json = report.to_json();
        assert!(json.ends_with(
            ",\"outcome\":{\"status\":\"degraded\",\"reason\":\"2 node(s) crash-stopped\"}}"
        ));
        report.outcome = RunOutcome::Aborted;
        let json = report.to_json();
        assert!(json.ends_with(",\"outcome\":{\"status\":\"aborted\"}}"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(0.5), "0.5");
    }
}
