//! Listing outputs and round breakdowns.

use graphcore::Clique;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashSet};

/// Named phases of the listing pipeline, used to break down the measured
/// round complexity.
pub mod phase {
    /// Expander decomposition construction (Theorem 2.3).
    pub const DECOMPOSITION: &str = "decomposition";
    /// Cluster-membership broadcast.
    pub const MEMBERSHIP: &str = "membership-broadcast";
    /// Heavy nodes uploading their outgoing edges into clusters.
    pub const HEAVY_UPLOAD: &str = "heavy-upload";
    /// Good cluster nodes probing their outside neighbours about light nodes.
    pub const LIGHT_PROBES: &str = "light-probes";
    /// Intra-cluster identifier assignment (Lemma 2.5).
    pub const ID_ASSIGNMENT: &str = "id-assignment";
    /// Reshuffling known edges to responsible cluster nodes.
    pub const RESHUFFLE: &str = "reshuffle";
    /// Broadcasting the random vertex partition inside the cluster.
    pub const PARTITION_BROADCAST: &str = "partition-broadcast";
    /// Delivering edges to the nodes that own the relevant part tuples.
    pub const PART_EXCHANGE: &str = "part-exchange";
    /// Sequential per-cluster listing by C-light nodes (fast K4 variant only).
    pub const LIGHT_LISTING: &str = "light-listing";
    /// Final phase of the driver: every node broadcasts its remaining
    /// outgoing edges to its neighbours.
    pub const FINAL_BROADCAST: &str = "final-broadcast";
    /// Acknowledgement/retransmission overhead of the reliable transport
    /// under a lossy fault plan (absent from fault-free runs).
    pub const RETRANSMIT: &str = "retransmit";
}

/// Rounds accumulated by the pipeline, broken down by phase.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rounds {
    by_phase: BTreeMap<String, u64>,
    total: u64,
}

impl Rounds {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Rounds::default()
    }

    /// Adds `rounds` rounds to `phase`.
    pub fn add(&mut self, phase: &str, rounds: u64) {
        if rounds == 0 {
            return;
        }
        *self.by_phase.entry(phase.to_string()).or_insert(0) += rounds;
        self.total += rounds;
    }

    /// Total rounds across all phases.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rounds attributed to one phase.
    pub fn for_phase(&self, phase: &str) -> u64 {
        self.by_phase.get(phase).copied().unwrap_or(0)
    }

    /// Iterates over `(phase, rounds)` pairs in phase-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.by_phase.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another breakdown into this one.
    pub fn absorb(&mut self, other: &Rounds) {
        for (phase, rounds) in other.iter() {
            self.add(phase, rounds);
        }
    }
}

/// Diagnostics collected while running the pipeline, used by the experiments
/// that check the paper's intermediate claims (bad-edge fraction, per-node
/// load bounds).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Diagnostics {
    /// Total number of edges that were declared bad (moved from `E'_m` to
    /// `Ê_r`), summed over all ARB-LIST invocations.
    pub bad_edges: usize,
    /// Total number of cluster (`E'_m`) edges seen by ARB-LIST invocations.
    pub cluster_edges: usize,
    /// Maximum number of outside-edge words any single cluster node learned in
    /// one ARB-LIST invocation (Remark 2.10 bounds this by `~O(n^{3/4+d})`).
    pub max_learned_words: u64,
    /// Number of expander decompositions performed.
    pub decompositions: usize,
    /// Number of clusters processed across all decompositions.
    pub clusters: usize,
    /// Number of LIST invocations performed by the driver.
    pub list_iterations: usize,
    /// Number of ARB-LIST invocations performed in total.
    pub arb_iterations: usize,
}

impl Diagnostics {
    /// Fraction of cluster edges that were declared bad (0 when no cluster
    /// edges were seen). Section 2.4.1 argues this is at most `1/25`.
    pub fn bad_edge_fraction(&self) -> f64 {
        if self.cluster_edges == 0 {
            0.0
        } else {
            self.bad_edges as f64 / self.cluster_edges as f64
        }
    }

    /// Merges another diagnostics record into this one.
    pub fn absorb(&mut self, other: &Diagnostics) {
        self.bad_edges += other.bad_edges;
        self.cluster_edges += other.cluster_edges;
        self.max_learned_words = self.max_learned_words.max(other.max_learned_words);
        self.decompositions += other.decompositions;
        self.clusters += other.clusters;
        self.list_iterations += other.list_iterations;
        self.arb_iterations += other.arb_iterations;
    }
}

/// The result of a listing execution: the cliques output by the nodes
/// (as a union, since the listing problem only requires the union of node
/// outputs to be the full list) plus the measured cost.
#[derive(Clone, Debug, Default)]
pub struct ListingResult {
    /// The union of all cliques listed by any node, in canonical form.
    pub cliques: HashSet<Clique>,
    /// Round breakdown.
    pub rounds: Rounds,
    /// Pipeline diagnostics.
    pub diagnostics: Diagnostics,
}

impl ListingResult {
    /// Creates an empty result.
    pub fn new() -> Self {
        ListingResult::default()
    }

    /// Number of distinct cliques listed.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Whether no clique was listed.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Returns the cliques as a sorted vector (deterministic order).
    pub fn sorted_cliques(&self) -> Vec<Clique> {
        let mut v: Vec<Clique> = self.cliques.iter().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Merges another result into this one.
    pub fn absorb(&mut self, other: ListingResult) {
        self.cliques.extend(other.cliques);
        self.rounds.absorb(&other.rounds);
        self.diagnostics.absorb(&other.diagnostics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_accumulate_by_phase() {
        let mut r = Rounds::new();
        r.add(phase::DECOMPOSITION, 10);
        r.add(phase::DECOMPOSITION, 5);
        r.add(phase::RESHUFFLE, 3);
        r.add(phase::RESHUFFLE, 0);
        assert_eq!(r.total(), 18);
        assert_eq!(r.for_phase(phase::DECOMPOSITION), 15);
        assert_eq!(r.for_phase(phase::PART_EXCHANGE), 0);
        assert_eq!(r.iter().count(), 2);

        let mut other = Rounds::new();
        other.add(phase::FINAL_BROADCAST, 7);
        r.absorb(&other);
        assert_eq!(r.total(), 25);
    }

    #[test]
    fn diagnostics_fraction() {
        let mut d = Diagnostics::default();
        assert_eq!(d.bad_edge_fraction(), 0.0);
        d.bad_edges = 2;
        d.cluster_edges = 100;
        assert!((d.bad_edge_fraction() - 0.02).abs() < 1e-12);
        let other = Diagnostics {
            bad_edges: 1,
            cluster_edges: 50,
            max_learned_words: 77,
            decompositions: 1,
            clusters: 3,
            list_iterations: 1,
            arb_iterations: 2,
        };
        d.absorb(&other);
        assert_eq!(d.bad_edges, 3);
        assert_eq!(d.cluster_edges, 150);
        assert_eq!(d.max_learned_words, 77);
    }

    #[test]
    fn result_merging() {
        let mut a = ListingResult::new();
        assert!(a.is_empty());
        a.cliques.insert(vec![1, 2, 3]);
        let mut b = ListingResult::new();
        b.cliques.insert(vec![1, 2, 3]);
        b.cliques.insert(vec![2, 3, 4]);
        b.rounds.add(phase::FINAL_BROADCAST, 4);
        a.absorb(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.rounds.total(), 4);
        assert_eq!(a.sorted_cliques()[0], vec![1, 2, 3]);
    }
}
