//! Streaming output sinks for listed cliques.
//!
//! Every algorithm behind the [`Engine`](crate::Engine) *emits* cliques into
//! a [`CliqueSink`] instead of materialising a `HashSet` per phase and
//! merging. The engine guarantees that [`CliqueSink::accept`] is called
//! **exactly once per distinct clique** of a run, in a deterministic order,
//! with the clique in canonical form (vertices sorted ascending). Sinks can
//! therefore be as cheap as a single counter ([`CountSink`]) — no per-clique
//! allocation on the output path, which is measurably faster on dense
//! workloads where the listing itself dominates.
//!
//! A sink can declare itself *saturated* ([`CliqueSink::is_saturated`]);
//! the pipeline then skips further local enumeration work. Saturation never
//! changes the simulated round counts — rounds model communication, which
//! the distributed algorithm performs regardless of how much output a
//! client consumes.

use graphcore::Clique;
use std::collections::HashSet;

/// A consumer of listed cliques.
///
/// Implementations receive each distinct clique of a run exactly once (see
/// the module docs for the emission contract). The slice is only valid for
/// the duration of the call — copy it if the sink retains cliques.
pub trait CliqueSink {
    /// Accepts one listed clique (canonical form: sorted, deduplicated).
    fn accept(&mut self, clique: &[u32]);

    /// Whether the sink has seen enough: when `true`, the pipeline may skip
    /// the remaining *local enumeration* (it still charges the full
    /// communication rounds).
    fn is_saturated(&self) -> bool {
        false
    }
}

impl<S: CliqueSink + ?Sized> CliqueSink for &mut S {
    fn accept(&mut self, clique: &[u32]) {
        (**self).accept(clique);
    }

    fn is_saturated(&self) -> bool {
        (**self).is_saturated()
    }
}

/// Collects every clique into a `HashSet` — the drop-in replacement for the
/// pre-Engine `ListingResult::cliques` field.
#[derive(Clone, Debug, Default)]
pub struct CollectSink {
    /// The collected cliques.
    pub cliques: HashSet<Clique>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        CollectSink::default()
    }

    /// Number of collected cliques.
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// The collected cliques as a sorted vector (deterministic order).
    pub fn sorted(&self) -> Vec<Clique> {
        let mut v: Vec<Clique> = self.cliques.iter().cloned().collect();
        v.sort_unstable();
        v
    }

    /// Consumes the sink and returns the collected set.
    pub fn into_cliques(self) -> HashSet<Clique> {
        self.cliques
    }
}

impl CliqueSink for CollectSink {
    fn accept(&mut self, clique: &[u32]) {
        self.cliques.insert(clique.to_vec());
    }
}

/// Counts cliques without storing them — no allocation per clique.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountSink {
    /// Number of cliques accepted so far.
    pub count: u64,
}

impl CountSink {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        CountSink::default()
    }
}

impl CliqueSink for CountSink {
    fn accept(&mut self, _clique: &[u32]) {
        self.count += 1;
    }
}

/// Keeps only the first `k` cliques of the (deterministic) emission order,
/// then reports saturation so the pipeline can stop enumerating.
#[derive(Clone, Debug)]
pub struct FirstK {
    limit: usize,
    /// The retained cliques, in emission order.
    pub cliques: Vec<Clique>,
}

impl FirstK {
    /// Creates a sink that retains at most `k` cliques.
    pub fn new(k: usize) -> Self {
        FirstK {
            limit: k,
            cliques: Vec::new(),
        }
    }

    /// The configured retention limit.
    pub fn limit(&self) -> usize {
        self.limit
    }
}

impl CliqueSink for FirstK {
    fn accept(&mut self, clique: &[u32]) {
        if self.cliques.len() < self.limit {
            self.cliques.push(clique.to_vec());
        }
    }

    fn is_saturated(&self) -> bool {
        self.cliques.len() >= self.limit
    }
}

/// Forwards each distinct clique to an inner sink once, dropping duplicates.
///
/// The engine already guarantees exactly-once emission, so user code rarely
/// needs this directly; it exists for composing *multiple* runs into one
/// downstream sink (e.g. a comparison matrix that unions several algorithms)
/// and is what the pipeline itself uses internally where two listing paths
/// can overlap (per-`ARB-LIST` cross-cluster overlap, and the fast-`K_4`
/// light-node listing).
#[derive(Debug)]
pub struct Dedup<S: CliqueSink> {
    seen: HashSet<Clique>,
    inner: S,
}

impl<S: CliqueSink> Dedup<S> {
    /// Wraps `inner` with a dedup layer.
    pub fn new(inner: S) -> Self {
        Dedup {
            seen: HashSet::new(),
            inner,
        }
    }

    /// Number of distinct cliques forwarded so far.
    pub fn distinct(&self) -> usize {
        self.seen.len()
    }

    /// Consumes the wrapper and returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CliqueSink> CliqueSink for Dedup<S> {
    fn accept(&mut self, clique: &[u32]) {
        if self.seen.insert(clique.to_vec()) {
            self.inner.accept(clique);
        }
    }

    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

/// Per-shard clique buffer for the sharded parallel enumeration.
///
/// Worker threads cannot emit into the run's sink directly — the sink is a
/// single `&mut` consumer and the exactly-once contract promises a
/// deterministic order. Instead each worker fills one `ShardBuffer` per
/// claimed shard (the buffer is itself a [`CliqueSink`], so the worker-side
/// enumeration code is sink-agnostic) and the orchestrating thread calls
/// [`ShardBuffer::replay_into`] in **ascending shard order**: shards are
/// contiguous ranges of the degeneracy ordering, so the replayed sequence is
/// byte-identical to the sequential emission regardless of thread count or
/// worker scheduling. Storage is one flat `u32` array (rows of width `p`),
/// so buffering allocates nothing per clique.
///
/// The cluster fan-out of `arb_list` uses the same buffer for its per-cluster
/// emissions — on every path, sequential builds included, so the sequential
/// pipeline and the parallel one run literally the same produce/replay code.
#[derive(Clone, Debug)]
pub struct ShardBuffer {
    shard: usize,
    width: usize,
    flat: Vec<u32>,
}

impl ShardBuffer {
    /// Creates an empty buffer for shard `shard` holding cliques of `width`
    /// vertices.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0` (a zero-width row cannot delimit cliques).
    pub fn new(shard: usize, width: usize) -> Self {
        assert!(width > 0, "clique width must be at least 1");
        ShardBuffer {
            shard,
            width,
            flat: Vec::new(),
        }
    }

    /// The shard index this buffer belongs to (its merge position).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Number of buffered cliques.
    pub fn len(&self) -> usize {
        self.flat.len() / self.width
    }

    /// Whether nothing has been buffered.
    pub fn is_empty(&self) -> bool {
        self.flat.is_empty()
    }

    /// Replays every buffered clique into `sink`, in buffered order, stopping
    /// after the accept that saturates the sink; returns whether the sink is
    /// still accepting. The accept/saturation-check sequence is exactly the
    /// sequential path's (`accept`, then `is_saturated`), which keeps the
    /// exactly-once emission byte-identical.
    pub fn replay_into(&self, sink: &mut dyn CliqueSink) -> bool {
        for clique in self.flat.chunks_exact(self.width) {
            sink.accept(clique);
            if sink.is_saturated() {
                return false;
            }
        }
        true
    }
}

impl CliqueSink for ShardBuffer {
    fn accept(&mut self, clique: &[u32]) {
        debug_assert_eq!(clique.len(), self.width, "clique width mismatch");
        self.flat.extend_from_slice(clique);
    }
}

/// Suppresses the cliques owned by crash-stopped nodes; used by the engine
/// to turn a crash schedule in the [`Resilience`](crate::Resilience)
/// envelope into a deterministic *partial* listing.
///
/// A clique's owner is its canonical minimum vertex — in every listing
/// pipeline that vertex is the node responsible for reporting the instance,
/// so when it crash-stops the instance goes unreported. Ownership is a pure
/// function of the clique and the (pre-computed) crash schedule, never of
/// thread scheduling, so filtered listings stay byte-identical at any thread
/// grant.
#[derive(Debug)]
pub struct CrashFilter<S: CliqueSink> {
    inner: S,
    crashed: Vec<bool>,
    suppressed: u64,
}

impl<S: CliqueSink> CrashFilter<S> {
    /// Wraps `inner`, suppressing cliques whose minimum vertex is marked
    /// crashed in `crashed` (indexed by vertex id; vertices beyond the slice
    /// are treated as alive).
    pub fn new(inner: S, crashed: Vec<bool>) -> Self {
        CrashFilter {
            inner,
            crashed,
            suppressed: 0,
        }
    }

    /// Number of cliques suppressed so far.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }

    /// Consumes the wrapper and returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CliqueSink> CliqueSink for CrashFilter<S> {
    fn accept(&mut self, clique: &[u32]) {
        // Canonical form is sorted ascending, so the owner is the first entry.
        let owner = clique.first().map(|&v| v as usize);
        if owner.is_some_and(|v| self.crashed.get(v).copied().unwrap_or(false)) {
            self.suppressed += 1;
            return;
        }
        self.inner.accept(clique);
    }

    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

/// Counts the cliques passing through to an inner sink; used by the engine
/// to fill the [`SinkSummary`](crate::SinkSummary) of a
/// [`RunReport`](crate::RunReport).
///
/// Respects saturation: once the inner sink reports
/// [`CliqueSink::is_saturated`], further cliques are dropped instead of
/// forwarded, so `emitted` is exactly the number of cliques the inner sink
/// received.
#[derive(Debug)]
pub struct Counted<S: CliqueSink> {
    inner: S,
    emitted: u64,
}

impl<S: CliqueSink> Counted<S> {
    /// Wraps `inner` with an emission counter.
    pub fn new(inner: S) -> Self {
        Counted { inner, emitted: 0 }
    }

    /// Number of cliques forwarded so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Consumes the wrapper and returns the inner sink.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: CliqueSink> CliqueSink for Counted<S> {
    fn accept(&mut self, clique: &[u32]) {
        if self.inner.is_saturated() {
            return;
        }
        self.emitted += 1;
        self.inner.accept(clique);
    }

    fn is_saturated(&self) -> bool {
        self.inner.is_saturated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_deduplicates() {
        let mut sink = CollectSink::new();
        assert!(sink.is_empty());
        sink.accept(&[1, 2, 3]);
        sink.accept(&[1, 2, 3]);
        sink.accept(&[2, 3, 4]);
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.sorted()[0], vec![1, 2, 3]);
        assert!(!sink.is_saturated());
        assert_eq!(sink.into_cliques().len(), 2);
    }

    #[test]
    fn count_sink_counts_every_accept() {
        let mut sink = CountSink::new();
        sink.accept(&[1, 2, 3]);
        sink.accept(&[2, 3, 4]);
        assert_eq!(sink.count, 2);
    }

    #[test]
    fn first_k_saturates() {
        let mut sink = FirstK::new(2);
        assert_eq!(sink.limit(), 2);
        sink.accept(&[1, 2, 3]);
        assert!(!sink.is_saturated());
        sink.accept(&[2, 3, 4]);
        assert!(sink.is_saturated());
        sink.accept(&[3, 4, 5]);
        assert_eq!(sink.cliques, vec![vec![1, 2, 3], vec![2, 3, 4]]);
    }

    #[test]
    fn dedup_forwards_each_clique_once() {
        let mut sink = Dedup::new(CountSink::new());
        sink.accept(&[1, 2, 3]);
        sink.accept(&[1, 2, 3]);
        sink.accept(&[2, 3, 4]);
        assert_eq!(sink.distinct(), 2);
        assert_eq!(sink.into_inner().count, 2);
    }

    #[test]
    fn shard_buffers_replay_in_order_and_respect_saturation() {
        let mut a = ShardBuffer::new(0, 3);
        let mut b = ShardBuffer::new(1, 3);
        assert!(a.is_empty());
        b.accept(&[7, 8, 9]);
        a.accept(&[1, 2, 3]);
        a.accept(&[2, 3, 4]);
        assert_eq!(a.len(), 2);
        assert_eq!((a.shard(), b.shard()), (0, 1));

        // Ascending-shard replay reproduces the sequential emission order.
        let mut collected = Vec::new();
        {
            struct Probe<'a>(&'a mut Vec<Vec<u32>>);
            impl CliqueSink for Probe<'_> {
                fn accept(&mut self, clique: &[u32]) {
                    self.0.push(clique.to_vec());
                }
            }
            let mut probe = Probe(&mut collected);
            assert!(a.replay_into(&mut probe));
            assert!(b.replay_into(&mut probe));
        }
        assert_eq!(collected, vec![vec![1, 2, 3], vec![2, 3, 4], vec![7, 8, 9]]);

        // Replay stops with the accept that saturates the sink, exactly like
        // the sequential accept-then-check loop.
        let mut first = FirstK::new(1);
        assert!(!a.replay_into(&mut first));
        assert_eq!(first.cliques, vec![vec![1, 2, 3]]);
    }

    #[test]
    fn crash_filter_suppresses_cliques_owned_by_crashed_nodes() {
        // Node 2 crashed: cliques whose canonical owner (minimum vertex) is 2
        // vanish; cliques merely *containing* 2 but owned elsewhere survive
        // only if their owner is alive.
        let crashed = vec![false, false, true];
        let mut sink = CrashFilter::new(CollectSink::new(), crashed);
        sink.accept(&[2, 3, 4]); // owned by 2 -> suppressed
        sink.accept(&[1, 2, 3]); // owned by 1 -> kept
        sink.accept(&[5, 6, 7]); // owner beyond the slice -> alive, kept
        assert_eq!(sink.suppressed(), 1);
        assert!(!sink.is_saturated());
        assert_eq!(sink.into_inner().len(), 2);
    }

    #[test]
    fn counted_tracks_forwarded_cliques_and_saturation() {
        let mut sink = Counted::new(FirstK::new(1));
        sink.accept(&[1, 2, 3]);
        assert_eq!(sink.emitted(), 1);
        assert!(sink.is_saturated());
    }

    #[test]
    fn mutable_references_are_sinks_too() {
        fn emit(sink: &mut dyn CliqueSink) {
            sink.accept(&[1, 2, 3]);
        }
        let mut count = CountSink::new();
        let mut as_ref: &mut dyn CliqueSink = &mut count;
        emit(&mut as_ref);
        assert_eq!(count.count, 1);
    }
}
