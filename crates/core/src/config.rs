//! Configuration of the distributed listing algorithms.

use crate::error::ConfigError;
use congest::{ChargePolicy, FaultPlan};
use expander::DecompositionConfig;
use graphcore::KernelStrategy;
use serde::{Deserialize, Serialize};

/// Which algorithm variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The general algorithm of Theorem 1.1, for every `p ≥ 4` (and `p = 3`).
    General,
    /// The faster `K_4` algorithm of Theorem 1.2 (Section 3), which avoids the
    /// `~O(n^{3/4})` term by letting `C`-light nodes list the instances whose
    /// outside edge touches a light node.
    FastK4,
}

/// How the in-cluster part-exchange load is accounted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExchangeMode {
    /// Loads follow the actual number of known edges between parts
    /// (the paper's sparsity-aware algorithm).
    SparsityAware,
    /// Loads assume every pair of parts is fully connected
    /// (`(n/P)²` edges per pair) — the generic, non-sparsity-aware listing
    /// used as an ablation and by the Eden-et-al-style baseline.
    DenseAssumption,
}

/// How much thread parallelism a run's local enumeration may use.
///
/// The knob controls only *wall-clock* behaviour: algorithms whose local
/// enumeration is sharded (see
/// [`ParallelSupport`](crate::engine::ParallelSupport)) produce byte-identical
/// output at every setting, and algorithms that simulate a CONGEST message
/// schedule ignore the knob and record a sequential-fallback reason in the
/// [`RunReport`](crate::RunReport). Builds without the `parallel` feature
/// always run sequentially.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Strictly sequential local enumeration (the default).
    #[default]
    Off,
    /// Exactly this many worker threads; `Threads(0)` is rejected by
    /// [`ListingConfig::validate`].
    Threads(usize),
    /// Resolve the thread count at run time: the [`THREADS_ENV_VAR`]
    /// environment variable when set to a positive integer, otherwise the
    /// machine's available parallelism (see [`auto_threads`]).
    Auto,
}

impl Parallelism {
    /// The worker-thread count this setting resolves to (`Off` resolves
    /// to 1). Resolution is deterministic for a fixed environment; only
    /// [`Parallelism::Auto`] consults the environment at all.
    pub fn threads(self) -> usize {
        match self {
            Parallelism::Off => 1,
            Parallelism::Threads(n) => n,
            Parallelism::Auto => auto_threads(),
        }
    }
}

/// Environment variable consulted by [`Parallelism::Auto`]: a positive
/// integer pins the resolved thread count (the CI matrix uses this to sweep
/// thread counts without recompiling).
pub const THREADS_ENV_VAR: &str = "CLIQUELIST_THREADS";

/// The thread count [`Parallelism::Auto`] resolves to right now:
/// [`THREADS_ENV_VAR`] when it parses as a positive integer, otherwise the
/// machine's available parallelism (1 if undeterminable).
pub fn auto_threads() -> usize {
    resolve_auto_threads(std::env::var(THREADS_ENV_VAR).ok().as_deref())
}

/// Pure resolution rule behind [`auto_threads`], taking the environment
/// variable's value explicitly so tests can pin it without mutating the
/// process environment: a positive integer wins, anything else (unset,
/// empty, zero, garbage) falls back to the machine's available parallelism.
pub fn resolve_auto_threads(env_value: Option<&str>) -> usize {
    if let Some(value) = env_value {
        if let Ok(n) = value.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The fault and degradation envelope of a run.
///
/// `Resilience` is deliberately **not** part of [`ListingConfig`] (which is
/// `Copy` and describes the algorithm, not its environment): it is attached
/// to the [`Engine`](crate::Engine) through
/// [`EngineBuilder::resilience`](crate::EngineBuilder::resilience) and
/// describes the adversary the run must survive — a deterministic
/// [`FaultPlan`] plus an optional round budget — and whether the reliable
/// transport masks message loss.
///
/// The default envelope is fault-free, unbounded and reliable, and produces
/// reports byte-identical to runs with no envelope at all; see
/// [`RunOutcome`](crate::RunOutcome) for how deviations are surfaced.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Resilience {
    /// The deterministic fault schedule applied to the run. The same
    /// `(seed, plan)` pair replays byte-identically at any thread grant.
    pub fault_plan: FaultPlan,
    /// Whether message-level simulations wrap their sends in the
    /// ack/retransmit transport ([`congest::reliable`]). When `false`, any
    /// plan with a positive drop probability degrades the run instead of
    /// masking the loss.
    pub reliable_transport: bool,
    /// Hard budget on total rounds (simulated + charged). `None` is
    /// unbounded; `Some(0)` is rejected by [`Resilience::validate`].
    pub max_rounds: Option<u64>,
}

impl Default for Resilience {
    fn default() -> Self {
        Resilience {
            fault_plan: FaultPlan::fault_free(),
            reliable_transport: true,
            max_rounds: None,
        }
    }
}

impl Resilience {
    /// An envelope that injects nothing and bounds nothing — runs under it
    /// are indistinguishable from runs with no envelope at all.
    pub fn fault_free() -> Self {
        Resilience::default()
    }

    /// An envelope carrying a fault plan with default transport and budget.
    pub fn with_plan(fault_plan: FaultPlan) -> Self {
        Resilience {
            fault_plan,
            ..Resilience::default()
        }
    }

    /// True when the envelope can never alter a run's behaviour.
    pub fn is_inert(&self) -> bool {
        self.fault_plan.is_fault_free() && self.max_rounds.is_none()
    }

    /// Checks the envelope's preconditions.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ZeroRoundBudget`] when `max_rounds` is
    /// `Some(0)`. The fault plan itself is valid by construction
    /// ([`congest::FaultPlanBuilder`] validates on `build`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.max_rounds == Some(0) {
            return Err(ConfigError::ZeroRoundBudget);
        }
        Ok(())
    }
}

/// Configuration of the `K_p` listing pipeline.
///
/// Prefer constructing configurations through
/// [`Engine::builder`](crate::Engine::builder), which validates every field
/// and returns a typed [`ConfigError`] instead of panicking.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ListingConfig {
    /// Clique size `p ≥ 3`.
    pub p: usize,
    /// Algorithm variant.
    pub variant: Variant,
    /// How the in-cluster exchange load is accounted. The dense mode is the
    /// ablation of the paper's sparsity-awareness (experiment E9).
    pub exchange_mode: ExchangeMode,
    /// How rounds are charged for black-box primitives.
    pub charge_policy: ChargePolicy,
    /// Expander decomposition parameters.
    pub decomposition: DecompositionConfig,
    /// Exponent `γ` of the heavy-node threshold: an outside node is `C`-heavy
    /// when it has more than `n^γ` neighbours in the cluster. The paper uses
    /// `γ = 1/4` for the general algorithm and `γ = d − 1/3` for the fast
    /// `K_4` algorithm (where `d` is the current arboricity exponent); the
    /// latter is computed at run time, this field only covers the general
    /// case.
    pub heavy_exponent: f64,
    /// Constant factor of the bad-node threshold `100 · n^{1/2} · log n`
    /// (Section 2.4.1). Lowering it exercises the bad-edge machinery on small
    /// inputs.
    pub bad_node_factor: f64,
    /// Number of words a single edge occupies on the wire (two vertex
    /// identifiers).
    pub words_per_edge: u64,
    /// Safety cap on the number of ARB-LIST iterations inside one LIST call.
    pub max_arb_iterations: usize,
    /// Safety cap on the number of LIST invocations made by the driver.
    pub max_list_iterations: usize,
    /// Seed for all randomised choices (partitions, tie-breaking).
    pub seed: u64,
    /// Thread parallelism of the local enumeration. Only algorithms with
    /// sharded local enumeration honour it; everything else (and every build
    /// without the `parallel` feature) runs sequentially and says so in the
    /// [`RunReport`](crate::RunReport).
    pub parallelism: Parallelism,
    /// Enumeration kernel of every local clique search the run performs
    /// (full listings, shards, goal-edge queries). Like [`Parallelism`] this
    /// knob controls only wall-clock behaviour: both kernels emit the same
    /// cliques in the same order, byte for byte (the kernel differential
    /// battery enforces it), so reports are identical at every setting. The
    /// default [`KernelStrategy::Auto`] resolves per enumerated graph by the
    /// degeneracy heuristic in `graphcore::cliques`.
    pub kernel: KernelStrategy,
    /// The slack factor between the arboricity bound `A` and the cluster
    /// degree parameter `n^δ` (`n^δ = A / slack`). `None` uses the paper's
    /// `2 log n`; experiments at simulation scale set a small constant here,
    /// because `2 log n · n^{3/4} > n` for every `n` below ≈ 5·10⁵, which
    /// would otherwise make the driver skip straight to the final broadcast.
    pub arboricity_slack: Option<f64>,
    /// Overrides the driver's termination exponent (`max(p/(p+2), 3/4)` for
    /// the general algorithm). Experiments use this to study how the phase
    /// costs scale even at sizes where the asymptotic threshold has not yet
    /// kicked in.
    pub termination_exponent_override: Option<f64>,
}

impl ListingConfig {
    /// A configuration for listing `K_p` with the general algorithm and
    /// default parameters, or a [`ConfigError`] when `p < 3`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::CliqueSizeTooSmall`] when `p < 3`.
    pub fn try_for_p(p: usize) -> Result<Self, ConfigError> {
        let config = ListingConfig {
            p,
            variant: Variant::General,
            exchange_mode: ExchangeMode::SparsityAware,
            charge_policy: ChargePolicy::default(),
            decomposition: DecompositionConfig::default(),
            heavy_exponent: 0.25,
            bad_node_factor: 100.0,
            words_per_edge: 2,
            max_arb_iterations: 32,
            max_list_iterations: 64,
            seed: 0xC11,
            parallelism: Parallelism::Off,
            kernel: KernelStrategy::Auto,
            arboricity_slack: None,
            termination_exponent_override: None,
        };
        config.validate()?;
        Ok(config)
    }

    /// A configuration for listing `K_p` with the general algorithm and
    /// default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `p < 3`; use [`ListingConfig::try_for_p`] (or the
    /// [`Engine`](crate::Engine) builder) for fallible construction.
    pub fn for_p(p: usize) -> Self {
        ListingConfig::try_for_p(p).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The fast `K_4` configuration (Theorem 1.2).
    pub fn fast_k4() -> Self {
        ListingConfig {
            variant: Variant::FastK4,
            ..ListingConfig::for_p(4)
        }
    }

    /// Checks every field against its precondition; the builder calls this so
    /// invalid configurations surface as typed errors instead of panics or
    /// silently-skipped pipelines.
    ///
    /// # Errors
    ///
    /// Returns the [`ConfigError`] of the first violated precondition.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.p < 3 {
            return Err(ConfigError::CliqueSizeTooSmall { p: self.p });
        }
        if self.max_arb_iterations == 0 {
            return Err(ConfigError::ZeroIterationCap {
                field: "max_arb_iterations",
            });
        }
        if self.max_list_iterations == 0 {
            return Err(ConfigError::ZeroIterationCap {
                field: "max_list_iterations",
            });
        }
        if self.words_per_edge == 0 {
            return Err(ConfigError::ZeroWordsPerEdge);
        }
        if self.parallelism == Parallelism::Threads(0) {
            return Err(ConfigError::ZeroThreads);
        }
        if !(self.heavy_exponent > 0.0 && self.heavy_exponent < 1.0) {
            return Err(ConfigError::BadExponent {
                field: "heavy_exponent",
                value: self.heavy_exponent,
            });
        }
        if let Some(e) = self.termination_exponent_override {
            if !(e > 0.0 && e <= 1.0) {
                return Err(ConfigError::BadExponent {
                    field: "termination_exponent_override",
                    value: e,
                });
            }
        }
        if let Some(s) = self.arboricity_slack {
            if !(s.is_finite() && s > 0.0) {
                return Err(ConfigError::BadFactor {
                    field: "arboricity_slack",
                    value: s,
                });
            }
        }
        if !(self.bad_node_factor.is_finite() && self.bad_node_factor >= 0.0) {
            return Err(ConfigError::BadFactor {
                field: "bad_node_factor",
                value: self.bad_node_factor,
            });
        }
        Ok(())
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a different charge policy.
    pub fn with_charge_policy(mut self, policy: ChargePolicy) -> Self {
        self.charge_policy = policy;
        self
    }

    /// Returns a copy with a different in-cluster exchange mode.
    pub fn with_exchange_mode(mut self, mode: ExchangeMode) -> Self {
        self.exchange_mode = mode;
        self
    }

    /// The exponent `p/(p+2)` that governs the in-cluster listing cost and the
    /// termination threshold of the driver.
    pub fn listing_exponent(&self) -> f64 {
        self.p as f64 / (self.p as f64 + 2.0)
    }

    /// The driver's termination exponent: `max(p/(p+2), 3/4)` for the general
    /// algorithm (Theorem 1.1) and `2/3` for the fast `K_4` variant
    /// (Theorem 1.2), unless overridden.
    pub fn termination_exponent(&self) -> f64 {
        if let Some(e) = self.termination_exponent_override {
            return e;
        }
        match self.variant {
            Variant::General => self.listing_exponent().max(0.75),
            Variant::FastK4 => 2.0 / 3.0,
        }
    }

    /// The slack factor between the arboricity and the cluster degree
    /// parameter: the paper's `2 log₂ n`, unless a constant override is set.
    pub fn arboricity_slack(&self, n: usize) -> f64 {
        self.arboricity_slack
            .unwrap_or_else(|| 2.0 * (n.max(2) as f64).log2())
            .max(1.0)
    }

    /// Returns a copy tuned for simulation-scale experiments: constant
    /// arboricity slack instead of `2 log n` (so the cluster pipeline is
    /// active across the whole `n` sweep rather than only beyond `n ≈ 5·10⁵`),
    /// and a bare charge policy so the measured curves are not dominated by
    /// the polylog fudge factors.
    pub fn for_experiments(mut self) -> Self {
        self.arboricity_slack = Some(1.0);
        self.charge_policy = ChargePolicy::bare();
        self
    }

    /// Worker threads the local enumeration of a run may use: 1 unless the
    /// algorithm opted into sharded enumeration (`algorithm_supports`), the
    /// crate was built with the `parallel` feature, **and** the
    /// [`Parallelism`] knob resolves above 1. This is the single source of
    /// truth shared by the enumeration path and the
    /// [`RunReport`](crate::RunReport) summary, so the two can never
    /// disagree.
    pub fn effective_threads(&self, algorithm_supports: bool) -> usize {
        if !algorithm_supports || !cfg!(feature = "parallel") {
            return 1;
        }
        self.parallelism.threads().max(1)
    }

    /// The bad-node threshold for an `n`-node graph: a cluster node with more
    /// `C`-light neighbours than this is bad (Section 2.4.1).
    pub fn bad_node_threshold(&self, n: usize) -> f64 {
        self.bad_node_factor * (n.max(2) as f64).sqrt() * (n.max(2) as f64).log2()
    }

    /// The heavy-node threshold for the general algorithm: `n^{1/4}` cluster
    /// neighbours.
    pub fn heavy_threshold(&self, n: usize) -> f64 {
        (n.max(1) as f64).powf(self.heavy_exponent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponents_match_the_paper() {
        let k4 = ListingConfig::for_p(4);
        assert!((k4.listing_exponent() - 2.0 / 3.0).abs() < 1e-12);
        assert!((k4.termination_exponent() - 0.75).abs() < 1e-12);
        let k5 = ListingConfig::for_p(5);
        assert!((k5.listing_exponent() - 5.0 / 7.0).abs() < 1e-12);
        assert!((k5.termination_exponent() - 0.75).abs() < 1e-12);
        let k6 = ListingConfig::for_p(6);
        assert!((k6.termination_exponent() - 0.75).abs() < 1e-12);
        let k8 = ListingConfig::for_p(8);
        assert!((k8.termination_exponent() - 0.8).abs() < 1e-12);
        let fast = ListingConfig::fast_k4();
        assert_eq!(fast.variant, Variant::FastK4);
        assert!((fast.termination_exponent() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn thresholds_scale_with_n() {
        let cfg = ListingConfig::for_p(4);
        assert!((cfg.heavy_threshold(10_000) - 10.0).abs() < 1e-9);
        assert!(cfg.bad_node_threshold(1024) > 100.0 * 32.0 * 9.9);
        let small = ListingConfig {
            bad_node_factor: 0.01,
            ..cfg
        };
        assert!(small.bad_node_threshold(1024) < cfg.bad_node_threshold(1024));
    }

    #[test]
    fn builder_helpers() {
        let cfg = ListingConfig::for_p(5)
            .with_seed(7)
            .with_charge_policy(ChargePolicy::bare())
            .with_exchange_mode(ExchangeMode::DenseAssumption);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.charge_policy.polylog_exponent, 0);
        assert_eq!(cfg.exchange_mode, ExchangeMode::DenseAssumption);
    }

    #[test]
    fn slack_and_overrides() {
        let cfg = ListingConfig::for_p(4);
        assert!((cfg.arboricity_slack(1024) - 20.0).abs() < 1e-9);
        let exp = cfg.for_experiments();
        assert_eq!(exp.arboricity_slack(1024), 1.0);
        assert_eq!(exp.charge_policy.polylog_exponent, 0);
        let overridden = ListingConfig {
            termination_exponent_override: Some(0.4),
            ..ListingConfig::for_p(4)
        };
        assert!((overridden.termination_exponent() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn zero_threads_rejected_and_positive_accepted() {
        let good = ListingConfig::for_p(4);
        assert_eq!(good.parallelism, Parallelism::Off);
        let zero = ListingConfig {
            parallelism: Parallelism::Threads(0),
            ..good
        };
        assert_eq!(zero.validate(), Err(ConfigError::ZeroThreads));
        for parallelism in [
            Parallelism::Off,
            Parallelism::Threads(1),
            Parallelism::Threads(8),
            Parallelism::Auto,
        ] {
            let cfg = ListingConfig {
                parallelism,
                ..good
            };
            assert!(cfg.validate().is_ok(), "{parallelism:?} must validate");
        }
    }

    #[test]
    fn auto_resolution_is_deterministic() {
        // The environment rule is pure: a positive integer pins the count...
        assert_eq!(resolve_auto_threads(Some("4")), 4);
        assert_eq!(resolve_auto_threads(Some(" 2 ")), 2);
        // ...and unset/empty/zero/garbage all fall back to the same
        // machine-derived value.
        let fallback = resolve_auto_threads(None);
        assert!(fallback >= 1);
        assert_eq!(resolve_auto_threads(Some("")), fallback);
        assert_eq!(resolve_auto_threads(Some("0")), fallback);
        assert_eq!(resolve_auto_threads(Some("many")), fallback);
        // Repeated resolution never flips within a process.
        assert_eq!(auto_threads(), auto_threads());
        assert!(Parallelism::Auto.threads() >= 1);
    }

    #[test]
    fn parallelism_resolves_thread_counts() {
        assert_eq!(Parallelism::Off.threads(), 1);
        assert_eq!(Parallelism::Threads(6).threads(), 6);
        assert_eq!(Parallelism::default(), Parallelism::Off);
    }

    #[test]
    fn effective_threads_requires_support_and_feature() {
        let cfg = ListingConfig {
            parallelism: Parallelism::Threads(4),
            ..ListingConfig::for_p(4)
        };
        // Algorithms that never opted in are always sequential.
        assert_eq!(cfg.effective_threads(false), 1);
        // Opted-in algorithms get the resolved count only in parallel builds.
        let expected = if cfg!(feature = "parallel") { 4 } else { 1 };
        assert_eq!(cfg.effective_threads(true), expected);
        let off = ListingConfig::for_p(4);
        assert_eq!(off.effective_threads(true), 1);
    }

    #[test]
    fn resilience_defaults_are_inert_and_validated() {
        let default = Resilience::default();
        assert!(default.is_inert());
        assert!(default.reliable_transport);
        assert!(default.validate().is_ok());
        assert_eq!(default, Resilience::fault_free());

        let zero_budget = Resilience {
            max_rounds: Some(0),
            ..Resilience::default()
        };
        assert_eq!(zero_budget.validate(), Err(ConfigError::ZeroRoundBudget));

        let plan = congest::FaultPlan::builder(9)
            .drop_probability(0.05)
            .build()
            .unwrap();
        let lossy = Resilience::with_plan(plan);
        assert!(!lossy.is_inert());
        assert!(lossy.validate().is_ok());

        let budgeted = Resilience {
            max_rounds: Some(100),
            ..Resilience::default()
        };
        assert!(!budgeted.is_inert());
        assert!(budgeted.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_p_rejected() {
        ListingConfig::for_p(2);
    }

    #[test]
    fn try_for_p_rejects_without_panicking() {
        assert!(matches!(
            ListingConfig::try_for_p(2),
            Err(ConfigError::CliqueSizeTooSmall { p: 2 })
        ));
        assert!(ListingConfig::try_for_p(3).is_ok());
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let good = ListingConfig::for_p(4);
        assert!(good.validate().is_ok());

        let zero_arb = ListingConfig {
            max_arb_iterations: 0,
            ..good
        };
        assert!(matches!(
            zero_arb.validate(),
            Err(ConfigError::ZeroIterationCap {
                field: "max_arb_iterations"
            })
        ));

        let zero_list = ListingConfig {
            max_list_iterations: 0,
            ..good
        };
        assert!(matches!(
            zero_list.validate(),
            Err(ConfigError::ZeroIterationCap {
                field: "max_list_iterations"
            })
        ));

        let zero_words = ListingConfig {
            words_per_edge: 0,
            ..good
        };
        assert_eq!(zero_words.validate(), Err(ConfigError::ZeroWordsPerEdge));

        for heavy in [0.0, 1.0, -0.5, f64::NAN] {
            let cfg = ListingConfig {
                heavy_exponent: heavy,
                ..good
            };
            assert!(
                matches!(cfg.validate(), Err(ConfigError::BadExponent { field, .. })
                    if field == "heavy_exponent"),
                "heavy_exponent = {heavy} must be rejected"
            );
        }

        let bad_term = ListingConfig {
            termination_exponent_override: Some(1.5),
            ..good
        };
        assert!(matches!(
            bad_term.validate(),
            Err(ConfigError::BadExponent {
                field: "termination_exponent_override",
                ..
            })
        ));

        for slack in [0.0, -1.0, f64::INFINITY] {
            let cfg = ListingConfig {
                arboricity_slack: Some(slack),
                ..good
            };
            assert!(
                matches!(cfg.validate(), Err(ConfigError::BadFactor { field, .. })
                    if field == "arboricity_slack"),
                "arboricity_slack = {slack} must be rejected"
            );
        }

        let bad_factor = ListingConfig {
            bad_node_factor: f64::NAN,
            ..good
        };
        assert!(matches!(
            bad_factor.validate(),
            Err(ConfigError::BadFactor {
                field: "bad_node_factor",
                ..
            })
        ));
    }
}
