//! Distributed listing of cliques in the CONGEST and CONGESTED CLIQUE models.
//!
//! This crate is a from-scratch reproduction of **"On Distributed Listing of
//! Cliques"** by Keren Censor-Hillel, François Le Gall and Dean Leitersdorf
//! (PODC 2020): sub-linear round `K_p`-listing for every `p ≥ 4` in the
//! CONGEST model, a faster specialised `K_4` algorithm, and an optimal
//! sparsity-aware `K_p`-listing algorithm for the CONGESTED CLIQUE model.
//!
//! | Paper result | Entry point |
//! |--------------|-------------|
//! | Theorem 1.1 — `K_p` in `~O(n^{3/4} + n^{p/(p+2)})` CONGEST rounds | [`list_kp`] with [`ListingConfig::for_p`] |
//! | Theorem 1.2 — `K_4` in `~O(n^{2/3})` CONGEST rounds | [`list_kp`] with [`ListingConfig::fast_k4`] |
//! | Theorem 1.3 — `K_p` in `~Θ(1 + m/n^{1+2/p})` CONGESTED CLIQUE rounds | [`congested_clique_list`] |
//! | Theorem 2.8 — Algorithm LIST | [`list::list_once`] |
//! | Theorem 2.9 — Algorithm ARB-LIST | [`arb_list::arb_list`] |
//!
//! The execution model, the expander-decomposition substrate and the exact
//! round-accounting rules are described in the repository's `DESIGN.md`.
//!
//! # Quickstart
//!
//! ```
//! use cliquelist::{list_kp, ListingConfig, verify_against_ground_truth};
//! use graphcore::gen;
//!
//! // A sparse random graph with three planted K_5 instances.
//! let (graph, planted) = gen::planted_cliques(200, 0.02, 3, 5, 42);
//!
//! let result = list_kp(&graph, &ListingConfig::for_p(5));
//!
//! // The union of node outputs is the complete list of K_5 instances.
//! verify_against_ground_truth(&graph, 5, &result)?;
//! assert!(planted.iter().all(|c| result.cliques.contains(&c.vertices)));
//! println!("listed {} cliques in {} rounds", result.len(), result.rounds.total());
//! # Ok::<(), cliquelist::VerificationError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arb_list;
pub mod baselines;
pub mod cluster_knowledge;
pub mod config;
pub mod congested_clique;
pub mod driver;
pub mod list;
pub mod parts;
pub mod result;
pub mod sparse_listing;
pub mod verify;

pub use config::{ListingConfig, Variant};
pub use congested_clique::{congested_clique_list, CongestedCliqueReport};
pub use driver::{list_kp, list_kp_with_mode};
pub use result::{Diagnostics, ListingResult, Rounds};
pub use sparse_listing::ExchangeMode;
pub use verify::{verify_against_ground_truth, VerificationError};
