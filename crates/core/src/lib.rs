//! Distributed listing of cliques in the CONGEST and CONGESTED CLIQUE models.
//!
//! This crate is a from-scratch reproduction of **"On Distributed Listing of
//! Cliques"** by Keren Censor-Hillel, François Le Gall and Dean Leitersdorf
//! (PODC 2020): sub-linear round `K_p`-listing for every `p ≥ 4` in the
//! CONGEST model, a faster specialised `K_4` algorithm, and an optimal
//! sparsity-aware `K_p`-listing algorithm for the CONGESTED CLIQUE model.
//!
//! Every algorithm — the paper's three theorems plus the comparison
//! baselines — runs through one streaming [`Engine`] API: pick an algorithm
//! from the registry, build a validated engine, and stream the listed
//! cliques into any [`CliqueSink`].
//!
//! | Paper result | Engine algorithm |
//! |--------------|------------------|
//! | Theorem 1.1 — `K_p` in `~O(n^{3/4} + n^{p/(p+2)})` CONGEST rounds | `"general"` |
//! | Theorem 1.2 — `K_4` in `~O(n^{2/3})` CONGEST rounds | `"fast-k4"` |
//! | Theorem 1.3 — `K_p` in `~Θ(1 + m/n^{1+2/p})` CONGESTED CLIQUE rounds | `"congested-clique"` |
//! | Θ(Δ) broadcast baseline | `"naive-broadcast"` |
//! | Eden et al. (DISC 2019) stand-in | `"eden-k4"` |
//! | Theorem 2.8 — Algorithm LIST | [`list::list_once`] |
//! | Theorem 2.9 — Algorithm ARB-LIST | [`arb_list::arb_list`] |
//!
//! The execution model, the expander-decomposition substrate, the exact
//! round-accounting rules and the engine/sink architecture are described in
//! the repository's `DESIGN.md`.
//!
//! # Quickstart
//!
//! ```
//! use cliquelist::{CollectSink, Engine, verify_cliques};
//! use graphcore::gen;
//!
//! // A sparse random graph with three planted K_5 instances.
//! let (graph, planted) = gen::planted_cliques(200, 0.02, 3, 5, 42);
//!
//! // Theorem 1.1: the general CONGEST algorithm for p = 5.
//! let engine = Engine::builder().p(5).algorithm("general").seed(42).build()?;
//! let mut sink = CollectSink::new();
//! let report = engine.run(&graph, &mut sink);
//!
//! // The union of node outputs is the complete list of K_5 instances.
//! verify_cliques(&graph, 5, &sink.cliques).expect("listing is exact");
//! assert!(planted.iter().all(|c| sink.cliques.contains(&c.vertices)));
//! println!(
//!     "listed {} cliques in {} rounds",
//!     report.sink.emitted,
//!     report.total_rounds()
//! );
//! # Ok::<(), cliquelist::ConfigError>(())
//! ```
//!
//! Counting without materialising the output (the dense enumeration paths
//! allocate nothing per clique; see `DESIGN.md` §6 for which paths those
//! are):
//!
//! ```
//! use cliquelist::Engine;
//! use graphcore::gen;
//!
//! let graph = gen::erdos_renyi(120, 0.2, 7);
//! let engine = Engine::builder().p(4).algorithm("congested-clique").build()?;
//! let (report, count) = engine.count(&graph);
//! println!("{count} K_4s, predicted rounds {:?}", report.congested_clique);
//! # Ok::<(), cliquelist::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arb_list;
pub mod baselines;
pub mod cluster_knowledge;
pub mod config;
pub mod congested_clique;
pub mod driver;
pub mod engine;
pub mod error;
pub mod list;
mod local;
pub mod parts;
pub mod report;
pub mod result;
pub mod sink;
pub mod sparse_listing;
pub mod verify;

pub use config::{
    auto_threads, ExchangeMode, ListingConfig, Parallelism, Resilience, Variant, THREADS_ENV_VAR,
};
pub use engine::{
    algorithm_named, algorithms, names, AlgorithmInfo, Engine, EngineBuilder, ListingAlgorithm,
    ParallelSupport,
};
pub use error::ConfigError;
pub use report::{
    CongestedCliqueStats, Model, ParallelismSummary, RunOutcome, RunReport, SinkSummary,
};
pub use result::{Diagnostics, ListingResult, Rounds};
pub use sink::{
    CliqueSink, CollectSink, CountSink, Counted, CrashFilter, Dedup, FirstK, ShardBuffer,
};
pub use verify::{verify_against_ground_truth, verify_cliques, VerificationError};
