//! Bringing the relevant outside edges into a cluster (Section 2.4.1).
//!
//! For a cluster `C` produced by the expander decomposition, the listing step
//! must know every edge that can participate in a `K_p` together with a goal
//! edge of `C` (Challenge 1 of the paper). This module implements the
//! heavy/light machinery:
//!
//! * outside neighbours with many cluster neighbours (**heavy**) upload their
//!   outgoing edges into the cluster, split across their cluster neighbours;
//! * cluster nodes with too many light neighbours are **bad**; cluster edges
//!   between two bad nodes stop being goal edges and are deferred to `Ê_r`;
//! * the remaining (**good**) cluster nodes probe each of their outside
//!   neighbours with their list of light neighbours and learn which of those
//!   pairs are edges (and their orientation).
//!
//! The function returns the cluster's pooled knowledge together with the exact
//! per-node communication loads, from which the caller charges rounds.
//!
//! All bookkeeping is flat and order-structural: outside neighbours are
//! classified from a sorted run-length scan, heavy/light/bad memberships are
//! sorted vectors probed by binary search, per-node loads live in a
//! rank-keyed [`DenseTable`], and the pooled edge list is sorted + deduped
//! once at the end. No `HashMap`/`HashSet` survives on this path, so both the
//! values *and every intermediate iteration order* are deterministic — the
//! property the cluster-parallel fan-out of `arb_list` relies on.

use crate::config::{ListingConfig, Variant};
use expander::{Cluster, DenseTable};
use graphcore::{Edge, EdgeSet, Graph, Orientation};

/// Pooled knowledge of one cluster after the edge-learning phase.
#[derive(Clone, Debug, Default)]
pub struct ClusterKnowledge {
    /// All edges known to some node of the cluster, as oriented pairs
    /// `(source, target)` (oriented according to the global orientation of
    /// the current graph), deduplicated and sorted.
    pub known_edges: Vec<(u32, u32)>,
    /// Goal edges: the cluster's `E'_m` edges minus the bad-bad edges.
    pub goal_edges: EdgeSet,
    /// Bad-bad edges, to be moved to `Ê_r`.
    pub bad_edges: EdgeSet,
    /// Per-cluster-node words learned from outside the cluster (heavy uploads
    /// plus probe replies), keyed by the node's **dense rank** of Lemma 2.5
    /// (its position in the sorted cluster vertex list). Remark 2.10 bounds
    /// the maximum.
    pub learned_words: DenseTable,
    /// Rounds needed by the heavy-upload phase for this cluster
    /// (`max_v ceil(words(v) / g_{v,C})`).
    pub heavy_upload_rounds: u64,
    /// Rounds needed by the light-probe phase for this cluster
    /// (`2 · max_u u_light` over good nodes `u`).
    pub light_probe_rounds: u64,
    /// Number of outside neighbours classified heavy.
    pub heavy_count: usize,
    /// Number of outside neighbours classified light.
    pub light_count: usize,
    /// Number of bad cluster nodes.
    pub bad_node_count: usize,
}

impl ClusterKnowledge {
    /// Maximum number of outside words learned by a single cluster node.
    pub fn max_learned_words(&self) -> u64 {
        self.learned_words.max()
    }
}

/// Runs the edge-learning phase for one cluster.
///
/// * `graph` and `orientation` describe the **current** graph of the enclosing
///   LIST invocation (communication still happens along its edges, which are a
///   subgraph of the input graph).
/// * `cluster_em` is the set of `E'_m` edges of this cluster.
/// * `heavy_threshold` is the number of cluster neighbours above which an
///   outside node is heavy (`n^{1/4}` in the general algorithm,
///   `n^{d−1/3}` in the fast `K_4` variant).
pub fn gather_cluster_knowledge(
    graph: &Graph,
    orientation: &Orientation,
    cluster: &Cluster,
    cluster_em: &EdgeSet,
    heavy_threshold: f64,
    config: &ListingConfig,
) -> ClusterKnowledge {
    let n = graph.num_vertices();
    let words = config.words_per_edge;
    let mut knowledge = ClusterKnowledge {
        learned_words: DenseTable::new(cluster.len()),
        ..ClusterKnowledge::default()
    };
    // Collected with duplicates (both endpoints of an internal edge record
    // it; heavy uploads re-record edges a cluster node already knows) and
    // sorted + deduplicated once in `finalize` — a flat replacement for the
    // old `HashSet` pool with a structural final order.
    let mut known: Vec<(u32, u32)> = Vec::new();

    // Every edge incident to a cluster node (in the current graph) is known to
    // that node; record it oriented by the global orientation.
    for &u in &cluster.vertices {
        for &v in graph.neighbors(u) {
            known.push(oriented(orientation, u, v));
        }
    }

    // Classify outside neighbours as heavy or light: collect every outside
    // endpoint, sort, and run-length scan — the run length *is* the number of
    // cluster neighbours. Both lists come out sorted by identifier.
    let mut outside: Vec<u32> = Vec::new();
    for &u in &cluster.vertices {
        for &v in graph.neighbors(u) {
            if !cluster.contains(v) {
                outside.push(v);
            }
        }
    }
    outside.sort_unstable();
    // Heavy neighbours keep their cluster degree (needed for the upload
    // schedule); light neighbours only need membership.
    let mut heavy: Vec<(u32, u32)> = Vec::new();
    let mut light: Vec<u32> = Vec::new();
    let mut i = 0usize;
    while i < outside.len() {
        let v = outside[i];
        let mut j = i + 1;
        while j < outside.len() && outside[j] == v {
            j += 1;
        }
        let degree = (j - i) as u32;
        if f64::from(degree) > heavy_threshold {
            heavy.push((v, degree));
        } else {
            light.push(v);
        }
        i = j;
    }
    knowledge.heavy_count = heavy.len();
    knowledge.light_count = light.len();

    // Heavy upload: each heavy node splits its outgoing edges across its
    // cluster neighbours (round-robin), which determines both who learns what
    // and the per-edge word count (and hence the phase's round cost). Heavy
    // nodes are visited in ascending identifier order.
    let mut heavy_rounds = 0u64;
    let mut receivers: Vec<u32> = Vec::new();
    for &(v, degree) in &heavy {
        let out = orientation.out_neighbors(v);
        if out.is_empty() {
            continue;
        }
        let g = u64::from(degree).max(1);
        let upload_words = words * out.len() as u64;
        heavy_rounds = heavy_rounds.max(upload_words.div_ceil(g));
        // Receivers: the cluster neighbours of v, in identifier order.
        receivers.clear();
        receivers.extend(
            graph
                .neighbors(v)
                .iter()
                .copied()
                .filter(|&u| cluster.contains(u)),
        );
        for (i, &w) in out.iter().enumerate() {
            known.push((v, w));
            let receiver = receivers[i % receivers.len()];
            let rank = cluster_rank(cluster, receiver);
            knowledge.learned_words.add(rank, words);
        }
    }
    knowledge.heavy_upload_rounds = heavy_rounds;

    // The fast K4 variant stops here: edges involving light nodes are listed
    // by the light nodes themselves (Section 3), not brought into the cluster.
    if config.variant == Variant::FastK4 {
        knowledge.goal_edges = cluster_em.iter().collect();
        finalize(knowledge, known)
    } else {
        gather_light_probes(
            graph,
            orientation,
            cluster,
            cluster_em,
            &light,
            config,
            n,
            words,
            knowledge,
            known,
        )
    }
}

/// The general-algorithm continuation: bad-node detection and light probes.
/// `light` is sorted ascending (memberships resolve by binary search).
#[allow(clippy::too_many_arguments)]
fn gather_light_probes(
    graph: &Graph,
    orientation: &Orientation,
    cluster: &Cluster,
    cluster_em: &EdgeSet,
    light: &[u32],
    config: &ListingConfig,
    n: usize,
    words: u64,
    mut knowledge: ClusterKnowledge,
    mut known: Vec<(u32, u32)>,
) -> ClusterKnowledge {
    // Bad nodes: cluster nodes with too many light neighbours. Light
    // neighbour lists are indexed by the node's dense rank; the bad list
    // comes out sorted because cluster vertices are scanned in rank order.
    let bad_threshold = config.bad_node_threshold(n);
    let mut light_neighbors: Vec<Vec<u32>> = Vec::with_capacity(cluster.len());
    let mut bad: Vec<u32> = Vec::new();
    for &u in &cluster.vertices {
        let lights: Vec<u32> = graph
            .neighbors(u)
            .iter()
            .copied()
            .filter(|w| light.binary_search(w).is_ok())
            .collect();
        if lights.len() as f64 > bad_threshold {
            bad.push(u);
        }
        light_neighbors.push(lights);
    }
    knowledge.bad_node_count = bad.len();

    // Edges between two bad nodes stop being goal edges.
    for e in cluster_em.iter() {
        if bad.binary_search(&e.u()).is_ok() && bad.binary_search(&e.v()).is_ok() {
            knowledge.bad_edges.insert(e);
        } else {
            knowledge.goal_edges.insert(e);
        }
    }

    // Light probes: every good cluster node tells each of its outside
    // neighbours about its light neighbours; the outside neighbour answers
    // which of them it is adjacent to (and the edge's orientation). The
    // answer set is `lights ∩ N(v)` — a sorted merge over the CSR rows into a
    // reused scratch buffer, not a has_edge probe per pair.
    let mut probe_rounds = 0u64;
    let mut adjacent_lights: Vec<u32> = Vec::new();
    for (rank, &u) in cluster.vertices.iter().enumerate() {
        if bad.binary_search(&u).is_ok() {
            continue;
        }
        let lights = &light_neighbors[rank];
        if lights.is_empty() {
            continue;
        }
        let outside: Vec<u32> = graph
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&v| !cluster.contains(v))
            .collect();
        if outside.is_empty() {
            continue;
        }
        // Request: one word per light neighbour; reply: one word per light
        // neighbour (adjacency + direction bit), on each incident edge.
        probe_rounds = probe_rounds.max(2 * lights.len() as u64);
        for &v in &outside {
            graphcore::intersect_sorted_into(lights, graph.neighbors(v), &mut adjacent_lights);
            for &w in &adjacent_lights {
                known.push(oriented(orientation, v, w));
            }
            knowledge
                .learned_words
                .add(rank, words * lights.len() as u64);
        }
    }
    knowledge.light_probe_rounds = probe_rounds;

    finalize(knowledge, known)
}

/// The dense rank (Lemma 2.5) of a cluster member.
fn cluster_rank(cluster: &Cluster, v: u32) -> usize {
    cluster
        .vertices
        .binary_search(&v)
        .unwrap_or_else(|_| panic!("{v} is not a member of cluster {}", cluster.id))
}

fn finalize(mut knowledge: ClusterKnowledge, mut known: Vec<(u32, u32)>) -> ClusterKnowledge {
    known.sort_unstable();
    known.dedup();
    knowledge.known_edges = known;
    knowledge
}

/// Orients an undirected edge `{u, v}` according to `orientation`, falling
/// back to `(min, max)` for edges the orientation does not cover (which can
/// only happen for edges the caller already removed from the orientation; the
/// fallback keeps the bookkeeping total).
fn oriented(orientation: &Orientation, u: u32, v: u32) -> (u32, u32) {
    match orientation.source_of(u, v) {
        Some(src) => (src, Edge::new(u, v).other(src)),
        None => (u.min(v), u.max(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;
    use std::collections::HashSet;

    /// A graph made of a dense cluster (K6 on 0..6) plus outside nodes:
    /// a heavy node 6 adjacent to every cluster node, and light nodes 7, 8
    /// adjacent to one cluster node each; 7 and 8 are adjacent to each other
    /// and to 6.
    fn clustered_graph() -> (Graph, Cluster, EdgeSet) {
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in (u + 1)..6u32 {
                edges.push((u, v));
            }
        }
        for u in 0..6u32 {
            edges.push((u, 6));
        }
        edges.push((0, 7));
        edges.push((1, 8));
        edges.push((7, 8));
        edges.push((6, 7));
        edges.push((6, 8));
        let g = Graph::from_edges(9, &edges).unwrap();
        let cluster = Cluster::new(0, (0..6).collect());
        let em: EdgeSet = g
            .edges()
            .filter(|&(u, v)| u < 6 && v < 6)
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        (g, cluster, em)
    }

    #[test]
    fn heavy_and_light_classification() {
        let (g, cluster, em) = clustered_graph();
        let o = Orientation::from_degeneracy(&g);
        let cfg = ListingConfig::for_p(4);
        // Threshold 3: node 6 (6 cluster neighbours) is heavy; 7, 8 are light.
        let k = gather_cluster_knowledge(&g, &o, &cluster, &em, 3.0, &cfg);
        assert_eq!(k.heavy_count, 1);
        assert_eq!(k.light_count, 2);
        assert_eq!(k.bad_node_count, 0);
        assert_eq!(k.goal_edges.len(), em.len());
        assert!(k.bad_edges.is_empty());
        // The probes of good nodes 0 and 1 towards the shared heavy neighbour
        // 6 reveal the outside edges {6,7} and {6,8}. The edge {7,8} is not
        // required to be known: it cannot form a K4 with any cluster edge (no
        // two cluster nodes are adjacent to both 7 and 8), which is exactly
        // the guarantee of Section 2.4.2.
        let undirected: HashSet<(u32, u32)> = k
            .known_edges
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        assert!(undirected.contains(&(6, 7)), "edge {{6,7}} not learned");
        assert!(undirected.contains(&(6, 8)), "edge {{6,8}} not learned");
        // The heavy node's own edges into the cluster are known anyway.
        assert!(undirected.contains(&(0, 6)));
    }

    #[test]
    fn fast_k4_skips_probes() {
        let (g, cluster, em) = clustered_graph();
        let o = Orientation::from_degeneracy(&g);
        let cfg = ListingConfig::fast_k4();
        let k = gather_cluster_knowledge(&g, &o, &cluster, &em, 3.0, &cfg);
        assert_eq!(k.light_probe_rounds, 0);
        assert_eq!(k.goal_edges.len(), em.len());
        assert_eq!(k.bad_node_count, 0);
    }

    #[test]
    fn bad_nodes_defer_edges() {
        let (g, cluster, em) = clustered_graph();
        let o = Orientation::from_degeneracy(&g);
        // Force every cluster node with at least one light neighbour to be bad.
        let cfg = ListingConfig {
            bad_node_factor: 0.0,
            ..ListingConfig::for_p(4)
        };
        let k = gather_cluster_knowledge(&g, &o, &cluster, &em, 3.0, &cfg);
        // Nodes 0 and 1 have light neighbours (7 and 8) => both bad => the
        // edge {0,1} is a bad edge.
        assert_eq!(k.bad_node_count, 2);
        assert!(k.bad_edges.contains(Edge::new(0, 1)));
        assert_eq!(k.goal_edges.len() + k.bad_edges.len(), em.len());
    }

    #[test]
    fn loads_and_rounds_are_positive_for_heavy_uploads() {
        let (g, cluster, em) = clustered_graph();
        let o = Orientation::from_degeneracy(&g);
        let cfg = ListingConfig::for_p(4);
        let k = gather_cluster_knowledge(&g, &o, &cluster, &em, 3.0, &cfg);
        if o.out_degree(6) > 0 {
            assert!(k.heavy_upload_rounds >= 1);
            assert!(k.max_learned_words() >= cfg.words_per_edge);
        }
        // The learned-word table is keyed by cluster rank and covers every
        // member.
        assert_eq!(k.learned_words.len(), cluster.len());
        // Probe rounds reflect the largest light list of a good node (at most
        // one light neighbour each here).
        assert!(k.light_probe_rounds <= 2);
    }

    #[test]
    fn knowledge_is_structurally_deterministic() {
        // Two runs must agree *representationally* — same sorted edge list,
        // same rank-keyed load table — not merely as sets. This is the flat
        // replacement for the old hash-pool, whose iteration order varied.
        let g = gen::erdos_renyi(60, 0.35, 11);
        let o = Orientation::from_degeneracy(&g);
        let cfg = ListingConfig::for_p(4);
        let cluster = Cluster::new(0, (0..20).collect());
        let em: EdgeSet = g
            .edges()
            .filter(|&(u, v)| u < 20 && v < 20)
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        let a = gather_cluster_knowledge(&g, &o, &cluster, &em, cfg.heavy_threshold(60), &cfg);
        let b = gather_cluster_knowledge(&g, &o, &cluster, &em, cfg.heavy_threshold(60), &cfg);
        assert_eq!(a.known_edges, b.known_edges);
        assert!(a.known_edges.windows(2).all(|w| w[0] < w[1]), "not sorted");
        assert_eq!(a.learned_words, b.learned_words);
    }

    #[test]
    fn every_clique_edge_is_known_for_goal_edges() {
        // Random graph: check the §2.4.2 guarantee empirically — every K4
        // containing a goal edge has all its edges in the known pool.
        let g = gen::erdos_renyi(60, 0.35, 11);
        let o = Orientation::from_degeneracy(&g);
        let cfg = ListingConfig::for_p(4);
        // Build one synthetic "cluster": a dense neighbourhood.
        let vertices: Vec<u32> = (0..20).collect();
        let cluster = Cluster::new(0, vertices.clone());
        let em: EdgeSet = g
            .edges()
            .filter(|&(u, v)| u < 20 && v < 20)
            .map(|(u, v)| Edge::new(u, v))
            .collect();
        let k = gather_cluster_knowledge(&g, &o, &cluster, &em, cfg.heavy_threshold(60), &cfg);
        let known: HashSet<(u32, u32)> = k
            .known_edges
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        for clique in graphcore::cliques::list_cliques(&g, 4) {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| k.goal_edges.contains_pair(a, b))
            });
            if !has_goal {
                continue;
            }
            for (i, &a) in clique.iter().enumerate() {
                for &b in &clique[i + 1..] {
                    assert!(
                        known.contains(&(a.min(b), a.max(b))),
                        "edge {{{a},{b}}} of K4 {clique:?} unknown to the cluster"
                    );
                }
            }
        }
    }
}
