//! A simplified stand-in for the `K_4` listing algorithm of Eden, Fiat,
//! Fischer, Kuhn and Oshman (DISC 2019), which runs in `O(n^{5/6 + o(1)})`
//! rounds.
//!
//! The paper improves on Eden et al. in two ways this baseline deliberately
//! lacks: (1) the outer iteration that couples the in-cluster minimum degree
//! with the arboricity of the remaining graph, and (2) the sparsity-aware
//! in-cluster listing. This stand-in therefore runs a **single** pass of the
//! cluster pipeline (no arboricity halving) with the **dense-assumption**
//! exchange, followed by the naive broadcast on whatever is left. It is not a
//! line-by-line reimplementation of Eden et al., but it reproduces the
//! qualitative behaviour the comparison experiment needs: correct output and
//! a round complexity that sits between the naive baseline and the paper's
//! algorithm on dense inputs.
//!
//! The baseline is reached through the [`Engine`](crate::Engine) (algorithm
//! `eden-k4`), whose [`prepare`](crate::ListingAlgorithm::prepare) pass pins
//! the dense exchange and the single-pass iteration cap.

use crate::config::ListingConfig;
use crate::list::list_once;
use crate::result::{phase, Diagnostics, Rounds};
use crate::sink::{CliqueSink, Dedup};
use graphcore::{Graph, Orientation};

/// Runs the Eden-style baseline, emitting every listed `K_4` into `sink`
/// exactly once (the light-node listing and the final broadcast can overlap,
/// so the whole run is deduplicated), and returns the measured rounds,
/// diagnostics, and the largest worker fan-out any stage actually reached.
pub(crate) fn run_streaming(
    graph: &Graph,
    config: &ListingConfig,
    sink: &mut dyn CliqueSink,
) -> (Rounds, Diagnostics, usize) {
    let mut rounds = Rounds::new();
    let mut diagnostics = Diagnostics::default();
    let n = graph.num_vertices();
    if n < 4 || graph.num_edges() == 0 {
        return (rounds, diagnostics, 1);
    }
    let mut sink = Dedup::new(sink);

    let orientation = Orientation::from_degeneracy(graph);
    let a = orientation.max_out_degree().max(1);

    // A single decomposition-and-list pass with the generic (dense) exchange.
    let step = list_once(graph, &orientation, a, config, config.seed, &mut sink);
    rounds.absorb(&step.rounds);
    diagnostics.absorb(&step.diagnostics);
    let mut threads_used = step.threads_used.max(1);

    // No further iterations: finish with the naive broadcast on the remaining
    // graph.
    let remaining = step.remaining;
    if remaining.num_edges() > 0 {
        rounds.add(
            phase::FINAL_BROADCAST,
            (remaining.max_degree() as u64).max(1),
        );
        // Dense local pass over the remainder: shared sharded path.
        threads_used =
            threads_used.max(crate::local::stream_cliques(&remaining, config, &mut sink));
    }
    (rounds, diagnostics, threads_used)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::verify::verify_cliques;
    use graphcore::gen;

    fn eden(seed: u64) -> Engine {
        Engine::builder()
            .p(4)
            .algorithm("eden-k4")
            .seed(seed)
            .build()
            .expect("valid engine")
    }

    #[test]
    fn output_is_complete() {
        let g = gen::erdos_renyi(80, 0.3, 3);
        let (_, listed) = eden(1).collect(&g);
        verify_cliques(&g, 4, &listed).expect("complete K4 listing");
    }

    #[test]
    fn costs_at_least_as_much_as_the_papers_algorithm_on_dense_inputs() {
        let g = gen::erdos_renyi(150, 0.5, 7);
        let fast = Engine::builder().p(4).algorithm("fast-k4").build().unwrap();
        let (ours, _) = fast.collect(&g);
        let (eden_report, _) = eden(7).collect(&g);
        assert!(
            eden_report.total_rounds() >= ours.total_rounds(),
            "eden-style {} < ours {}",
            eden_report.total_rounds(),
            ours.total_rounds()
        );
    }

    #[test]
    fn emission_is_exactly_once() {
        let g = gen::erdos_renyi(90, 0.35, 11);
        let (report, listed) = eden(11).collect(&g);
        let (_, count) = eden(11).count(&g);
        assert_eq!(count as usize, listed.len());
        assert_eq!(report.sink.emitted, count);
    }

    #[test]
    fn trivial_inputs() {
        assert_eq!(eden(0).count(&Graph::new(3)).1, 0);
        assert_eq!(eden(0).count(&gen::path_graph(10)).1, 0);
    }
}
