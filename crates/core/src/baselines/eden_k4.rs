//! A simplified stand-in for the `K_4` listing algorithm of Eden, Fiat,
//! Fischer, Kuhn and Oshman (DISC 2019), which runs in `O(n^{5/6 + o(1)})`
//! rounds.
//!
//! The paper improves on Eden et al. in two ways this baseline deliberately
//! lacks: (1) the outer iteration that couples the in-cluster minimum degree
//! with the arboricity of the remaining graph, and (2) the sparsity-aware
//! in-cluster listing. This stand-in therefore runs a **single** pass of the
//! cluster pipeline (no arboricity halving) with the **dense-assumption**
//! exchange, followed by the naive broadcast on whatever is left. It is not a
//! line-by-line reimplementation of Eden et al., but it reproduces the
//! qualitative behaviour the comparison experiment needs: correct output and
//! a round complexity that sits between the naive baseline and the paper's
//! algorithm on dense inputs.

use crate::config::ListingConfig;
use crate::list::list_once;
use crate::result::{phase, ListingResult};
use crate::sparse_listing::ExchangeMode;
use graphcore::{cliques, Graph, Orientation};

/// Runs the simplified Eden-et-al-style `K_4` baseline.
pub fn eden_style_k4(graph: &Graph, seed: u64) -> ListingResult {
    let mut config = ListingConfig::fast_k4().with_seed(seed);
    config.max_arb_iterations = 4;
    let mut result = ListingResult::new();
    let n = graph.num_vertices();
    if n < 4 || graph.num_edges() == 0 {
        return result;
    }

    let orientation = Orientation::from_degeneracy(graph);
    let a = orientation.max_out_degree().max(1);

    // A single decomposition-and-list pass with the generic (dense) exchange.
    let step = list_once(
        graph,
        &orientation,
        a,
        ExchangeMode::DenseAssumption,
        &config,
        seed,
    );
    result.cliques.extend(step.listed);
    result.rounds.absorb(&step.rounds);
    result.diagnostics.absorb(&step.diagnostics);

    // No further iterations: finish with the naive broadcast on the remaining
    // graph.
    let remaining = step.remaining;
    if remaining.num_edges() > 0 {
        result.rounds.add(
            phase::FINAL_BROADCAST,
            (remaining.max_degree() as u64).max(1),
        );
        for clique in cliques::list_cliques(&remaining, 4) {
            result.cliques.insert(clique);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_against_ground_truth;
    use graphcore::gen;

    #[test]
    fn output_is_complete() {
        let g = gen::erdos_renyi(80, 0.3, 3);
        let result = eden_style_k4(&g, 1);
        verify_against_ground_truth(&g, 4, &result).expect("complete K4 listing");
    }

    #[test]
    fn costs_at_least_as_much_as_the_papers_algorithm_on_dense_inputs() {
        let g = gen::erdos_renyi(150, 0.5, 7);
        let ours = crate::driver::list_kp(&g, &ListingConfig::fast_k4());
        let eden = eden_style_k4(&g, 7);
        assert!(
            eden.rounds.total() >= ours.rounds.total(),
            "eden-style {} < ours {}",
            eden.rounds.total(),
            ours.rounds.total()
        );
    }

    #[test]
    fn trivial_inputs() {
        assert!(eden_style_k4(&Graph::new(3), 0).is_empty());
        assert!(eden_style_k4(&gen::path_graph(10), 0).cliques.is_empty());
    }
}
