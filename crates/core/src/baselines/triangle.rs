//! Triangle listing (`p = 3`) through the same pipeline.
//!
//! Triangle listing in CONGEST is the regime of Chang–Pettie–Zhang and
//! Chang–Saranurak (`~O(n^{1/3})` rounds, tight). The paper's machinery also
//! applies to `p = 3`; this wrapper exists so the experiments can report the
//! `p = 3` point of the `n^{p/(p+2)}` curve next to the `p ≥ 4` points.

use crate::config::ListingConfig;
use crate::driver::list_kp;
use crate::result::ListingResult;
use graphcore::Graph;

/// Lists all triangles of `graph` with the paper's pipeline configured for
/// `p = 3`.
pub fn triangle_listing(graph: &Graph, seed: u64) -> ListingResult {
    list_kp(graph, &ListingConfig::for_p(3).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_against_ground_truth;
    use graphcore::gen;

    #[test]
    fn triangles_are_fully_listed() {
        let g = gen::erdos_renyi(90, 0.3, 5);
        let result = triangle_listing(&g, 1);
        verify_against_ground_truth(&g, 3, &result).expect("complete triangle listing");
    }

    #[test]
    fn triangle_free_graphs() {
        let g = gen::complete_bipartite(15, 15);
        let result = triangle_listing(&g, 1);
        assert!(result.is_empty());
    }
}
