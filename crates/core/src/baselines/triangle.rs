//! Triangle listing (`p = 3`) through the same pipeline.
//!
//! Triangle listing in CONGEST is the regime of Chang–Pettie–Zhang and
//! Chang–Saranurak (`~O(n^{1/3})` rounds, tight). The paper's machinery also
//! applies to `p = 3`; the experiments reach this point of the `n^{p/(p+2)}`
//! curve through an [`Engine`](crate::Engine) built with `p(3)` and the
//! `general` algorithm — this wrapper remains for source compatibility.

use crate::config::ListingConfig;
use crate::result::ListingResult;
use graphcore::Graph;

/// Lists all triangles of `graph` with the paper's pipeline configured for
/// `p = 3`.
#[deprecated(
    since = "0.2.0",
    note = "use cliquelist::Engine with p(3) and algorithm \"general\" instead"
)]
pub fn triangle_listing(graph: &Graph, seed: u64) -> ListingResult {
    #[allow(deprecated)]
    crate::driver::list_kp(graph, &ListingConfig::for_p(3).with_seed(seed))
}

#[cfg(test)]
mod tests {
    use crate::engine::Engine;
    use crate::verify::verify_cliques;
    use graphcore::gen;

    fn triangles(seed: u64) -> Engine {
        Engine::builder()
            .p(3)
            .algorithm("general")
            .seed(seed)
            .build()
            .expect("valid engine")
    }

    #[test]
    fn triangles_are_fully_listed() {
        let g = gen::erdos_renyi(90, 0.3, 5);
        let (_, listed) = triangles(1).collect(&g);
        verify_cliques(&g, 3, &listed).expect("complete triangle listing");
    }

    #[test]
    fn triangle_free_graphs() {
        let g = gen::complete_bipartite(15, 15);
        let (_, count) = triangles(1).count(&g);
        assert_eq!(count, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrapper_matches_the_engine() {
        let g = gen::erdos_renyi(50, 0.3, 9);
        let legacy = super::triangle_listing(&g, 9);
        let (_, cliques) = triangles(9).collect(&g);
        assert_eq!(legacy.cliques, cliques);
    }
}
