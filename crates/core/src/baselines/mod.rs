//! Baseline algorithms the paper compares against (or improves upon).
//!
//! * [`naive`]: the trivial CONGEST listing algorithm — every node ships its
//!   whole neighbourhood to every neighbour, costing `Θ(Δ)` rounds. This is
//!   the baseline every sub-linear algorithm must beat, and it is also the
//!   final step of the paper's driver once the arboricity is small.
//!   Registered with the [`Engine`](crate::Engine) as `naive-broadcast`.
//! * [`eden_k4`]: a simplified stand-in for the `K_4` algorithm of Eden,
//!   Fiat, Fischer, Kuhn and Oshman (DISC 2019), which runs in
//!   `O(n^{5/6+o(1)})` rounds: a single decomposition pass (no arboricity
//!   iteration) with a generic, non-sparsity-aware in-cluster listing.
//!   Registered as `eden-k4`.
//! * Triangle listing (`p = 3`, the regime of Chang–Pettie–Zhang and
//!   Chang–Saranurak, `~O(n^{1/3})` rounds) runs through the same pipeline:
//!   build an [`Engine`](crate::Engine) with `p(3)` and the `general`
//!   algorithm.
//!
//! The engine registry ([`cliquelist::algorithms`](crate::algorithms)) is the
//! way to enumerate and run the baselines; the pre-Engine free functions were
//! removed after their one-release deprecation window.

pub mod eden_k4;
pub mod naive;

pub use naive::{
    naive_broadcast_rounds, simulate_naive_broadcast, simulate_naive_broadcast_with_faults,
    FaultySimulation, NaiveBroadcastProgram, ReliableNaiveBroadcastProgram,
};
