//! Baseline algorithms the paper compares against (or improves upon).
//!
//! * [`naive`]: the trivial CONGEST listing algorithm — every node ships its
//!   whole neighbourhood to every neighbour, costing `Θ(Δ)` rounds. This is
//!   the baseline every sub-linear algorithm must beat, and it is also the
//!   final step of the paper's driver once the arboricity is small.
//!   Registered with the [`Engine`](crate::Engine) as `naive-broadcast`.
//! * [`eden_k4`]: a simplified stand-in for the `K_4` algorithm of Eden,
//!   Fiat, Fischer, Kuhn and Oshman (DISC 2019), which runs in
//!   `O(n^{5/6+o(1)})` rounds: a single decomposition pass (no arboricity
//!   iteration) with a generic, non-sparsity-aware in-cluster listing.
//!   Registered as `eden-k4`.
//! * [`triangle`]: triangle listing through the same machinery (`p = 3`),
//!   the regime solved by Chang et al. and Chang–Saranurak, used as a
//!   reference point in the experiments. Reached through the engine with
//!   `p(3)` and the `general` algorithm.
//!
//! The free functions in these modules are deprecated wrappers; the engine
//! registry ([`cliquelist::algorithms`](crate::algorithms)) is the supported
//! way to enumerate and run the baselines.

pub mod eden_k4;
pub mod naive;
pub mod triangle;

#[allow(deprecated)]
pub use eden_k4::eden_style_k4;
#[allow(deprecated)]
pub use naive::naive_broadcast_listing;
pub use naive::{naive_broadcast_rounds, simulate_naive_broadcast, NaiveBroadcastProgram};
#[allow(deprecated)]
pub use triangle::triangle_listing;
