//! The trivial broadcast baseline: every node sends its full neighbourhood to
//! every neighbour and lists the cliques it sees. `Θ(Δ)` rounds in CONGEST.
//!
//! The analytic baseline is reached through the [`Engine`](crate::Engine)
//! (algorithm `naive-broadcast`); [`simulate_naive_broadcast`] additionally
//! runs the same protocol message-by-message on the `congest` simulator and
//! is the validation path for the analytic round count.

use crate::config::ListingConfig;
use crate::result::{phase, ListingResult, Rounds};
use crate::sink::CliqueSink;
use congest::{
    Context, FaultPlan, MemorySink, Network, NetworkConfig, NodeId, NodeProgram, Packet,
    ReliableTransport, RoundReport, Status, Topology, TraceEvent, TransportStats,
};
use graphcore::{cliques, Graph};
use std::collections::HashSet;
use std::sync::Arc;

/// Number of CONGEST rounds the naive broadcast takes on `graph`: the maximum
/// degree (each edge must carry one identifier per neighbour of its endpoint,
/// pipelined one per round).
pub fn naive_broadcast_rounds(graph: &Graph) -> u64 {
    graph.max_degree() as u64
}

/// Runs the naive baseline analytically: charges `Δ` rounds and emits the
/// full listing into `sink` (every clique is seen by each of its members,
/// since a member learns all edges among its neighbours). Also returns the
/// worker fan-out the local enumeration actually reached.
pub(crate) fn run_streaming(
    graph: &Graph,
    config: &ListingConfig,
    sink: &mut dyn CliqueSink,
) -> (Rounds, usize) {
    let mut rounds = Rounds::new();
    if graph.num_edges() == 0 {
        return (rounds, 1);
    }
    rounds.add(phase::FINAL_BROADCAST, naive_broadcast_rounds(graph));
    // After the broadcast every node knows its closed neighbourhood's edges,
    // so the union of node outputs is one dense local enumeration — the
    // engine may shard it across threads without changing the output.
    let threads_used = crate::local::stream_cliques(graph, config, sink);
    (rounds, threads_used)
}

/// Runs the message-level naive broadcast ([`NaiveBroadcastProgram`]) on the
/// CONGEST topology of `graph` and returns the simulator report together with
/// the union of the node outputs.
///
/// This is the simulated counterpart of the analytic `naive-broadcast`
/// engine algorithm; the two must agree on the listing, and the simulated
/// round count matches [`naive_broadcast_rounds`] up to `O(1)` start-up
/// slack. With the `parallel` feature enabled, node programs are stepped on
/// all cores (deterministically — see `congest`'s parallel executor), which
/// is what makes large-`n` simulations tractable.
pub fn simulate_naive_broadcast(
    graph: &Graph,
    p: usize,
    max_rounds: u64,
) -> (RoundReport, ListingResult) {
    let topology = Topology::from_edge_list(graph.num_vertices(), graph.edges());
    let mut net = Network::new(topology, NetworkConfig::default(), |_| {
        NaiveBroadcastProgram::new(p)
    });
    #[cfg(feature = "parallel")]
    let report = net.run_parallel(max_rounds);
    #[cfg(not(feature = "parallel"))]
    let report = net.run(max_rounds);

    let mut result = ListingResult::new();
    result
        .rounds
        .add(phase::FINAL_BROADCAST, report.simulated_rounds);
    for program in net.into_programs() {
        for clique in program.listed {
            result.cliques.insert(clique);
        }
    }
    (report, result)
}

/// Everything a fault-injected message-level run produced: the simulator
/// report, the (possibly partial) listing, the aggregated transport counters
/// and the number of messages the fault plan destroyed in flight.
#[derive(Clone, Debug)]
pub struct FaultySimulation {
    /// The simulator's round report.
    pub report: RoundReport,
    /// Rounds plus the union of node listings (partial if transports gave up
    /// or nodes crash-stopped).
    pub result: ListingResult,
    /// Transport counters summed across every node.
    pub transport: TransportStats,
    /// Messages destroyed in flight by the fault plan (sum of the
    /// [`TraceEvent::Dropped`] events).
    pub dropped_messages: u64,
}

/// Runs the naive broadcast message-by-message under `plan`, with every node
/// wrapping its sends in a [`ReliableTransport`] endpoint.
///
/// This is the fault-model counterpart of [`simulate_naive_broadcast`]: the
/// same protocol, but each neighbour-identifier broadcast goes through the
/// ack/retransmit transport, so listings survive seeded message loss —
/// byte-identical to the fault-free listing, at the cost of the extra rounds
/// and overhead words recorded in the returned [`FaultySimulation`]. The run
/// is deterministic in `(graph, p, plan)`: the fault decisions are
/// content-addressed by `(round, link)` and the transport holds no
/// randomness, so repeated runs (and parallel-executor runs) replay exactly.
///
/// # Panics
///
/// Panics if `plan` references nodes or links outside the graph's topology.
pub fn simulate_naive_broadcast_with_faults(
    graph: &Graph,
    p: usize,
    max_rounds: u64,
    plan: FaultPlan,
) -> FaultySimulation {
    let topology = Topology::from_edge_list(graph.num_vertices(), graph.edges());
    let mut net = Network::new(topology, NetworkConfig::default(), |_| {
        ReliableNaiveBroadcastProgram::new(p)
    });
    net.set_fault_plan(plan)
        .unwrap_or_else(|e| panic!("fault plan does not fit the topology: {e}"));
    let sink = Arc::new(MemorySink::new());
    net.set_trace_sink(sink.clone());
    #[cfg(feature = "parallel")]
    let report = net.run_parallel(max_rounds);
    #[cfg(not(feature = "parallel"))]
    let report = net.run(max_rounds);

    let mut result = ListingResult::new();
    result
        .rounds
        .add(phase::FINAL_BROADCAST, report.simulated_rounds);
    let mut transport = TransportStats::default();
    for program in net.into_programs() {
        transport.absorb(&program.transport.stats());
        for clique in program.listed {
            result.cliques.insert(clique);
        }
    }
    let dropped_messages = sink
        .events()
        .iter()
        .map(|e| match e {
            TraceEvent::Dropped { messages, .. } => *messages,
            _ => 0,
        })
        .sum();
    FaultySimulation {
        report,
        result,
        transport,
        dropped_messages,
    }
}

/// The message-level naive broadcast with every send wrapped in a
/// [`ReliableTransport`] endpoint: the fault-tolerant twin of
/// [`NaiveBroadcastProgram`], used by [`simulate_naive_broadcast_with_faults`].
pub struct ReliableNaiveBroadcastProgram {
    /// Clique size to list.
    pub p: usize,
    /// Adjacency knowledge accumulated so far: `(a, b)` pairs with `a < b`.
    pub known: HashSet<(u32, u32)>,
    /// Neighbour identifiers left to broadcast.
    pending: Vec<u32>,
    /// The cliques this node has listed (computed when it finishes).
    pub listed: Vec<Vec<u32>>,
    /// This node's transport endpoint.
    pub transport: ReliableTransport<u32>,
    done_broadcasting: bool,
}

impl ReliableNaiveBroadcastProgram {
    /// Creates the program for one node.
    pub fn new(p: usize) -> Self {
        ReliableNaiveBroadcastProgram {
            p,
            known: HashSet::new(),
            pending: Vec::new(),
            listed: Vec::new(),
            transport: ReliableTransport::with_defaults(),
            done_broadcasting: false,
        }
    }

    fn list_local(&mut self, me: u32, n: usize) {
        let edges: Vec<(u32, u32)> = self.known.iter().copied().collect();
        if let Ok(local) = Graph::from_edges(n, &edges) {
            for clique in cliques::list_cliques(&local, self.p) {
                if clique.contains(&me) {
                    self.listed.push(clique);
                }
            }
        }
    }
}

impl NodeProgram for ReliableNaiveBroadcastProgram {
    type Message = Packet<u32>;

    fn on_start(&mut self, ctx: &mut Context<'_, Packet<u32>>) {
        let me = ctx.id().index() as u32;
        self.pending = ctx.neighbors().iter().map(|v| v.index() as u32).collect();
        for &w in &self.pending {
            self.known.insert((me.min(w), me.max(w)));
        }
    }

    fn on_round(
        &mut self,
        ctx: &mut Context<'_, Packet<u32>>,
        incoming: &[(NodeId, Packet<u32>)],
    ) -> Status {
        let me = ctx.id().index() as u32;
        for (sender, w) in self.transport.poll(ctx, incoming) {
            let s = sender.index() as u32;
            if s != w {
                self.known.insert((s.min(w), s.max(w)));
            }
        }
        // One neighbour identifier per round, like the unreliable program —
        // but through the transport, which paces, acks and retransmits.
        if let Some(w) = self.pending.pop() {
            self.transport.broadcast(ctx, w);
            return Status::Running;
        }
        if !self.transport.idle() {
            return Status::Running;
        }
        if !self.done_broadcasting {
            self.done_broadcasting = true;
            self.list_local(me, ctx.num_nodes());
        }
        // Done nodes are still stepped whenever their inbox is non-empty, so
        // late retransmissions from slower neighbours keep getting acked.
        Status::Done
    }

    fn message_words(&self, message: &Packet<u32>) -> u32 {
        message.words(1)
    }
}

/// A message-level implementation of the naive baseline for the CONGEST
/// simulator: each node broadcasts the identifiers of its neighbours, one per
/// round per edge, then lists the `p`-cliques it can certify.
///
/// Used in tests and examples to validate that the analytic round count of
/// [`naive_broadcast_rounds`] matches an actual synchronous execution.
pub struct NaiveBroadcastProgram {
    /// Clique size to list.
    pub p: usize,
    /// Adjacency knowledge accumulated so far: `(a, b)` pairs with `a < b`.
    pub known: HashSet<(u32, u32)>,
    /// Neighbour identifiers left to broadcast.
    pending: Vec<u32>,
    /// The cliques this node has listed (computed when it finishes).
    pub listed: Vec<Vec<u32>>,
    done_broadcasting: bool,
}

impl NaiveBroadcastProgram {
    /// Creates the program for one node.
    pub fn new(p: usize) -> Self {
        NaiveBroadcastProgram {
            p,
            known: HashSet::new(),
            pending: Vec::new(),
            listed: Vec::new(),
            done_broadcasting: false,
        }
    }

    fn list_local(&mut self, me: u32, n: usize) {
        let edges: Vec<(u32, u32)> = self.known.iter().copied().collect();
        if let Ok(local) = Graph::from_edges(n, &edges) {
            for clique in cliques::list_cliques(&local, self.p) {
                if clique.contains(&me) {
                    self.listed.push(clique);
                }
            }
        }
    }
}

impl NodeProgram for NaiveBroadcastProgram {
    type Message = u32;

    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        let me = ctx.id().index() as u32;
        self.pending = ctx.neighbors().iter().map(|v| v.index() as u32).collect();
        for &w in &self.pending {
            self.known.insert((me.min(w), me.max(w)));
        }
    }

    fn on_round(&mut self, ctx: &mut Context<'_, u32>, incoming: &[(NodeId, u32)]) -> Status {
        let me = ctx.id().index() as u32;
        // Record edges reported by neighbours: sender s says "w is my
        // neighbour", i.e. the edge {s, w} exists.
        for &(sender, w) in incoming {
            let s = sender.index() as u32;
            if s != w {
                self.known.insert((s.min(w), s.max(w)));
            }
        }
        // Broadcast one pending neighbour identifier per round (one word per
        // edge per round — the CONGEST bandwidth).
        if let Some(w) = self.pending.pop() {
            ctx.broadcast(w);
            return Status::Running;
        }
        if !self.done_broadcasting {
            self.done_broadcasting = true;
            self.list_local(me, ctx.num_nodes());
        }
        Status::Done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::verify::verify_cliques;
    use congest::{Network, NetworkConfig, Topology};
    use graphcore::gen;

    fn naive_engine(p: usize) -> Engine {
        Engine::builder()
            .p(p)
            .algorithm("naive-broadcast")
            .build()
            .expect("valid engine")
    }

    #[test]
    fn analytic_baseline_lists_everything() {
        let g = gen::erdos_renyi(60, 0.3, 3);
        let (report, cliques) = naive_engine(4).collect(&g);
        verify_cliques(&g, 4, &cliques).expect("complete listing");
        assert_eq!(report.total_rounds(), g.max_degree() as u64);
    }

    #[test]
    fn simulated_baseline_matches_analytic_round_count() {
        let g = gen::erdos_renyi(24, 0.35, 5);
        let topo = Topology::from_edge_list(g.num_vertices(), g.edges());
        let mut net = Network::new(topo, NetworkConfig::default(), |_| {
            NaiveBroadcastProgram::new(3)
        });
        let report = net.run(10_000);
        assert!(report.terminated);
        // The simulated execution needs Δ broadcast rounds plus O(1) slack for
        // start-up and the final listing round.
        let delta = naive_broadcast_rounds(&g);
        assert!(report.simulated_rounds >= delta);
        assert!(report.simulated_rounds <= delta + 3);

        // Union of outputs equals ground truth.
        let mut union: HashSet<Vec<u32>> = HashSet::new();
        for (_, program) in net.programs() {
            for c in &program.listed {
                union.insert(c.clone());
            }
        }
        let truth: HashSet<Vec<u32>> = cliques::list_cliques(&g, 3).into_iter().collect();
        assert_eq!(union, truth);
    }

    #[test]
    fn simulate_helper_agrees_with_analytic() {
        let g = gen::erdos_renyi(30, 0.3, 8);
        let (report, result) = simulate_naive_broadcast(&g, 4, 10_000);
        assert!(report.terminated);
        let (_, analytic) = naive_engine(4).collect(&g);
        let mut simulated: Vec<Vec<u32>> = result.cliques.iter().cloned().collect();
        simulated.sort_unstable();
        assert_eq!(simulated, analytic);
        assert!(report.simulated_rounds >= naive_broadcast_rounds(&g));
    }

    #[test]
    fn empty_graph_costs_nothing() {
        let (report, count) = naive_engine(4).count(&Graph::new(10));
        assert_eq!(count, 0);
        assert_eq!(report.total_rounds(), 0);
    }

    #[test]
    fn reliable_simulation_matches_the_plain_one_when_fault_free() {
        let g = gen::erdos_renyi(20, 0.4, 13);
        let (_, plain) = simulate_naive_broadcast(&g, 3, 10_000);
        let faulty = simulate_naive_broadcast_with_faults(&g, 3, 10_000, FaultPlan::fault_free());
        assert!(faulty.report.terminated);
        assert_eq!(faulty.result.cliques, plain.cliques);
        assert_eq!(faulty.transport.retransmits, 0);
        assert_eq!(faulty.dropped_messages, 0);
    }

    #[test]
    fn reliable_simulation_survives_seeded_loss_with_the_same_listing() {
        let g = gen::erdos_renyi(20, 0.4, 13);
        let reference =
            simulate_naive_broadcast_with_faults(&g, 3, 10_000, FaultPlan::fault_free());
        let plan = FaultPlan::builder(0xBEEF)
            .drop_probability(0.05)
            .build()
            .unwrap();
        let lossy = simulate_naive_broadcast_with_faults(&g, 3, 20_000, plan.clone());
        assert!(lossy.report.terminated);
        assert_eq!(
            lossy.result.cliques, reference.result.cliques,
            "reliable transport must mask seeded loss"
        );
        assert!(lossy.dropped_messages > 0, "the plan must actually drop");
        assert!(lossy.transport.retransmits > 0);
        assert!(lossy.report.simulated_rounds >= reference.report.simulated_rounds);
        // Determinism: the same (graph, p, plan) replays byte-identically.
        let again = simulate_naive_broadcast_with_faults(&g, 3, 20_000, plan);
        assert_eq!(again.result.cliques, lossy.result.cliques);
        assert_eq!(again.transport, lossy.transport);
        assert_eq!(again.report.simulated_rounds, lossy.report.simulated_rounds);
    }
}
