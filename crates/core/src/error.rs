//! Typed configuration errors surfaced by the [`Engine`](crate::Engine)
//! builder.
//!
//! Historically the free-function entry points asserted their preconditions
//! (`assert!(p >= 3)`) and panicked on bad configurations. The builder
//! validates every parameter up front and returns a [`ConfigError`] instead,
//! so services embedding the crate can reject bad requests without unwinding.

use std::fmt;

/// A rejected engine configuration.
///
/// Returned by [`EngineBuilder::build`](crate::EngineBuilder::build) and
/// [`ListingConfig::validate`](crate::ListingConfig::validate); every variant
/// corresponds to one precondition that used to be an `assert!`/`panic!` in
/// the free-function API.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// No clique size was set on the builder.
    MissingCliqueSize,
    /// The clique size is below the smallest listable clique (`p ≥ 3`).
    CliqueSizeTooSmall {
        /// The rejected clique size.
        p: usize,
    },
    /// The selected algorithm does not support the requested clique size
    /// (e.g. the fast `K_4` algorithm of Theorem 1.2 is specialised to
    /// `p = 4`).
    UnsupportedCliqueSize {
        /// Registry name of the selected algorithm.
        algorithm: &'static str,
        /// The rejected clique size.
        p: usize,
        /// Smallest supported clique size.
        min: usize,
        /// Largest supported clique size (`None` = unbounded).
        max: Option<usize>,
    },
    /// The requested algorithm name is not in the registry.
    UnknownAlgorithm {
        /// The name that failed to resolve.
        name: String,
    },
    /// Both a registered algorithm name and a custom implementation were
    /// set on the builder; the selection is ambiguous.
    ConflictingAlgorithmSelection {
        /// The registered name that conflicts with the custom algorithm.
        name: String,
    },
    /// An iteration cap that must be at least 1 was set to zero (a zero cap
    /// would silently skip the whole pipeline).
    ZeroIterationCap {
        /// Name of the offending field.
        field: &'static str,
    },
    /// `words_per_edge` was zero; every edge occupies at least one word on
    /// the wire.
    ZeroWordsPerEdge,
    /// `Parallelism::Threads(0)` was requested; a run needs at least one
    /// worker thread (use `Parallelism::Off` for sequential execution).
    ZeroThreads,
    /// An exponent parameter left its valid open interval (e.g. the heavy
    /// threshold exponent must satisfy `0 < γ < 1`).
    BadExponent {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A multiplicative factor was negative, zero where forbidden, or not
    /// finite.
    BadFactor {
        /// Name of the offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// `Resilience::max_rounds` was set to `Some(0)`: a zero round budget
    /// would abort every run before it starts. Use `None` for an unbounded
    /// budget.
    ZeroRoundBudget,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::MissingCliqueSize => {
                write!(f, "no clique size set: call EngineBuilder::p before build")
            }
            ConfigError::CliqueSizeTooSmall { p } => {
                write!(f, "clique size must be at least 3 (got {p})")
            }
            ConfigError::UnsupportedCliqueSize {
                algorithm,
                p,
                min,
                max,
            } => match max {
                Some(max) => write!(
                    f,
                    "algorithm `{algorithm}` supports clique sizes {min}..={max} (got {p})"
                ),
                None => write!(
                    f,
                    "algorithm `{algorithm}` supports clique sizes >= {min} (got {p})"
                ),
            },
            ConfigError::UnknownAlgorithm { name } => {
                write!(
                    f,
                    "unknown algorithm `{name}`; see cliquelist::algorithms()"
                )
            }
            ConfigError::ConflictingAlgorithmSelection { name } => {
                write!(
                    f,
                    "both algorithm(\"{name}\") and a custom algorithm were set; choose one"
                )
            }
            ConfigError::ZeroIterationCap { field } => {
                write!(f, "iteration cap `{field}` must be at least 1")
            }
            ConfigError::ZeroWordsPerEdge => {
                write!(f, "words_per_edge must be at least 1")
            }
            ConfigError::ZeroThreads => {
                write!(
                    f,
                    "Parallelism::Threads needs at least 1 thread; use Parallelism::Off for \
                     sequential runs"
                )
            }
            ConfigError::BadExponent { field, value } => {
                write!(f, "exponent `{field}` is outside its valid range: {value}")
            }
            ConfigError::BadFactor { field, value } => {
                write!(
                    f,
                    "factor `{field}` must be finite and non-negative: {value}"
                )
            }
            ConfigError::ZeroRoundBudget => {
                write!(
                    f,
                    "resilience.max_rounds must be at least 1; use None for an unbounded budget"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offending_parameter() {
        let e = ConfigError::CliqueSizeTooSmall { p: 2 };
        assert!(e.to_string().contains("at least 3"));
        let e = ConfigError::UnsupportedCliqueSize {
            algorithm: "fast-k4",
            p: 5,
            min: 4,
            max: Some(4),
        };
        assert!(e.to_string().contains("fast-k4"));
        assert!(e.to_string().contains('5'));
        let e = ConfigError::UnsupportedCliqueSize {
            algorithm: "general",
            p: 2,
            min: 3,
            max: None,
        };
        assert!(e.to_string().contains(">= 3"));
        let e = ConfigError::UnknownAlgorithm {
            name: "quantum".into(),
        };
        assert!(e.to_string().contains("quantum"));
        let e = ConfigError::ConflictingAlgorithmSelection {
            name: "fast-k4".into(),
        };
        assert!(e.to_string().contains("choose one"));
        let e = ConfigError::ZeroIterationCap {
            field: "max_arb_iterations",
        };
        assert!(e.to_string().contains("max_arb_iterations"));
        let e = ConfigError::BadExponent {
            field: "heavy_exponent",
            value: 1.5,
        };
        assert!(e.to_string().contains("1.5"));
    }
}
