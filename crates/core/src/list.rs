//! Algorithm LIST (Theorem 2.8): halve the arboricity while listing every
//! `K_p` that touches a removed edge.
//!
//! LIST repeatedly applies ARB-LIST to the pair `(E_s, E_r)`, starting from
//! `E_s = ∅`, `E_r = E`. Each application moves the listed goal edges `Ê_m`
//! out of the graph, grows `E_s` by the decomposition's low-arboricity part
//! and shrinks `E_r` by at least a factor 4, so after `O(log n)` iterations
//! `E_r` is empty and the surviving edge set `E_s` has arboricity at most
//! `n^δ · log n ≤ A/2`, together with an explicit orientation.
//!
//! Listed instances are streamed into the caller's [`CliqueSink`]; for the
//! general algorithm successive ARB-LIST invocations emit disjoint clique
//! sets because every emitted clique contains a goal edge and goal edges are
//! removed from the working graph before the next invocation. The fast-`K_4`
//! variant's light-node listing can emit cliques without a goal edge, so its
//! driver wraps the whole run in a [`Dedup`](crate::sink::Dedup) layer.

use crate::arb_list::arb_list;
use crate::config::ListingConfig;
use crate::result::{Diagnostics, Rounds};
use crate::sink::CliqueSink;
use graphcore::{EdgeSet, Graph, Orientation};

/// Result of one LIST invocation (the listed cliques are streamed to the
/// sink, not returned).
#[derive(Clone, Debug, Default)]
pub struct ListOutcome {
    /// The surviving graph `(V, Ẽ_s)`, whose arboricity is at most half the
    /// input bound.
    pub remaining: Graph,
    /// An orientation of the surviving graph with correspondingly bounded
    /// out-degree.
    pub remaining_orientation: Orientation,
    /// Round breakdown.
    pub rounds: Rounds,
    /// Diagnostics.
    pub diagnostics: Diagnostics,
    /// Largest worker fan-out any ARB-LIST invocation actually reached
    /// (0 when no invocation ran; callers clamp to at least 1).
    pub threads_used: usize,
}

/// Runs LIST once on `graph` with the given orientation and arboricity bound,
/// emitting every listed `K_p` (each instance with at least one edge outside
/// the returned graph) into `sink`.
///
/// `arboricity_bound` is the paper's `A = n^d` (we use the maximum out-degree
/// of `orientation`); the caller must ensure `A / (2 log n) > 1`, which the
/// driver's termination condition guarantees.
pub fn list_once(
    graph: &Graph,
    orientation: &Orientation,
    arboricity_bound: usize,
    config: &ListingConfig,
    seed: u64,
    sink: &mut dyn CliqueSink,
) -> ListOutcome {
    let n = graph.num_vertices();
    let slack = config.arboricity_slack(n);

    let mut outcome = ListOutcome {
        remaining: graph.clone(),
        remaining_orientation: orientation.clone(),
        ..Default::default()
    };

    // Theorem 2.8 requires n^{p/(p+2)} < A / (2 log n); when the arboricity is
    // already that small the invocation is a no-op and the caller's final
    // broadcast handles the rest.
    if (arboricity_bound as f64) / slack <= 1.0 {
        return outcome;
    }

    // n^δ = A / (2 log n)  ⇒  δ = ln(A / slack) / ln n.
    let target = (arboricity_bound as f64 / slack).max(1.5);
    let delta = (target.ln() / (n.max(2) as f64).ln()).clamp(0.05, 0.95);

    let mut current = graph.clone();
    let mut current_orientation = orientation.clone();
    let mut es = EdgeSet::new();
    let mut es_out: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut er = graph.edge_set();

    let mut iterations = 0usize;
    while !er.is_empty() && iterations < config.max_arb_iterations {
        iterations += 1;
        let step = arb_list(
            &current,
            &current_orientation,
            &er,
            arboricity_bound,
            delta,
            config,
            seed.wrapping_add(iterations as u64),
            sink,
        );
        outcome.rounds.absorb(&step.rounds);
        outcome.diagnostics.absorb(&step.diagnostics);
        outcome.threads_used = outcome.threads_used.max(step.threads_used);

        // Merge E'_s and its orientation.
        for e in step.es_added.iter() {
            es.insert(e);
        }
        for (v, list) in step.es_out.iter().enumerate() {
            es_out[v].extend(list.iter().copied());
        }

        // Remove the listed goal edges from the working graph.
        if !step.goal_edges.is_empty() {
            current = current.without_edges(&step.goal_edges);
            current_orientation = current_orientation.restrict_to(&current.edge_set());
        }

        let previous_er = er.len();
        er = step.er_new;
        if er.len() >= previous_er && previous_er > 0 {
            // No progress (degenerate configuration); fold the remainder into
            // E_s and stop — correctness is preserved because unlisted edges
            // simply survive to the next driver iteration.
            break;
        }
    }

    // Whatever is left of E_r survives as part of the remaining graph.
    for e in er.iter() {
        es.insert(e);
        es_out[e.u() as usize].push(e.v());
    }

    outcome.remaining = Graph::from_edge_set(n, &es).expect("E_s endpoints are in range");
    outcome.remaining_orientation = Orientation::from_out_lists(es_out);
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use graphcore::{gen, Clique};
    use std::collections::HashSet;

    fn run_list(graph: &Graph, p: usize) -> (ListOutcome, HashSet<Clique>) {
        let orientation = Orientation::from_degeneracy(graph);
        let a = orientation.max_out_degree().max(1);
        let config = ListingConfig::for_p(p);
        let mut sink = CollectSink::new();
        let outcome = list_once(graph, &orientation, a, &config, 5, &mut sink);
        (outcome, sink.into_cliques())
    }

    #[test]
    fn removed_edges_have_their_cliques_listed() {
        let g = gen::erdos_renyi(120, 0.3, 7);
        let (out, listed) = run_list(&g, 4);
        let remaining_edges = out.remaining.edge_set();
        for clique in graphcore::cliques::list_cliques(&g, 4) {
            let touches_removed = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| g.has_edge(a, b) && !remaining_edges.contains_pair(a, b))
            });
            if touches_removed {
                assert!(
                    listed.contains(&clique),
                    "K4 {clique:?} touching a removed edge was not listed"
                );
            }
        }
    }

    #[test]
    fn arboricity_roughly_halves() {
        let g = gen::erdos_renyi(150, 0.4, 3);
        let orientation = Orientation::from_degeneracy(&g);
        let a = orientation.max_out_degree().max(1);
        let (out, _) = run_list(&g, 4);
        let new_bound = out.remaining_orientation.max_out_degree();
        assert!(
            new_bound <= a,
            "out-degree bound did not decrease: {new_bound} > {a}"
        );
        // The surviving orientation covers exactly the surviving edges.
        assert!(out.remaining_orientation.covers_exactly(&out.remaining));
    }

    #[test]
    fn listed_cliques_are_real() {
        let g = gen::erdos_renyi(100, 0.3, 9);
        let (_, listed) = run_list(&g, 4);
        for clique in &listed {
            assert!(
                graphcore::cliques::is_clique(&g, clique),
                "{clique:?} is not a clique"
            );
        }
    }

    #[test]
    fn sparse_input_passes_through() {
        let g = gen::cycle_graph(60);
        let (out, listed) = run_list(&g, 4);
        assert!(listed.is_empty());
        assert_eq!(out.remaining.num_edges(), g.num_edges());
    }

    #[test]
    fn terminates_within_iteration_cap() {
        let g = gen::erdos_renyi(140, 0.35, 21);
        let (out, _) = run_list(&g, 5);
        assert!(out.diagnostics.arb_iterations <= ListingConfig::for_p(5).max_arb_iterations);
        assert!(out.diagnostics.decompositions >= 1);
    }
}
