//! Algorithm ARB-LIST (Theorem 2.9).
//!
//! One invocation of ARB-LIST takes the current graph `G = (V, E_s ∪ E_r)`
//! together with an orientation of out-degree at most the arboricity bound
//! `n^d`, runs the expander decomposition on `E_r`, brings the relevant
//! outside edges into every cluster, performs the sparsity-aware in-cluster
//! listing, and returns
//!
//! * `Ê_m` — the goal edges, all of whose `K_p` instances were listed and
//!   which can therefore be removed from the graph;
//! * `E'_s` — new low-arboricity edges (with their peeling orientation) to be
//!   merged into `E_s`;
//! * `Ê_r`  — the remaining edges (`E'_r` plus the bad-bad edges), at most a
//!   quarter of the incoming `E_r`.
//!
//! The listed instances are streamed into the caller's [`CliqueSink`]. For
//! the general algorithm, one invocation emits each clique at most once (a
//! per-invocation [`Dedup`] layer absorbs the cross-cluster overlap), and
//! cliques listed by *different* invocations are structurally distinct
//! because every listed clique contains a goal edge and goal edges are
//! removed from the graph. For the fast-`K_4` variant the emission can
//! contain duplicates (the light-node listing overlaps the in-cluster
//! listing and later invocations): its callers wrap the **whole run** in a
//! single `Dedup` — see `driver::run_congest` — which is both necessary for
//! cross-invocation duplicates and sufficient for the in-invocation ones, so
//! this function adds no second layer.
//!
//! # Cluster-parallel execution
//!
//! The paper's clusters are independent by construction: each one pools
//! knowledge, reshuffles edges and lists the `K_p` instances of its own goal
//! edges without reading any other cluster's state (Sections 2.4.2–2.4.3).
//! This function exploits that with a plan/execute split: the per-cluster
//! work is a pure *produce* step (`run_cluster` — knowledge gathering,
//! in-cluster listing and the fast-`K_4` light listing, all emitting into a
//! private [`ShardBuffer`]), and the mutation of the invocation outcome plus
//! the replay into the real sink is a *consume* step executed **only on the
//! calling thread, in ascending cluster order**. Under the `parallel`
//! feature and a [`Parallelism`](crate::Parallelism) grant above one thread,
//! contiguous cluster ranges (size-balanced by goal-edge count through
//! [`balanced_ranges`](graphcore::ordered_merge::balanced_ranges)) fan out
//! over the same
//! [`ordered_merge`](graphcore::ordered_merge) orchestrator that drives the
//! sharded dense enumeration; the sequential path runs the identical
//! produce/consume code inline, so the emitted clique sequence, the round
//! breakdown and the diagnostics are byte-identical at any thread count.
//! Every cluster's rounds are always accounted — consumption never stops
//! early — while replay into a saturated sink is skipped, matching the sink
//! contract's "saturation skips local enumeration, never communication".

use crate::cluster_knowledge::gather_cluster_knowledge;
use crate::config::{ListingConfig, Variant};
use crate::result::{phase, Diagnostics, Rounds};
use crate::sink::{CliqueSink, Dedup, ShardBuffer};
use crate::sparse_listing::{cluster_listing, SparseListingInput};
use expander::{decompose, Cluster};
use graphcore::{EdgeSet, Graph, Orientation};
use std::collections::BTreeMap;

/// Cluster-range tasks planned per worker thread by the cluster fan-out:
/// oversubscription lets fast workers steal the tail instead of idling
/// behind one expensive cluster, while each task stays large enough to
/// amortise its buffer.
#[cfg(feature = "parallel")]
const CLUSTER_TASKS_PER_THREAD: usize = 4;

/// Result of one ARB-LIST invocation (the listed cliques are streamed to the
/// sink, not returned).
#[derive(Clone, Debug, Default)]
pub struct ArbListOutcome {
    /// The goal edges `Ê_m` (removed from the graph by the caller).
    pub goal_edges: EdgeSet,
    /// New `E_s` edges produced by the decomposition's peeling.
    pub es_added: EdgeSet,
    /// Out-neighbour lists of the peeling orientation of `es_added`.
    pub es_out: Vec<Vec<u32>>,
    /// The new remainder `Ê_r`.
    pub er_new: EdgeSet,
    /// Round breakdown of this invocation.
    pub rounds: Rounds,
    /// Diagnostics of this invocation.
    pub diagnostics: Diagnostics,
    /// Worker threads the cluster fan-out actually used (1 = the clusters ran
    /// inline on the calling thread). Never exceeds the number of cluster
    /// tasks, so a large grant over few clusters is not misreported as real
    /// fan-out.
    pub threads_used: usize,
}

/// Everything one cluster contributes back to its ARB-LIST invocation: the
/// work-item payload of the cluster fan-out. Produced (possibly on a worker
/// thread) without touching any shared mutable state; merged into the
/// [`ArbListOutcome`] and replayed into the sink in ascending cluster order.
struct ClusterYield {
    goal_edges: EdgeSet,
    bad_edges: EdgeSet,
    cluster_edge_count: usize,
    max_learned_words: u64,
    heavy_upload_rounds: u64,
    light_probe_rounds: u64,
    listing_rounds: Rounds,
    light_listing_rounds: u64,
    emissions: ShardBuffer,
}

/// A [`ShardBuffer`] whose saturation mirrors a shared stop flag: the
/// consume step raises the flag once the *real* sink saturates, and
/// producers — inline or on worker threads — observe it through the
/// ordinary [`CliqueSink::is_saturated`] probes of the in-cluster listing,
/// stopping their enumeration early instead of buffering cliques that the
/// replay guard would discard anyway.
///
/// The flag never changes what reaches the sink: it is raised only while
/// the sink is saturated, consumption is strictly ascending, and a yield
/// consumed after the raise is not replayed at all — so a buffer truncated
/// by the flag is never the one being replayed. It is purely a
/// work-avoidance signal, which is what keeps `FirstK`-style runs as cheap
/// as they were when clusters streamed straight into the sink.
struct GatedBuffer<'a> {
    buffer: ShardBuffer,
    stop: &'a std::sync::atomic::AtomicBool,
}

impl CliqueSink for GatedBuffer<'_> {
    fn accept(&mut self, clique: &[u32]) {
        self.buffer.accept(clique);
    }

    fn is_saturated(&self) -> bool {
        self.stop.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// Runs one invocation of ARB-LIST, emitting every listed `K_p` into `sink`.
///
/// * `graph`, `orientation`: the current graph `(V, E_s ∪ E_r)` and an
///   orientation of out-degree at most `arboricity_bound`;
/// * `er`: the current `E_r` (the edges the decomposition is applied to);
/// * `arboricity_bound`: the bound `n^d` on the out-degree of `orientation`;
/// * `delta`: the decomposition parameter δ with `n^δ ≈ n^d / (2 log n)`.
// The argument list mirrors the parameter list of Theorem 2.9's ARB-LIST;
// collapsing it into a struct would obscure the correspondence to the paper.
#[allow(clippy::too_many_arguments)]
pub fn arb_list(
    graph: &Graph,
    orientation: &Orientation,
    er: &EdgeSet,
    arboricity_bound: usize,
    delta: f64,
    config: &ListingConfig,
    seed: u64,
    sink: &mut dyn CliqueSink,
) -> ArbListOutcome {
    let n = graph.num_vertices();
    let mut outcome = ArbListOutcome {
        es_out: vec![Vec::new(); n],
        ..Default::default()
    };
    // A clique can contain goal edges of several clusters, and the fast-K4
    // light listing overlaps the in-cluster listing. For the general
    // algorithm a per-invocation Dedup absorbs that overlap (and suffices,
    // because emissions of different invocations are structurally disjoint);
    // for the fast-K4 variant the caller already wraps the whole run in a
    // Dedup — see `driver::run_congest` — so a second layer here would only
    // double the memory.
    let mut dedup;
    let sink: &mut dyn CliqueSink = match config.variant {
        Variant::General => {
            dedup = Dedup::new(sink);
            &mut dedup
        }
        Variant::FastK4 => sink,
    };

    // --- Expander decomposition on E_r (Theorem 2.3) -----------------------
    let er_graph = Graph::from_edge_set(n, er).expect("E_r endpoints are in range");
    let decomposition = decompose(&er_graph, delta, &config.decomposition, seed);
    outcome.rounds.add(
        phase::DECOMPOSITION,
        config.charge_policy.decomposition_rounds(n, delta),
    );
    outcome.diagnostics.decompositions = 1;
    outcome.diagnostics.clusters = decomposition.clusters.len();
    outcome.diagnostics.arb_iterations = 1;

    // E'_s joins E_s; E'_r starts the new remainder.
    outcome.es_added = decomposition.es.clone();
    for (u, v) in decomposition.es_orientation.edges() {
        outcome.es_out[u as usize].push(v);
    }
    outcome.er_new = decomposition.er.clone();

    if decomposition.clusters.is_empty() {
        return outcome;
    }

    // Cluster-membership broadcast: one round, all clusters in parallel.
    outcome.rounds.add(phase::MEMBERSHIP, 1);

    let em_graph = decomposition.em_graph(n);
    let heavy_threshold = match config.variant {
        Variant::General => config.heavy_threshold(n),
        // Section 3: heavy means at least n^{d-1/3} cluster neighbours.
        Variant::FastK4 => (arboricity_bound as f64 / (n.max(2) as f64).powf(1.0 / 3.0)).max(1.0),
    };

    let clusters = &decomposition.clusters;
    // The per-cluster E'_m edge sets double as the fan-out's balancing
    // weights: a cluster's listing work scales with its goal-edge count.
    let cluster_ems: Vec<EdgeSet> = clusters
        .iter()
        .map(|c| c.edges_within(&decomposition.em))
        .collect();

    // Work-avoidance flag shared between the consume step (which raises it
    // once the real sink saturates) and the producers (whose gated buffers
    // report it as saturation, aborting further enumeration).
    let stop_listing = std::sync::atomic::AtomicBool::new(sink.is_saturated());

    // --- Produce: everything one cluster computes on its own ---------------
    // Pure function of shared read-only state (plus the advisory stop flag),
    // so the orchestrator may run it on any worker thread. Emissions land in
    // a private per-cluster buffer.
    let run_cluster = |index: usize| -> ClusterYield {
        let cluster: &Cluster = &clusters[index];
        let cluster_em = &cluster_ems[index];
        let knowledge = gather_cluster_knowledge(
            graph,
            orientation,
            cluster,
            cluster_em,
            heavy_threshold,
            config,
        );
        let mut emissions = GatedBuffer {
            buffer: ShardBuffer::new(index, config.p),
            stop: &stop_listing,
        };

        // In-cluster sparsity-aware listing.
        let input = SparseListingInput {
            cluster,
            em_graph: &em_graph,
            known_edges: &knowledge.known_edges,
            goal_edges: &knowledge.goal_edges,
            learned_words: &knowledge.learned_words,
            n,
            arboricity_bound,
        };
        let listing = cluster_listing(&input, config, seed ^ cluster.id as u64, &mut emissions);

        // Fast K4 variant: C-light nodes list the instances whose outside edge
        // touches a light node, sequentially over the clusters (Section 3).
        let light_listing_rounds = if config.variant == Variant::FastK4 {
            light_node_listing(graph, cluster, heavy_threshold, &mut emissions)
        } else {
            0
        };

        let max_learned_words = knowledge.max_learned_words();
        ClusterYield {
            goal_edges: knowledge.goal_edges,
            bad_edges: knowledge.bad_edges,
            cluster_edge_count: cluster_em.len(),
            max_learned_words,
            heavy_upload_rounds: knowledge.heavy_upload_rounds,
            light_probe_rounds: knowledge.light_probe_rounds,
            listing_rounds: listing.rounds,
            light_listing_rounds,
            emissions: emissions.buffer,
        }
    };

    // Per-phase maxima across clusters (clusters operate in parallel on
    // disjoint edge sets; the light listing of the fast K4 variant is the one
    // sequential exception).
    let mut max_heavy = 0u64;
    let mut max_probe = 0u64;
    let mut sequential_light_listing = 0u64;
    let mut per_cluster_rounds: Vec<Rounds> = Vec::new();

    // --- Consume: merge one cluster's yield, ascending cluster order -------
    // Runs only on the calling thread. Rounds and diagnostics are always
    // merged (communication happens regardless of how much output the client
    // consumes); only the emission replay honours saturation.
    let mut consume = |y: ClusterYield| {
        outcome.diagnostics.cluster_edges += y.cluster_edge_count;
        max_heavy = max_heavy.max(y.heavy_upload_rounds);
        max_probe = max_probe.max(y.light_probe_rounds);
        outcome.diagnostics.bad_edges += y.bad_edges.len();
        outcome.diagnostics.max_learned_words = outcome
            .diagnostics
            .max_learned_words
            .max(y.max_learned_words);

        // Bad-bad edges are deferred to Ê_r.
        for e in y.bad_edges.iter() {
            outcome.er_new.insert(e);
        }
        for e in y.goal_edges.iter() {
            outcome.goal_edges.insert(e);
        }

        per_cluster_rounds.push(y.listing_rounds);
        sequential_light_listing += y.light_listing_rounds;

        if !sink.is_saturated() {
            y.emissions.replay_into(sink);
        }
        if sink.is_saturated() {
            stop_listing.store(true, std::sync::atomic::Ordering::Relaxed);
        }
    };

    // --- Execute: fan the cluster tasks out, or run them inline ------------
    // The parallel branch groups clusters into contiguous, goal-edge-balanced
    // ranges and drives them through the shared ordered-merge orchestrator;
    // consumption is strictly ascending and never stops early (every
    // cluster's rounds count), so the merged outcome is byte-identical to the
    // inline loop below at any thread count.
    // `fanned_out` records the worker count the fan-out actually reached
    // (None = the inline loop below ran) for the report's `threads_used`.
    let fanned_out = {
        #[cfg(feature = "parallel")]
        {
            let threads = config.effective_threads(true);
            if threads > 1 && clusters.len() > 1 {
                let weights: Vec<u64> = cluster_ems.iter().map(|em| 1 + em.len() as u64).collect();
                let tasks = graphcore::ordered_merge::balanced_ranges(
                    &weights,
                    threads.saturating_mul(CLUSTER_TASKS_PER_THREAD),
                );
                graphcore::ordered_merge::ordered_merge(
                    tasks.len(),
                    threads,
                    |task| {
                        let (start, end) = tasks[task];
                        (start as usize..end as usize)
                            .map(&run_cluster)
                            .collect::<Vec<ClusterYield>>()
                    },
                    |yields| {
                        for y in yields {
                            consume(y);
                        }
                        true
                    },
                );
                Some(threads.min(tasks.len()))
            } else {
                None
            }
        }
        #[cfg(not(feature = "parallel"))]
        {
            None::<usize>
        }
    };
    if fanned_out.is_none() {
        for index in 0..clusters.len() {
            consume(run_cluster(index));
        }
    }
    outcome.threads_used = fanned_out.unwrap_or(1);

    outcome.rounds.add(phase::HEAVY_UPLOAD, max_heavy);
    outcome.rounds.add(phase::LIGHT_PROBES, max_probe);
    outcome
        .rounds
        .add(phase::LIGHT_LISTING, sequential_light_listing);
    // The in-cluster phases run in parallel across clusters: charge the
    // per-phase maximum.
    for phase_name in [
        phase::ID_ASSIGNMENT,
        phase::RESHUFFLE,
        phase::PARTITION_BROADCAST,
        phase::PART_EXCHANGE,
    ] {
        let max_rounds = per_cluster_rounds
            .iter()
            .map(|r| r.for_phase(phase_name))
            .max()
            .unwrap_or(0);
        outcome.rounds.add(phase_name, max_rounds);
    }

    outcome
}

/// The light-node listing of Section 3: every `C`-light node asks all its
/// neighbours about each of its cluster neighbours and lists the `K_4`
/// instances it sees, emitting them into `sink`. Returns the rounds used
/// (for this cluster).
///
/// Outside nodes are visited in ascending identifier order so the emission
/// order is deterministic.
fn light_node_listing(
    graph: &Graph,
    cluster: &Cluster,
    heavy_threshold: f64,
    sink: &mut dyn CliqueSink,
) -> u64 {
    let mut max_rounds = 0u64;
    // Identify the C-light outside neighbours and their cluster neighbours.
    let mut outside: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &u in &cluster.vertices {
        for &v in graph.neighbors(u) {
            if !cluster.contains(v) {
                outside.entry(v).or_default().push(u);
            }
        }
    }
    // Scratch buffers reused across all (u, w) pairs: N(u) ∩ N(w), then that
    // intersected with N(v). Merge-based — no per-pair allocation and no
    // per-candidate has_edge probe.
    let mut uw_common: Vec<u32> = Vec::new();
    let mut witnesses: Vec<u32> = Vec::new();
    for (&v, cluster_neighbors) in &outside {
        if cluster_neighbors.len() as f64 > heavy_threshold {
            continue; // heavy: handled inside the cluster
        }
        // v broadcasts each cluster neighbour to all its own neighbours and
        // receives one answer word per (cluster neighbour, neighbour) pair.
        max_rounds = max_rounds.max(2 * cluster_neighbors.len() as u64);
        // v now knows, for every cluster neighbour u and every neighbour y of
        // v, whether {u, y} is an edge; list the K4s it sees. The witnesses y
        // are exactly N(u) ∩ N(w) ∩ N(v), ascending (which keeps the emission
        // order of the former filter loop).
        for (i, &u) in cluster_neighbors.iter().enumerate() {
            for &w in &cluster_neighbors[i + 1..] {
                if !graph.has_edge(u, w) {
                    continue;
                }
                graph.common_neighbors_into(u, w, &mut uw_common);
                graphcore::intersect_sorted_into(&uw_common, graph.neighbors(v), &mut witnesses);
                for &y in &witnesses {
                    sink.accept(&graphcore::canonical_clique(&[v, u, w, y]));
                }
            }
        }
    }
    max_rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use graphcore::{gen, Clique};
    use std::collections::HashSet;

    fn run_arb(graph: &Graph, p: usize, variant: Variant) -> (ArbListOutcome, HashSet<Clique>) {
        let orientation = Orientation::from_degeneracy(graph);
        let a = orientation.max_out_degree().max(1);
        let er = graph.edge_set();
        let n = graph.num_vertices() as f64;
        // Use the paper's δ when the arboricity is large enough, and a mild
        // default (0.5) otherwise — callers outside tests only invoke
        // ARB-LIST through LIST, which enforces the precondition.
        let delta = ((a as f64 / (2.0 * n.log2())).max(n.powf(0.5))).ln() / n.ln();
        let config = ListingConfig {
            variant,
            ..ListingConfig::for_p(p)
        };
        let mut sink = CollectSink::new();
        let outcome = arb_list(
            graph,
            &orientation,
            &er,
            a,
            delta.clamp(0.05, 0.95),
            &config,
            7,
            &mut sink,
        );
        (outcome, sink.into_cliques())
    }

    #[test]
    fn er_shrinks_and_partition_is_consistent() {
        let g = gen::erdos_renyi(150, 0.3, 3);
        let (out, _) = run_arb(&g, 4, Variant::General);
        let total = out.goal_edges.len() + out.es_added.len() + out.er_new.len();
        assert_eq!(total, g.num_edges(), "ARB-LIST must partition the edges");
        assert!(out.goal_edges.is_disjoint(&out.es_added));
        assert!(out.goal_edges.is_disjoint(&out.er_new));
        assert!(out.es_added.is_disjoint(&out.er_new));
        assert!(
            out.er_new.len() <= g.num_edges() / 4,
            "|Ê_r| = {} > |E_r|/4 = {}",
            out.er_new.len(),
            g.num_edges() / 4
        );
    }

    #[test]
    fn lists_every_clique_with_a_goal_edge() {
        let g = gen::erdos_renyi(100, 0.3, 11);
        let (out, listed) = run_arb(&g, 4, Variant::General);
        let all = graphcore::cliques::list_cliques(&g, 4);
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(
                    listed.contains(clique),
                    "K4 {clique:?} with a goal edge was not listed"
                );
            }
        }
        // Everything listed must be a real clique.
        for clique in &listed {
            assert!(graphcore::cliques::is_clique(&g, clique));
            assert_eq!(clique.len(), 4);
        }
    }

    #[test]
    fn fast_k4_variant_also_covers_goal_edges() {
        let g = gen::erdos_renyi(100, 0.3, 13);
        let (out, listed) = run_arb(&g, 4, Variant::FastK4);
        let all = graphcore::cliques::list_cliques(&g, 4);
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(
                    listed.contains(clique),
                    "K4 {clique:?} with a goal edge was not listed by the fast variant"
                );
            }
        }
    }

    #[test]
    fn k5_instances_with_goal_edges_are_listed() {
        let (g, _) = gen::planted_cliques(120, 0.2, 3, 5, 5);
        let (out, listed) = run_arb(&g, 5, Variant::General);
        let all = graphcore::cliques::list_cliques(&g, 5);
        assert!(!all.is_empty());
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(listed.contains(clique), "K5 {clique:?} missing");
            }
        }
    }

    #[test]
    fn sparse_graph_produces_no_clusters_and_no_goal_edges() {
        let g = gen::path_graph(100);
        let (out, listed) = run_arb(&g, 4, Variant::General);
        assert!(out.goal_edges.is_empty());
        assert_eq!(out.es_added.len(), g.num_edges());
        assert!(listed.is_empty());
        assert_eq!(out.diagnostics.clusters, 0);
    }

    #[test]
    fn rounds_are_recorded_per_phase() {
        let g = gen::erdos_renyi(120, 0.35, 17);
        let (out, _) = run_arb(&g, 4, Variant::General);
        assert!(out.rounds.for_phase(phase::DECOMPOSITION) > 0);
        if out.diagnostics.clusters > 0 {
            assert!(out.rounds.for_phase(phase::MEMBERSHIP) > 0);
            assert!(out.rounds.for_phase(phase::PART_EXCHANGE) > 0);
        }
        assert_eq!(out.rounds.total(), out.rounds.iter().map(|(_, r)| r).sum());
    }

    #[test]
    fn general_invocations_emit_each_clique_exactly_once() {
        // For the general algorithm, raw CountSink totals must match the
        // distinct set even though the cross-cluster path can find a clique
        // twice — the per-invocation Dedup absorbs the overlap. The fast-K4
        // variant deliberately has no inner layer (its drivers dedup the
        // whole run), so its raw count may only overshoot, never undershoot.
        let g = gen::erdos_renyi(100, 0.35, 19);
        let orientation = Orientation::from_degeneracy(&g);
        let a = orientation.max_out_degree().max(1);
        let er = g.edge_set();
        let n = g.num_vertices() as f64;
        let delta =
            (((a as f64 / (2.0 * n.log2())).max(n.powf(0.5))).ln() / n.ln()).clamp(0.05, 0.95);

        let config = ListingConfig::for_p(4);
        let mut count = crate::sink::CountSink::new();
        arb_list(&g, &orientation, &er, a, delta, &config, 7, &mut count);
        let (_, listed) = run_arb(&g, 4, Variant::General);
        assert_eq!(count.count as usize, listed.len());

        let fast_config = ListingConfig {
            variant: Variant::FastK4,
            ..config
        };
        let mut fast_count = crate::sink::CountSink::new();
        arb_list(
            &g,
            &orientation,
            &er,
            a,
            delta,
            &fast_config,
            7,
            &mut fast_count,
        );
        let (_, fast_listed) = run_arb(&g, 4, Variant::FastK4);
        assert!(fast_count.count as usize >= fast_listed.len());
    }

    /// A sink recording the exact accept sequence (never saturates).
    #[derive(Default)]
    struct TraceSink {
        accepts: Vec<Clique>,
    }

    impl CliqueSink for TraceSink {
        fn accept(&mut self, clique: &[u32]) {
            self.accepts.push(clique.to_vec());
        }
    }

    #[test]
    fn dedup_exists_for_duplicates_not_order() {
        // The Dedup layers of the pipeline absorb *structural* duplicates —
        // a clique containing several goal edges (of one cluster or of
        // overlapping clusters) is found once per goal edge. They are NOT
        // needed to repair iteration order: with the flat dense-id tables,
        // the raw (pre-dedup) emission sequence of the fast-K4 variant —
        // which runs without any inner Dedup — is identical from run to run.
        let g = gen::erdos_renyi(90, 0.35, 23);
        let orientation = Orientation::from_degeneracy(&g);
        let a = orientation.max_out_degree().max(1);
        let er = g.edge_set();
        let n = g.num_vertices() as f64;
        let delta =
            (((a as f64 / (2.0 * n.log2())).max(n.powf(0.5))).ln() / n.ln()).clamp(0.05, 0.95);
        let config = ListingConfig {
            variant: Variant::FastK4,
            ..ListingConfig::for_p(4)
        };

        let mut first = TraceSink::default();
        arb_list(&g, &orientation, &er, a, delta, &config, 7, &mut first);
        let mut second = TraceSink::default();
        arb_list(&g, &orientation, &er, a, delta, &config, 7, &mut second);
        assert_eq!(
            first.accepts, second.accepts,
            "raw pre-dedup emission order must be deterministic"
        );

        // The duplicates a Dedup would drop are genuine re-findings of the
        // same clique, so deduplication changes multiplicities only — never
        // membership.
        let distinct: HashSet<Clique> = first.accepts.iter().cloned().collect();
        assert!(
            first.accepts.len() >= distinct.len(),
            "raw emission may repeat structurally shared cliques"
        );
        let (_, deduped) = run_arb(&g, 4, Variant::FastK4);
        assert_eq!(distinct, deduped);
    }
}
