//! Algorithm ARB-LIST (Theorem 2.9).
//!
//! One invocation of ARB-LIST takes the current graph `G = (V, E_s ∪ E_r)`
//! together with an orientation of out-degree at most the arboricity bound
//! `n^d`, runs the expander decomposition on `E_r`, brings the relevant
//! outside edges into every cluster, performs the sparsity-aware in-cluster
//! listing, and returns
//!
//! * `Ê_m` — the goal edges, all of whose `K_p` instances were listed and
//!   which can therefore be removed from the graph;
//! * `E'_s` — new low-arboricity edges (with their peeling orientation) to be
//!   merged into `E_s`;
//! * `Ê_r`  — the remaining edges (`E'_r` plus the bad-bad edges), at most a
//!   quarter of the incoming `E_r`.
//!
//! The listed instances are streamed into the caller's [`CliqueSink`]. For
//! the general algorithm, one invocation emits each clique at most once (a
//! per-invocation [`Dedup`] layer absorbs the cross-cluster overlap), and
//! cliques listed by *different* invocations are structurally distinct
//! because every listed clique contains a goal edge and goal edges are
//! removed from the graph. For the fast-`K_4` variant the emission can
//! contain duplicates (the light-node listing overlaps the in-cluster
//! listing and later invocations): its callers wrap the **whole run** in a
//! single `Dedup` — see `driver::run_congest` — which is both necessary for
//! cross-invocation duplicates and sufficient for the in-invocation ones, so
//! this function adds no second layer.

use crate::cluster_knowledge::gather_cluster_knowledge;
use crate::config::{ListingConfig, Variant};
use crate::result::{phase, Diagnostics, Rounds};
use crate::sink::{CliqueSink, Dedup};
use crate::sparse_listing::{cluster_listing, SparseListingInput};
use expander::{decompose, Cluster};
use graphcore::{EdgeSet, Graph, Orientation};
use std::collections::BTreeMap;

/// Result of one ARB-LIST invocation (the listed cliques are streamed to the
/// sink, not returned).
#[derive(Clone, Debug, Default)]
pub struct ArbListOutcome {
    /// The goal edges `Ê_m` (removed from the graph by the caller).
    pub goal_edges: EdgeSet,
    /// New `E_s` edges produced by the decomposition's peeling.
    pub es_added: EdgeSet,
    /// Out-neighbour lists of the peeling orientation of `es_added`.
    pub es_out: Vec<Vec<u32>>,
    /// The new remainder `Ê_r`.
    pub er_new: EdgeSet,
    /// Round breakdown of this invocation.
    pub rounds: Rounds,
    /// Diagnostics of this invocation.
    pub diagnostics: Diagnostics,
}

/// Runs one invocation of ARB-LIST, emitting every listed `K_p` into `sink`.
///
/// * `graph`, `orientation`: the current graph `(V, E_s ∪ E_r)` and an
///   orientation of out-degree at most `arboricity_bound`;
/// * `er`: the current `E_r` (the edges the decomposition is applied to);
/// * `arboricity_bound`: the bound `n^d` on the out-degree of `orientation`;
/// * `delta`: the decomposition parameter δ with `n^δ ≈ n^d / (2 log n)`.
// The argument list mirrors the parameter list of Theorem 2.9's ARB-LIST;
// collapsing it into a struct would obscure the correspondence to the paper.
#[allow(clippy::too_many_arguments)]
pub fn arb_list(
    graph: &Graph,
    orientation: &Orientation,
    er: &EdgeSet,
    arboricity_bound: usize,
    delta: f64,
    config: &ListingConfig,
    seed: u64,
    sink: &mut dyn CliqueSink,
) -> ArbListOutcome {
    let n = graph.num_vertices();
    let mut outcome = ArbListOutcome {
        es_out: vec![Vec::new(); n],
        ..Default::default()
    };
    // A clique can contain goal edges of several clusters, and the fast-K4
    // light listing overlaps the in-cluster listing. For the general
    // algorithm a per-invocation Dedup absorbs that overlap (and suffices,
    // because emissions of different invocations are structurally disjoint);
    // for the fast-K4 variant the caller already wraps the whole run in a
    // Dedup — see `driver::run_congest` — so a second layer here would only
    // double the memory.
    let mut dedup;
    let mut sink: &mut dyn CliqueSink = match config.variant {
        Variant::General => {
            dedup = Dedup::new(sink);
            &mut dedup
        }
        Variant::FastK4 => sink,
    };

    // --- Expander decomposition on E_r (Theorem 2.3) -----------------------
    let er_graph = Graph::from_edge_set(n, er).expect("E_r endpoints are in range");
    let decomposition = decompose(&er_graph, delta, &config.decomposition, seed);
    outcome.rounds.add(
        phase::DECOMPOSITION,
        config.charge_policy.decomposition_rounds(n, delta),
    );
    outcome.diagnostics.decompositions = 1;
    outcome.diagnostics.clusters = decomposition.clusters.len();
    outcome.diagnostics.arb_iterations = 1;

    // E'_s joins E_s; E'_r starts the new remainder.
    outcome.es_added = decomposition.es.clone();
    for (u, v) in decomposition.es_orientation.edges() {
        outcome.es_out[u as usize].push(v);
    }
    outcome.er_new = decomposition.er.clone();

    if decomposition.clusters.is_empty() {
        return outcome;
    }

    // Cluster-membership broadcast: one round, all clusters in parallel.
    outcome.rounds.add(phase::MEMBERSHIP, 1);

    let em_graph = decomposition.em_graph(n);
    let heavy_threshold = match config.variant {
        Variant::General => config.heavy_threshold(n),
        // Section 3: heavy means at least n^{d-1/3} cluster neighbours.
        Variant::FastK4 => (arboricity_bound as f64 / (n.max(2) as f64).powf(1.0 / 3.0)).max(1.0),
    };

    // Per-phase maxima across clusters (clusters operate in parallel on
    // disjoint edge sets; the light listing of the fast K4 variant is the one
    // sequential exception).
    let mut max_heavy = 0u64;
    let mut max_probe = 0u64;
    let mut sequential_light_listing = 0u64;
    let mut per_cluster_rounds: Vec<Rounds> = Vec::new();

    for cluster in &decomposition.clusters {
        let cluster_em: EdgeSet = cluster.edges_within(&decomposition.em);
        outcome.diagnostics.cluster_edges += cluster_em.len();

        let knowledge = gather_cluster_knowledge(
            graph,
            orientation,
            cluster,
            &cluster_em,
            heavy_threshold,
            config,
        );
        max_heavy = max_heavy.max(knowledge.heavy_upload_rounds);
        max_probe = max_probe.max(knowledge.light_probe_rounds);
        outcome.diagnostics.bad_edges += knowledge.bad_edges.len();
        outcome.diagnostics.max_learned_words = outcome
            .diagnostics
            .max_learned_words
            .max(knowledge.max_learned_words());

        // Bad-bad edges are deferred to Ê_r.
        for e in knowledge.bad_edges.iter() {
            outcome.er_new.insert(e);
        }
        for e in knowledge.goal_edges.iter() {
            outcome.goal_edges.insert(e);
        }

        // In-cluster sparsity-aware listing.
        let input = SparseListingInput {
            cluster,
            em_graph: &em_graph,
            known_edges: &knowledge.known_edges,
            goal_edges: &knowledge.goal_edges,
            learned_words: &knowledge.learned_words,
            n,
            arboricity_bound,
        };
        let listing = cluster_listing(&input, config, seed ^ cluster.id as u64, &mut sink);
        per_cluster_rounds.push(listing.rounds);

        // Fast K4 variant: C-light nodes list the instances whose outside edge
        // touches a light node, sequentially over the clusters (Section 3).
        if config.variant == Variant::FastK4 {
            let light_rounds = light_node_listing(graph, cluster, heavy_threshold, &mut sink);
            sequential_light_listing += light_rounds;
        }
    }

    outcome.rounds.add(phase::HEAVY_UPLOAD, max_heavy);
    outcome.rounds.add(phase::LIGHT_PROBES, max_probe);
    outcome
        .rounds
        .add(phase::LIGHT_LISTING, sequential_light_listing);
    // The in-cluster phases run in parallel across clusters: charge the
    // per-phase maximum.
    for phase_name in [
        phase::ID_ASSIGNMENT,
        phase::RESHUFFLE,
        phase::PARTITION_BROADCAST,
        phase::PART_EXCHANGE,
    ] {
        let max_rounds = per_cluster_rounds
            .iter()
            .map(|r| r.for_phase(phase_name))
            .max()
            .unwrap_or(0);
        outcome.rounds.add(phase_name, max_rounds);
    }

    outcome
}

/// The light-node listing of Section 3: every `C`-light node asks all its
/// neighbours about each of its cluster neighbours and lists the `K_4`
/// instances it sees, emitting them into `sink`. Returns the rounds used
/// (for this cluster).
///
/// Outside nodes are visited in ascending identifier order so the emission
/// order is deterministic.
fn light_node_listing(
    graph: &Graph,
    cluster: &Cluster,
    heavy_threshold: f64,
    sink: &mut dyn CliqueSink,
) -> u64 {
    let mut max_rounds = 0u64;
    // Identify the C-light outside neighbours and their cluster neighbours.
    let mut outside: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &u in &cluster.vertices {
        for &v in graph.neighbors(u) {
            if !cluster.contains(v) {
                outside.entry(v).or_default().push(u);
            }
        }
    }
    // Scratch buffers reused across all (u, w) pairs: N(u) ∩ N(w), then that
    // intersected with N(v). Merge-based — no per-pair allocation and no
    // per-candidate has_edge probe.
    let mut uw_common: Vec<u32> = Vec::new();
    let mut witnesses: Vec<u32> = Vec::new();
    for (&v, cluster_neighbors) in &outside {
        if cluster_neighbors.len() as f64 > heavy_threshold {
            continue; // heavy: handled inside the cluster
        }
        // v broadcasts each cluster neighbour to all its own neighbours and
        // receives one answer word per (cluster neighbour, neighbour) pair.
        max_rounds = max_rounds.max(2 * cluster_neighbors.len() as u64);
        // v now knows, for every cluster neighbour u and every neighbour y of
        // v, whether {u, y} is an edge; list the K4s it sees. The witnesses y
        // are exactly N(u) ∩ N(w) ∩ N(v), ascending (which keeps the emission
        // order of the former filter loop).
        for (i, &u) in cluster_neighbors.iter().enumerate() {
            for &w in &cluster_neighbors[i + 1..] {
                if !graph.has_edge(u, w) {
                    continue;
                }
                graph.common_neighbors_into(u, w, &mut uw_common);
                graphcore::intersect_sorted_into(&uw_common, graph.neighbors(v), &mut witnesses);
                for &y in &witnesses {
                    sink.accept(&graphcore::canonical_clique(&[v, u, w, y]));
                }
            }
        }
    }
    max_rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::CollectSink;
    use graphcore::{gen, Clique};
    use std::collections::HashSet;

    fn run_arb(graph: &Graph, p: usize, variant: Variant) -> (ArbListOutcome, HashSet<Clique>) {
        let orientation = Orientation::from_degeneracy(graph);
        let a = orientation.max_out_degree().max(1);
        let er = graph.edge_set();
        let n = graph.num_vertices() as f64;
        // Use the paper's δ when the arboricity is large enough, and a mild
        // default (0.5) otherwise — callers outside tests only invoke
        // ARB-LIST through LIST, which enforces the precondition.
        let delta = ((a as f64 / (2.0 * n.log2())).max(n.powf(0.5))).ln() / n.ln();
        let config = ListingConfig {
            variant,
            ..ListingConfig::for_p(p)
        };
        let mut sink = CollectSink::new();
        let outcome = arb_list(
            graph,
            &orientation,
            &er,
            a,
            delta.clamp(0.05, 0.95),
            &config,
            7,
            &mut sink,
        );
        (outcome, sink.into_cliques())
    }

    #[test]
    fn er_shrinks_and_partition_is_consistent() {
        let g = gen::erdos_renyi(150, 0.3, 3);
        let (out, _) = run_arb(&g, 4, Variant::General);
        let total = out.goal_edges.len() + out.es_added.len() + out.er_new.len();
        assert_eq!(total, g.num_edges(), "ARB-LIST must partition the edges");
        assert!(out.goal_edges.is_disjoint(&out.es_added));
        assert!(out.goal_edges.is_disjoint(&out.er_new));
        assert!(out.es_added.is_disjoint(&out.er_new));
        assert!(
            out.er_new.len() <= g.num_edges() / 4,
            "|Ê_r| = {} > |E_r|/4 = {}",
            out.er_new.len(),
            g.num_edges() / 4
        );
    }

    #[test]
    fn lists_every_clique_with_a_goal_edge() {
        let g = gen::erdos_renyi(100, 0.3, 11);
        let (out, listed) = run_arb(&g, 4, Variant::General);
        let all = graphcore::cliques::list_cliques(&g, 4);
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(
                    listed.contains(clique),
                    "K4 {clique:?} with a goal edge was not listed"
                );
            }
        }
        // Everything listed must be a real clique.
        for clique in &listed {
            assert!(graphcore::cliques::is_clique(&g, clique));
            assert_eq!(clique.len(), 4);
        }
    }

    #[test]
    fn fast_k4_variant_also_covers_goal_edges() {
        let g = gen::erdos_renyi(100, 0.3, 13);
        let (out, listed) = run_arb(&g, 4, Variant::FastK4);
        let all = graphcore::cliques::list_cliques(&g, 4);
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(
                    listed.contains(clique),
                    "K4 {clique:?} with a goal edge was not listed by the fast variant"
                );
            }
        }
    }

    #[test]
    fn k5_instances_with_goal_edges_are_listed() {
        let (g, _) = gen::planted_cliques(120, 0.2, 3, 5, 5);
        let (out, listed) = run_arb(&g, 5, Variant::General);
        let all = graphcore::cliques::list_cliques(&g, 5);
        assert!(!all.is_empty());
        for clique in &all {
            let has_goal = clique.iter().enumerate().any(|(i, &a)| {
                clique[i + 1..]
                    .iter()
                    .any(|&b| out.goal_edges.contains_pair(a, b))
            });
            if has_goal {
                assert!(listed.contains(clique), "K5 {clique:?} missing");
            }
        }
    }

    #[test]
    fn sparse_graph_produces_no_clusters_and_no_goal_edges() {
        let g = gen::path_graph(100);
        let (out, listed) = run_arb(&g, 4, Variant::General);
        assert!(out.goal_edges.is_empty());
        assert_eq!(out.es_added.len(), g.num_edges());
        assert!(listed.is_empty());
        assert_eq!(out.diagnostics.clusters, 0);
    }

    #[test]
    fn rounds_are_recorded_per_phase() {
        let g = gen::erdos_renyi(120, 0.35, 17);
        let (out, _) = run_arb(&g, 4, Variant::General);
        assert!(out.rounds.for_phase(phase::DECOMPOSITION) > 0);
        if out.diagnostics.clusters > 0 {
            assert!(out.rounds.for_phase(phase::MEMBERSHIP) > 0);
            assert!(out.rounds.for_phase(phase::PART_EXCHANGE) > 0);
        }
        assert_eq!(out.rounds.total(), out.rounds.iter().map(|(_, r)| r).sum());
    }

    #[test]
    fn general_invocations_emit_each_clique_exactly_once() {
        // For the general algorithm, raw CountSink totals must match the
        // distinct set even though the cross-cluster path can find a clique
        // twice — the per-invocation Dedup absorbs the overlap. The fast-K4
        // variant deliberately has no inner layer (its drivers dedup the
        // whole run), so its raw count may only overshoot, never undershoot.
        let g = gen::erdos_renyi(100, 0.35, 19);
        let orientation = Orientation::from_degeneracy(&g);
        let a = orientation.max_out_degree().max(1);
        let er = g.edge_set();
        let n = g.num_vertices() as f64;
        let delta =
            (((a as f64 / (2.0 * n.log2())).max(n.powf(0.5))).ln() / n.ln()).clamp(0.05, 0.95);

        let config = ListingConfig::for_p(4);
        let mut count = crate::sink::CountSink::new();
        arb_list(&g, &orientation, &er, a, delta, &config, 7, &mut count);
        let (_, listed) = run_arb(&g, 4, Variant::General);
        assert_eq!(count.count as usize, listed.len());

        let fast_config = ListingConfig {
            variant: Variant::FastK4,
            ..config
        };
        let mut fast_count = crate::sink::CountSink::new();
        arb_list(
            &g,
            &orientation,
            &er,
            a,
            delta,
            &fast_config,
            7,
            &mut fast_count,
        );
        let (_, fast_listed) = run_arb(&g, 4, Variant::FastK4);
        assert!(fast_count.count as usize >= fast_listed.len());
    }
}
