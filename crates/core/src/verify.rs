//! Verification of listing outputs against the exact sequential enumeration.

use crate::result::ListingResult;
use graphcore::{cliques, Clique, Graph};
use std::collections::HashSet;
use std::fmt;

/// A mismatch between a listing output and the ground truth.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerificationError {
    /// Cliques present in the graph but missing from the output.
    pub missing: Vec<Clique>,
    /// Output entries that are not `p`-cliques of the graph.
    pub spurious: Vec<Clique>,
    /// Number of cliques in the ground truth.
    pub expected: usize,
}

impl fmt::Display for VerificationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "listing mismatch: {} missing and {} spurious out of {} expected cliques",
            self.missing.len(),
            self.spurious.len(),
            self.expected
        )?;
        if let Some(c) = self.missing.first() {
            write!(f, "; first missing: {c:?}")?;
        }
        if let Some(c) = self.spurious.first() {
            write!(f, "; first spurious: {c:?}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerificationError {}

/// Checks that `result` lists exactly the `p`-cliques of `graph`.
///
/// # Errors
///
/// Returns a [`VerificationError`] describing the missing and spurious cliques
/// if the output is not exactly the ground truth.
pub fn verify_against_ground_truth(
    graph: &Graph,
    p: usize,
    result: &ListingResult,
) -> Result<(), VerificationError> {
    verify_cliques(graph, p, &result.cliques)
}

/// Checks that `listed` — any collection of cliques: a
/// [`CollectSink`](crate::CollectSink)'s set, the sorted vector returned by
/// [`Engine::collect`](crate::Engine::collect), a slice — is exactly the set
/// of `p`-cliques of `graph`.
///
/// # Errors
///
/// Returns a [`VerificationError`] describing the missing and spurious cliques
/// if the output is not exactly the ground truth.
pub fn verify_cliques<'a, I>(graph: &Graph, p: usize, listed: I) -> Result<(), VerificationError>
where
    I: IntoIterator<Item = &'a Clique>,
{
    let listed: HashSet<Clique> = listed.into_iter().cloned().collect();
    let truth: HashSet<Clique> = cliques::list_cliques(graph, p).into_iter().collect();
    let missing: Vec<Clique> = truth.difference(&listed).cloned().collect();
    let spurious: Vec<Clique> = listed.difference(&truth).cloned().collect();
    if missing.is_empty() && spurious.is_empty() {
        Ok(())
    } else {
        let mut missing = missing;
        let mut spurious = spurious;
        missing.sort_unstable();
        spurious.sort_unstable();
        Err(VerificationError {
            missing,
            spurious,
            expected: truth.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::gen;

    #[test]
    fn accepts_exact_output() {
        let g = gen::complete_graph(6);
        let mut result = ListingResult::new();
        for c in cliques::list_cliques(&g, 4) {
            result.cliques.insert(c);
        }
        assert!(verify_against_ground_truth(&g, 4, &result).is_ok());
    }

    #[test]
    fn reports_missing_and_spurious() {
        let g = gen::complete_graph(5);
        let mut result = ListingResult::new();
        for c in cliques::list_cliques(&g, 3) {
            result.cliques.insert(c);
        }
        // Remove one real clique and add a fake one.
        let removed = result.sorted_cliques()[0].clone();
        result.cliques.remove(&removed);
        result.cliques.insert(vec![0, 1, 99]);
        let err = verify_against_ground_truth(&g, 3, &result).unwrap_err();
        assert_eq!(err.missing, vec![removed]);
        assert_eq!(err.spurious, vec![vec![0, 1, 99]]);
        assert_eq!(err.expected, 10);
        assert!(format!("{err}").contains("missing"));
    }

    #[test]
    fn empty_graph_expects_empty_output() {
        let g = Graph::new(5);
        assert!(verify_against_ground_truth(&g, 4, &ListingResult::new()).is_ok());
    }
}
